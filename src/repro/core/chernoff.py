"""Chernoff tail bounds.

For a random variable ``X`` with log-MGF ``L(theta)``, Chernoff's theorem
(eq. 3.1.5) gives for every ``t``::

    P[X >= t] <= inf_{theta >= 0} exp(-theta*t + L(theta))

The objective ``g(theta) = -theta*t + L(theta)`` is convex with
``g(0) = 0`` and ``g'(0) = E[X] - t``; the infimum is interior iff
``t > E[X]`` (otherwise the trivial bound 1 results).  The paper solves
``h' = 0`` numerically; we do the same via bounded scalar minimisation on
a log-spaced bracket inside the MGF's domain.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import optimize

from repro.core.mgf import LogMGF
from repro.errors import ChernoffError, ConfigurationError

__all__ = ["ChernoffResult", "chernoff_tail_bound"]

#: Largest finite stand-in for "objective is +inf here"; keeps Brent's
#: method away from the MGF pole without breaking its arithmetic.
_BIG = 1e300

#: Relative margin kept between the search interval and the MGF pole.
_POLE_MARGIN = 1e-12

#: Log-bound below which the tail is indistinguishable from zero in
#: double precision; the optimiser stops refining past it.
_DEEP_TAIL_LOG = -800.0


@dataclass(frozen=True)
class ChernoffResult:
    """Outcome of one Chernoff-bound optimisation.

    Attributes
    ----------
    bound:
        ``min(1, exp(log_bound))`` -- the usable tail probability bound.
    log_bound:
        The optimised exponent ``-theta* t + L(theta*)`` (not clipped,
        so deep tails keep full precision, e.g. ``log_bound = -40``).
    theta:
        The optimising ``theta*`` (0 when the trivial bound applies).
    t:
        The threshold the tail was evaluated at.
    """

    bound: float
    log_bound: float
    theta: float
    t: float

    @property
    def trivial(self) -> bool:
        """True when the bound degenerated to 1."""
        return self.theta == 0.0


def _objective(logmgf: LogMGF, t: float):
    def g(theta: float) -> float:
        value = -theta * t + logmgf(theta)
        if math.isnan(value) or math.isinf(value):
            return _BIG
        return value
    return g


def _largest_finite_theta(g, lo: float, hi: float) -> float:
    """Largest ``theta`` (to float resolution) with ``g`` finite, given
    ``g(lo)`` finite and ``g(hi)`` on the ``_BIG`` plateau.  Bisects the
    numeric domain boundary so the search interval can use the whole
    finite region instead of being clamped a factor of two short."""
    for _ in range(80):
        mid = 0.5 * (lo + hi)
        if not (lo < mid < hi):
            break
        if g(mid) >= _BIG:
            hi = mid
        else:
            lo = mid
    return lo


def chernoff_tail_bound(logmgf: LogMGF, t: float) -> ChernoffResult:
    """Tightest Chernoff bound on ``P[X >= t]`` for the given log-MGF.

    Implements eq. (3.1.5)/(3.1.6) and (3.2.12).  Returns the trivial
    bound 1 when ``t <= E[X]`` (no exponential decay is available there).
    """
    if not (math.isfinite(t) and t > 0.0):
        raise ConfigurationError(f"threshold t must be positive, got {t!r}")
    mean = logmgf.mean()
    if t <= mean:
        return ChernoffResult(bound=1.0, log_bound=0.0, theta=0.0, t=t)

    sup = logmgf.theta_sup
    g = _objective(logmgf, t)

    if math.isinf(sup):
        # Expand until the objective turns upward; convexity guarantees
        # the minimum is then inside [0, hi].  If the objective keeps
        # falling below any useful precision (e.g. a bounded variable
        # whose support lies strictly below t), the infimum is 0 and we
        # report the deepest point reached.
        hi = 1.0
        best = g(hi)
        # theta_sup is infinite, but the *numeric* domain may not be
        # (quadrature/naive MGFs overflow); if the unit seed already
        # sits on the _BIG plateau, shrink into finite territory first.
        shrinks = 0
        while best >= _BIG and shrinks < 400:
            hi *= 0.5
            best = g(hi)
            shrinks += 1
        if best >= _BIG:  # pragma: no cover - pathological MGF
            raise ChernoffError(
                "objective is non-finite arbitrarily close to theta=0; "
                "MGF looks inconsistent")
        for _ in range(200):
            if best <= _DEEP_TAIL_LOG:
                return ChernoffResult(bound=0.0, log_bound=best,
                                      theta=hi, t=t)
            nxt = g(hi * 2.0)
            if nxt >= _BIG:
                # Doubling would land on the pole/overflow plateau:
                # clamp to the finite side and refine the boundary so
                # the seed grid spans the whole usable domain.
                hi = _largest_finite_theta(g, hi, hi * 2.0)
                break
            if nxt >= best:
                hi *= 2.0
                break
            best = nxt
            hi *= 2.0
        else:  # pragma: no cover - pathological MGF
            raise ChernoffError(
                "objective kept decreasing; MGF looks inconsistent")
    else:
        hi = sup * (1.0 - _POLE_MARGIN)

    # Coarse log-spaced scan to seed the bounded minimiser: the optimum
    # can sit anywhere between ~1e-6 and the pole depending on how deep
    # the tail is, and Brent started blind occasionally stalls on the
    # huge flat region near the pole.
    grid = np.concatenate(([0.0], np.geomspace(hi * 1e-9, hi, 512)))
    values = np.array([g(theta) for theta in grid])
    seed_idx = int(np.argmin(values))

    # An argmin at index 0 means every *positive* grid point is worse
    # than theta = 0 -- either the bound is genuinely trivial, or the
    # dip is narrower than the grid's smallest positive point (huge-N
    # or near-deterministic models).  Zoom the grid toward zero until
    # the argmin is interior instead of handing the minimiser the
    # degenerate bracket (0, first_grid_point) with a tolerance coarser
    # than the dip it must locate.
    zooms = 0
    while seed_idx == 0 and grid[1] > 0.0 and zooms < 8:
        grid = np.concatenate(
            ([0.0], np.geomspace(grid[1] * 1e-9, grid[1], 512)))
        values = np.array([g(theta) for theta in grid])
        seed_idx = int(np.argmin(values))
        zooms += 1

    lo_idx = max(seed_idx - 1, 0)
    hi_idx = min(seed_idx + 1, len(grid) - 1)
    bracket_lo = float(grid[lo_idx])
    bracket_hi = float(grid[hi_idx])
    result = optimize.minimize_scalar(
        g, bounds=(bracket_lo, bracket_hi), method="bounded",
        options={"xatol": max(bracket_hi - bracket_lo, 1e-300) * 1e-11})
    theta_star = float(result.x)
    log_bound = float(min(result.fun, values[seed_idx]))
    if values[seed_idx] < result.fun:
        theta_star = float(grid[seed_idx])

    if log_bound >= 0.0:
        return ChernoffResult(bound=1.0, log_bound=0.0, theta=0.0, t=t)
    return ChernoffResult(bound=math.exp(log_bound), log_bound=log_bound,
                          theta=theta_star, t=t)
