"""Mixed continuous/discrete workloads (the paper's §6 outlook).

§6: "We advocate sharing disks between continuous and discrete data, as
this provides a much better resource utilization ... [NMW97] has
investigated a first approach to the analytic modeling of such
mixed-workload multimedia servers."

Each round the disk serves its ``N`` continuous requests plus up to
``K`` discrete requests (HTML pages, images -- small, own size law).
Two scheduling policies:

- ``integrated``: all ``N + K`` requests share one SCAN sweep.  A round
  overrun can glitch continuous streams, so the continuous guarantee
  must be re-derived with the enlarged transform
  ``SEEK(N+K) * rot^(N+K) * trans_c^N * trans_d^K``.
- ``continuous-first``: the sweep serves continuous requests first;
  discrete requests only consume the round's leftover.  The continuous
  guarantee is *unchanged* (``b_late(N, t)``), and the discrete side is
  characterised by the leftover-time distribution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.chernoff import chernoff_tail_bound
from repro.core.mgf import ConstantTerm, DistributionTerm, ProductMGF, UniformTerm
from repro.core.seek import oyang_seek_bound
from repro.core.service_time import RoundServiceTimeModel
from repro.core.transfer import MultiZoneTransferModel, single_zone_transfer_time
from repro.disk.presets import DiskSpec
from repro.distributions import Distribution
from repro.errors import ConfigurationError

__all__ = ["MixedWorkloadModel"]


@dataclass(frozen=True)
class MixedWorkloadModel:
    """Analytic model of one disk under a continuous + discrete mix.

    Parameters
    ----------
    spec:
        The disk.
    continuous_sizes:
        Fragment-size law of the continuous streams (bytes/round).
    discrete_sizes:
        Request-size law of the discrete workload (bytes/request).
    multizone:
        Whether to use the §3.2 zone-aware transfer law.
    """

    spec: DiskSpec
    continuous_sizes: Distribution
    discrete_sizes: Distribution
    multizone: bool = True

    def _transfer(self, sizes: Distribution) -> Distribution:
        if self.multizone and self.spec.zone_map.zones > 1:
            return MultiZoneTransferModel(self.spec.zone_map,
                                          sizes).gamma_approximation()
        rate = (self.spec.zone_map.harmonic_mean_rate()
                if self.spec.zone_map.zones > 1
                else self.spec.zone_map.r_min)
        return single_zone_transfer_time(sizes, rate)

    def continuous_model(self) -> RoundServiceTimeModel:
        """The plain continuous-only round model (§3.1/3.2)."""
        return RoundServiceTimeModel.for_disk(
            self.spec, self.continuous_sizes, multizone=self.multizone)

    # ------------------------------------------------------------------
    def mixed_log_mgf(self, n: int, k: int) -> ProductMGF:
        """MGF of the total time to serve ``n`` continuous plus ``k``
        discrete requests in one SCAN sweep."""
        if n < 0 or k < 0 or n + k < 1:
            raise ConfigurationError(
                f"need n, k >= 0 with n + k >= 1, got n={n!r}, k={k!r}")
        factors: list[tuple] = [
            (ConstantTerm(oyang_seek_bound(self.spec.seek_curve,
                                           self.spec.cylinders, n + k)),
             1),
            (UniformTerm(self.spec.rot), n + k),
        ]
        if n:
            factors.append(
                (DistributionTerm(self._transfer(self.continuous_sizes)),
                 n))
        if k:
            factors.append(
                (DistributionTerm(self._transfer(self.discrete_sizes)),
                 k))
        return ProductMGF(factors)

    def p_late_integrated(self, n: int, k: int, t: float) -> float:
        """Chernoff bound on the integrated-sweep round overrunning.

        Under the integrated policy this bounds the continuous glitch
        exposure with ``k`` discrete requests mixed into every sweep.
        """
        if t <= 0:
            raise ConfigurationError(f"t must be positive, got {t!r}")
        return chernoff_tail_bound(self.mixed_log_mgf(n, k), t).bound

    def max_discrete_integrated(self, n: int, t: float, delta: float,
                                k_cap: int = 4096) -> int:
        """Largest ``k`` keeping the integrated bound within ``delta``."""
        if not (0.0 < delta < 1.0):
            raise ConfigurationError(
                f"delta must be in (0, 1), got {delta!r}")
        if self.p_late_integrated(n, 0, t) > delta:
            return 0
        best = 0
        for k in range(1, k_cap + 1):
            if self.p_late_integrated(n, k, t) <= delta:
                best = k
            else:
                break
        return best

    # ------------------------------------------------------------------
    # continuous-first policy: discrete lives off the leftover.
    # ------------------------------------------------------------------
    def expected_leftover(self, n: int, t: float) -> float:
        """Expected slack ``max(t - E[T_N], 0)`` of a continuous-only
        round (the budget the discrete side can consume)."""
        return max(t - self.continuous_model().mean(n), 0.0)

    def expected_discrete_service(self) -> float:
        """Mean service time of one discrete request appended to the
        sweep: an independent-ish seek (bounded by the equidistant gap
        of the enlarged sweep is intractable here, so we charge the mean
        random seek), plus rotation, plus transfer."""
        curve = self.spec.seek_curve
        # Mean |U1 - U2| * CYL = CYL/3 for uniform positions.
        mean_seek = float(curve(self.spec.cylinders / 3.0))
        return (mean_seek + self.spec.rot / 2.0
                + self._transfer(self.discrete_sizes).mean())

    def discrete_throughput_estimate(self, n: int, t: float) -> float:
        """Discrete requests per round the leftover sustains on average
        (a planning estimate, not a bound)."""
        service = self.expected_discrete_service()
        return self.expected_leftover(n, t) / service

    def discrete_completion_bound(self, n: int, k: int, t: float) -> float:
        """Bound on P[the k-th discrete request misses the round] under
        continuous-first: the probability that serving all continuous
        plus the first ``k`` discrete requests exceeds ``t``.

        Because continuous requests are served first, this same quantity
        read with ``k = 0`` recovers the unchanged continuous guarantee.
        """
        if k < 0:
            raise ConfigurationError(f"k must be >= 0, got {k!r}")
        if k == 0:
            return self.continuous_model().b_late(n, t)
        return self.p_late_integrated(n, k, t)
