"""Round-length tuning.

The round length ``t`` is "a configuration parameter of our
architecture; changing it would require all data to be re-fragmented"
(§2.3) -- so it is worth choosing well before ingesting a catalog.
Longer rounds amortise seek/rotation overhead over more transferred
bytes and admit more streams, but every admitted stream may wait up to
one round before starting, and client buffers must hold whole fragments.

Admitted bandwidth grows with ``t`` through the practically relevant
range, but not forever: the stream-level guarantee tolerates
``floor(glitch_fraction * M)`` glitches, and with long rounds ``M``
shrinks until the integer budget snaps down a step (e.g. from 2 allowed
glitches to 1), which can *reduce* the admitted count again.  The
interesting object is therefore the *knee*: the shortest round already
achieving (almost) the peak bandwidth over the candidate grid.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.admission import n_max_perror
from repro.core.glitch import GlitchModel
from repro.core.service_time import RoundServiceTimeModel
from repro.disk.presets import DiskSpec
from repro.distributions import Gamma
from repro.errors import ConfigurationError

__all__ = ["RoundLengthPoint", "RoundLengthTuning", "tune_round_length"]


@dataclass(frozen=True)
class RoundLengthPoint:
    """Admission outcome at one candidate round length."""

    t: float
    n_max: int
    bandwidth: float          # bytes/second of admitted display load
    startup_delay: float      # worst-case stream startup wait = t


@dataclass(frozen=True)
class RoundLengthTuning:
    """Result of a round-length sweep."""

    points: tuple[RoundLengthPoint, ...]
    knee: RoundLengthPoint
    knee_fraction: float

    @property
    def peak_bandwidth(self) -> float:
        """Largest admitted bandwidth over the candidate grid."""
        return max(p.bandwidth for p in self.points)


def tune_round_length(spec: DiskSpec, display_bandwidth: float,
                      cv: float, playback_seconds: float,
                      glitch_fraction: float = 0.01,
                      epsilon: float = 0.01,
                      candidates=(0.25, 0.5, 1.0, 2.0, 4.0, 8.0),
                      knee_fraction: float = 0.9,
                      exact: bool = False) -> RoundLengthTuning:
    """Sweep candidate round lengths and locate the bandwidth knee.

    Parameters
    ----------
    display_bandwidth:
        Per-stream display bandwidth in bytes/second; a round of length
        ``t`` carries fragments of mean ``display_bandwidth * t``.
    cv:
        Coefficient of variation of the fragment sizes (VBR burstiness);
        held constant across ``t`` (scene-level variability dominates).
    playback_seconds:
        Stream length; the per-stream guarantee tolerates
        ``glitch_fraction`` of its rounds glitching with confidence
        ``1 - epsilon``.
    knee_fraction:
        The knee is the shortest candidate achieving this fraction of
        the grid's peak bandwidth.
    exact:
        Run the admission solver as an exhaustive scan instead of the
        bisection.  ``p_error`` is monotone in ``N`` for fixed
        ``(t, M, g)``, but the integer glitch budget ``g = floor(
        glitch_fraction * M)`` snaps *between* candidates, and callers
        who post-process the per-``t`` curves sometimes want the
        solver's output provably independent of the prefix assumption.
    """
    if display_bandwidth <= 0:
        raise ConfigurationError(
            f"display_bandwidth must be positive, "
            f"got {display_bandwidth!r}")
    if not (0.0 < cv < 2.0):
        raise ConfigurationError(f"cv must be in (0, 2), got {cv!r}")
    if playback_seconds <= 0:
        raise ConfigurationError(
            f"playback_seconds must be positive, "
            f"got {playback_seconds!r}")
    if not (0.0 < knee_fraction <= 1.0):
        raise ConfigurationError(
            f"knee_fraction must be in (0, 1], got {knee_fraction!r}")
    grid = sorted(set(float(c) for c in candidates))
    if not grid or grid[0] <= 0:
        raise ConfigurationError("candidates must be positive")

    points = []
    for t in grid:
        sizes = Gamma.from_mean_std(display_bandwidth * t,
                                    cv * display_bandwidth * t)
        model = RoundServiceTimeModel.for_disk(spec, sizes)
        glitch = GlitchModel(model, t)
        m = max(int(round(playback_seconds / t)), 1)
        g = max(int(glitch_fraction * m), 1)
        n_max = n_max_perror(glitch, m, g, epsilon, exact=exact)
        points.append(RoundLengthPoint(
            t=t, n_max=n_max, bandwidth=n_max * display_bandwidth,
            startup_delay=t))

    target = knee_fraction * max(p.bandwidth for p in points)
    knee = next(p for p in points if p.bandwidth >= target)
    return RoundLengthTuning(points=tuple(points), knee=knee,
                             knee_fraction=knee_fraction)
