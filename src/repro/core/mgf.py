"""Log-moment-generating-function algebra.

The paper composes the Laplace-Stieltjes transform of the round service
time as a *product* of independent component transforms (eq. 3.1.4)::

    T_N*(s) = e^{-s SEEK} * (T_rot*(s))^N * (T_trans*(s))^N

Working with the moment generating function ``M(theta) = T*(-theta)`` and
in log space, products become sums and N-fold convolutions become integer
multiples, which is exactly what :class:`ProductMGF` implements.  Every
term reports the supremum ``theta_sup`` of its domain so the Chernoff
optimiser knows where the objective stays finite, plus its mean and
variance so the assembled model can report ``E[T_N]``/``Var[T_N]``
without numeric differentiation.
"""

from __future__ import annotations

import abc
import math
from collections.abc import Sequence

from repro.distributions import Deterministic, Distribution, Gamma, Uniform
from repro.errors import ConfigurationError, ModelError

__all__ = [
    "LogMGF",
    "DistributionTerm",
    "ConstantTerm",
    "UniformTerm",
    "GammaTerm",
    "NumericTerm",
    "ProductMGF",
]


class LogMGF(abc.ABC):
    """A log-moment-generating function ``theta -> log E[e^{theta X}]``."""

    @property
    @abc.abstractmethod
    def theta_sup(self) -> float:
        """Supremum of the positive domain: finite for ``theta`` in
        ``[0, theta_sup)``."""

    @abc.abstractmethod
    def __call__(self, theta: float) -> float:
        """Evaluate ``log E[e^{theta X}]``; ``math.inf`` outside the
        domain."""

    @abc.abstractmethod
    def mean(self) -> float:
        """``E[X]`` of the underlying random variable."""

    @abc.abstractmethod
    def var(self) -> float:
        """``Var[X]`` of the underlying random variable."""

    # ------------------------------------------------------------------
    def __mul__(self, other: "LogMGF") -> "ProductMGF":
        """MGF of the sum of two independent variables."""
        if not isinstance(other, LogMGF):
            return NotImplemented
        return ProductMGF([(self, 1), (other, 1)])

    def pow(self, n: int) -> "ProductMGF":
        """MGF of the sum of ``n`` i.i.d. copies (N-fold convolution)."""
        if not isinstance(n, int) or n < 0:
            raise ConfigurationError(f"power must be an int >= 0, got {n!r}")
        return ProductMGF([(self, n)])


class DistributionTerm(LogMGF):
    """Adapter turning any :class:`Distribution` with an MGF into a term."""

    def __init__(self, dist: Distribution) -> None:
        if not dist.has_mgf():
            raise ModelError(
                f"{dist!r} has no MGF; truncate it before building terms")
        self.dist = dist

    @property
    def theta_sup(self) -> float:
        return self.dist.theta_sup

    def __call__(self, theta: float) -> float:
        if theta >= self.theta_sup:
            return math.inf
        return self.dist.log_mgf(theta)

    def mean(self) -> float:
        return self.dist.mean()

    def var(self) -> float:
        return self.dist.var()

    def __repr__(self) -> str:
        return f"DistributionTerm({self.dist!r})"


class ConstantTerm(DistributionTerm):
    """MGF term of a constant: ``log M = theta * value``.

    Used for the ``SEEK`` component (eq. 3.1.3's ``e^{-s SEEK}``).
    """

    def __init__(self, value: float) -> None:
        super().__init__(Deterministic(value))
        self.value = float(value)

    def __repr__(self) -> str:
        return f"ConstantTerm({self.value:.6g})"


class UniformTerm(DistributionTerm):
    """MGF term of ``Uniform(0, rot)`` -- the rotational latency
    (eq. 3.1.3's ``(1 - e^{-s ROT})/(s ROT)``)."""

    def __init__(self, rot: float) -> None:
        super().__init__(Uniform(0.0, rot))
        self.rot = float(rot)

    def __repr__(self) -> str:
        return f"UniformTerm(rot={self.rot:.6g})"


class GammaTerm(DistributionTerm):
    """MGF term of a Gamma -- the transfer time
    (eq. 3.1.3's ``(alpha/(alpha+s))^beta``)."""

    def __init__(self, gamma: Gamma) -> None:
        super().__init__(gamma)
        self.gamma = gamma

    @classmethod
    def from_mean_var(cls, mean: float, var: float) -> "GammaTerm":
        """Moment-matched Gamma term (eq. 3.1.2 / 3.2.10)."""
        return cls(Gamma.from_mean_var(mean, var))

    def __repr__(self) -> str:
        return f"GammaTerm({self.gamma!r})"


class NumericTerm(DistributionTerm):
    """MGF term evaluated numerically from any bounded-support law.

    This is the escape hatch the paper mentions for "other heavy-tailed
    distributions ... as long as we can derive (or approximate) the
    corresponding Laplace-Stieltjes transform": wrap the law in
    :class:`~repro.distributions.truncated.Truncated` (or use an
    :class:`~repro.distributions.empirical.Empirical` sample) and this
    term computes its MGF by quadrature.
    """

    def __repr__(self) -> str:
        return f"NumericTerm({self.dist!r})"


class ProductMGF(LogMGF):
    """Product of powers of terms: the MGF of an independent sum.

    ``ProductMGF([(a, 1), (b, n)])`` is the MGF of ``A + B_1 + ... + B_n``
    with all summands independent -- the shape of eq. (3.1.4).
    """

    def __init__(self, factors: Sequence[tuple[LogMGF, int]]) -> None:
        flat: list[tuple[LogMGF, int]] = []
        for term, count in factors:
            if not isinstance(count, int) or count < 0:
                raise ConfigurationError(
                    f"factor multiplicity must be an int >= 0, got {count!r}")
            if count == 0:
                continue
            if isinstance(term, ProductMGF):
                flat.extend((inner, count * c) for inner, c in term.factors)
            else:
                flat.append((term, count))
        self.factors: tuple[tuple[LogMGF, int], ...] = tuple(flat)

    @property
    def theta_sup(self) -> float:
        if not self.factors:
            return math.inf
        return min(term.theta_sup for term, _ in self.factors)

    def __call__(self, theta: float) -> float:
        total = 0.0
        for term, count in self.factors:
            value = term(theta)
            if math.isinf(value):
                return math.inf
            total += count * value
        return total

    def mean(self) -> float:
        return sum(count * term.mean() for term, count in self.factors)

    def var(self) -> float:
        return sum(count * term.var() for term, count in self.factors)

    def pow(self, n: int) -> "ProductMGF":
        if not isinstance(n, int) or n < 0:
            raise ConfigurationError(f"power must be an int >= 0, got {n!r}")
        return ProductMGF([(term, count * n) for term, count in self.factors])

    def laplace_stieltjes(self, s: float) -> float:
        """The paper's ``T*(s) = E[e^{-sX}] = exp(log_mgf(-s))``."""
        return math.exp(self(-s))

    def __repr__(self) -> str:
        inner = ", ".join(f"{term!r}^{count}" for term, count in self.factors)
        return f"ProductMGF({inner})"
