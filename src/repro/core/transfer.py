"""Transfer-time models (§3.1 single-zone, §3.2 multi-zone).

Single zone: the transfer time is ``T = S / rate`` with ``S`` the
fragment size; for a Gamma-distributed ``S`` this is again exactly Gamma
(scaling property), matching eq. (3.1.2).

Multi-zone: the transfer rate ``R`` follows the zone-skewed law of
eq. (3.2.5); with ``S`` independent of ``R`` the transfer time
``T = S / R`` has the density of eq. (3.2.7)::

    f_T(t) = integral f_rate(r) * r * f_S(t * r) dr

which has no closed-form Laplace-Stieltjes transform.  Following the
paper we approximate ``T`` by a Gamma with matched first two moments
(eq. 3.2.10), computed exactly from ``E[T^k] = E[S^k] * E[R^{-k}]``.
The exact density stays available (both the discrete-zone sum and the
paper's continuous-rate integral) so the quality of the approximation --
the paper's "< 2 % in the 5..100 ms range" claim -- can be measured
(experiment E3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.disk.zones import ZoneMap
from repro.distributions import Distribution, Gamma
from repro.errors import ConfigurationError, ModelError

__all__ = [
    "single_zone_transfer_time",
    "MultiZoneTransferModel",
    "ApproximationReport",
]

_QUAD_ORDER = 200


def _size_moment(size_dist: Distribution, k: int) -> float:
    """Raw moment ``E[S^k]``, using a closed form when available."""
    moment = getattr(size_dist, "moment", None)
    if callable(moment):
        return float(moment(k))
    if k == 1:
        return size_dist.mean()
    if k == 2:
        return size_dist.second_moment()
    raise ModelError(
        f"{type(size_dist).__name__} exposes no raw moment of order {k}")


def single_zone_transfer_time(size_dist: Distribution, rate: float) -> Gamma:
    """Moment-matched Gamma transfer time on a conventional disk.

    For a Gamma ``S`` the result is *exact* (a Gamma divided by a
    constant is Gamma); for other size laws it is the same two-moment
    matching the paper applies throughout.
    """
    if not (rate > 0.0 and math.isfinite(rate)):
        raise ConfigurationError(f"rate must be positive, got {rate!r}")
    mean = size_dist.mean() / rate
    var = size_dist.var() / (rate * rate)
    return Gamma.from_mean_var(mean, var)


@dataclass(frozen=True)
class ApproximationReport:
    """Error of the Gamma approximation against the exact density."""

    times: np.ndarray
    exact_pdf: np.ndarray
    approx_pdf: np.ndarray
    relative_error: np.ndarray

    @property
    def max_relative_error(self) -> float:
        """Worst relative density error over the evaluated grid."""
        return float(np.max(self.relative_error))


class MultiZoneTransferModel:
    """Transfer-time law of a request on a multi-zone disk (§3.2).

    Parameters
    ----------
    zone_map:
        Zone capacity/rate profile of the disk.
    size_dist:
        Fragment-size distribution ``S`` (bytes); must expose first and
        second moments.
    zone_probabilities:
        Optional override of the zone-hit law (defaults to the
        sector-uniform ``C_i / C`` of eq. 3.2.1).  Placement policies
        (:mod:`repro.disk.placement`) supply their own mix here.
    """

    def __init__(self, zone_map: ZoneMap, size_dist: Distribution,
                 zone_probabilities=None) -> None:
        self.zone_map = zone_map
        self.size_dist = size_dist
        if zone_probabilities is None:
            self._zone_probs = zone_map.zone_probabilities
        else:
            probs = np.asarray(zone_probabilities, dtype=float)
            if probs.shape != (zone_map.zones,):
                raise ConfigurationError(
                    f"zone_probabilities must have shape "
                    f"({zone_map.zones},), got {probs.shape}")
            if np.any(probs < 0) or not math.isclose(
                    float(np.sum(probs)), 1.0, rel_tol=1e-9):
                raise ConfigurationError(
                    "zone_probabilities must be a probability vector")
            self._zone_probs = probs
        inv1 = self._rate_moment(-1)
        inv2 = self._rate_moment(-2)
        self._mean = _size_moment(size_dist, 1) * inv1
        second = _size_moment(size_dist, 2) * inv2
        self._var = second - self._mean ** 2
        if self._var <= 0.0:
            raise ModelError(
                "transfer-time variance is non-positive; degenerate inputs")

    def _rate_moment(self, k: int) -> float:
        rates = self.zone_map.rates
        return float(np.sum(self._zone_probs * rates ** k))

    # ------------------------------------------------------------------
    def mean(self) -> float:
        """``E[T] = E[S] * E[1/R]``."""
        return self._mean

    def var(self) -> float:
        """``Var[T] = E[S^2] E[1/R^2] - (E[S] E[1/R])^2``."""
        return self._var

    def gamma_approximation(self) -> Gamma:
        """The moment-matched Gamma of eq. (3.2.10)."""
        return Gamma.from_mean_var(self._mean, self._var)

    # ------------------------------------------------------------------
    def exact_pdf(self, t) -> np.ndarray:
        """Exact density of ``T`` with the *discrete* zone law.

        ``f_T(t) = sum_i p_i R_i f_S(t R_i)`` -- the discrete analogue of
        eq. (3.2.7) (change of variable ``S = T * R`` inside each zone).
        """
        t = np.atleast_1d(np.asarray(t, dtype=float))
        rates = self.zone_map.rates
        probs = self._zone_probs
        grid = t[:, None] * rates[None, :]
        dens = np.asarray(self.size_dist.pdf(grid))
        return np.sum(probs[None, :] * rates[None, :] * dens, axis=1)

    def continuous_pdf(self, t) -> np.ndarray:
        """The paper's continuous-rate integral, eq. (3.2.7).

        ``f_T(t) = int_{R_min}^{R_max} f_rate(r) * r * f_S(t r) dr``
        with ``f_rate(r) = 2r / (R_max^2 - R_min^2)`` (the continuum limit
        of eq. 3.2.6), evaluated by Gauss-Legendre quadrature.
        """
        if self.zone_map.zones == 1:
            raise ModelError(
                "continuous multi-zone density undefined for a single zone")
        t = np.atleast_1d(np.asarray(t, dtype=float))
        lo, hi = self.zone_map.r_min, self.zone_map.r_max
        nodes, weights = np.polynomial.legendre.leggauss(_QUAD_ORDER)
        half = 0.5 * (hi - lo)
        r = 0.5 * (hi + lo) + half * nodes
        w = half * weights
        f_rate = self.zone_map.continuous_rate_pdf(r)
        grid = t[:, None] * r[None, :]
        f_s = np.asarray(self.size_dist.pdf(grid))
        return np.sum((w * f_rate * r)[None, :] * f_s, axis=1)

    def exact_cdf(self, t) -> np.ndarray:
        """Exact cdf of ``T`` with the discrete zone law:
        ``F_T(t) = sum_i p_i F_S(t R_i)``."""
        t = np.atleast_1d(np.asarray(t, dtype=float))
        rates = self.zone_map.rates
        probs = self._zone_probs
        grid = t[:, None] * rates[None, :]
        return np.sum(probs[None, :] * np.asarray(self.size_dist.cdf(grid)),
                      axis=1)

    # ------------------------------------------------------------------
    def approximation_report(self, t_lo: float = 5e-3, t_hi: float = 100e-3,
                             points: int = 200,
                             use_continuous: bool = False
                             ) -> ApproximationReport:
        """Quantify the Gamma-approximation error on ``[t_lo, t_hi]``.

        The paper claims a relative error below 2 % "in the most relevant
        range of the transfer time (... between 5 and 100 milliseconds)".
        Relative error here is ``|approx - exact| / max(exact)`` --
        normalising by the density peak avoids the spurious blow-up where
        the exact density itself vanishes.
        """
        if not (t_hi > t_lo > 0.0):
            raise ConfigurationError("require 0 < t_lo < t_hi")
        times = np.linspace(t_lo, t_hi, points)
        exact = (self.continuous_pdf(times) if use_continuous
                 else self.exact_pdf(times))
        approx = np.asarray(self.gamma_approximation().pdf(times))
        scale = float(np.max(exact))
        if scale <= 0.0:
            raise ModelError("exact density vanished on the whole grid")
        rel = np.abs(approx - exact) / scale
        return ApproximationReport(times=times, exact_pdf=exact,
                                   approx_pdf=approx, relative_error=rel)

    def sample(self, rng: np.random.Generator, size=None):
        """Sample exact transfer times (size / zoned rate) under the
        model's zone-hit law."""
        sizes = np.asarray(self.size_dist.sample(rng, size=size))
        cum = np.cumsum(self._zone_probs)
        zones = np.searchsorted(cum, rng.random(size=size), side="right")
        zones = np.minimum(zones, self.zone_map.zones - 1)
        rates = self.zone_map.rates[zones]
        return sizes / rates

    def __repr__(self) -> str:
        return (f"MultiZoneTransferModel(mean={self._mean:.6g}, "
                f"std={math.sqrt(self._var):.6g}, "
                f"zones={self.zone_map.zones})")
