"""Stream-phase balance across a striped disk farm.

The paper analyses a single disk "assuming that the load is uniformly
distributed across disks" (§3).  With stride-1 round-robin striping a
stream's disk in round ``r`` is ``(c + r) mod D`` for a per-stream
constant *phase* ``c``, so the per-disk batch size in every round equals
the population of each phase class -- the uniform-load assumption is a
statement about phases.

This module quantifies what phase management is worth:

- **Balanced phases** (the server staggers stream starts,
  :meth:`repro.server.MediaServer.open_stream`): every disk serves
  ``ceil(N/D)`` requests per round -- the paper's per-disk model applies
  directly.
- **Random phases** (streams start whenever they arrive): a disk's
  batch is ``Binomial(N, 1/D)``-distributed, and a given stream shares
  its disk with ``Binomial(N-1, 1/D)`` others.  The per-stream glitch
  bound becomes the binomial mixture of the per-load bounds, which is
  *worse* than the balanced bound at the same total N because
  ``b_glitch`` is convex in the load.
"""

from __future__ import annotations

import math

from scipy import stats

from repro.core.glitch import GlitchModel
from repro.distributions import hagerup_rub_tail
from repro.errors import ConfigurationError

__all__ = [
    "balanced_glitch_bound",
    "random_phase_glitch_bound",
    "n_max_balanced",
    "n_max_random_phases",
]


def _validate(n_total: int, disks: int) -> None:
    if disks < 1:
        raise ConfigurationError(f"disks must be >= 1, got {disks!r}")
    if n_total < 1:
        raise ConfigurationError(
            f"n_total must be >= 1, got {n_total!r}")


def balanced_glitch_bound(glitch_model: GlitchModel, n_total: int,
                          disks: int) -> float:
    """Per-stream per-round glitch bound with staggered (balanced)
    phases: every disk's batch is at most ``ceil(N/D)``."""
    _validate(n_total, disks)
    return glitch_model.b_glitch(math.ceil(n_total / disks))


def random_phase_glitch_bound(glitch_model: GlitchModel, n_total: int,
                              disks: int) -> float:
    """Per-stream per-round glitch bound with uniformly random phases.

    The tagged stream's disk carries ``1 + Binomial(N-1, 1/D)`` requests
    in its round; conditioning on that load ``k`` the §3.3 argument
    gives ``b_glitch(k)``, so the unconditional bound is the binomial
    mixture ``E[b_glitch(1 + B)]``.
    """
    _validate(n_total, disks)
    if disks == 1:
        return glitch_model.b_glitch(n_total)
    pmf = stats.binom.pmf(range(n_total), n_total - 1, 1.0 / disks)
    total = sum(p * glitch_model.b_glitch(1 + k)
                for k, p in enumerate(pmf) if p > 1e-15)
    return min(float(total), 1.0)


def _scan_total(bound_fn, glitch_model: GlitchModel, disks: int, m: int,
                g: int, epsilon: float, n_cap: int) -> int:
    best = 0
    for n in range(1, n_cap + 1):
        p = bound_fn(glitch_model, n, disks)
        if hagerup_rub_tail(m, p, g) <= epsilon:
            best = n
        else:
            break
    return best


def n_max_balanced(glitch_model: GlitchModel, disks: int, m: int, g: int,
                   epsilon: float, n_cap: int = 2048) -> int:
    """Farm-wide ``N_max`` (total streams) with balanced phases --
    ``disks`` times the per-disk eq. (3.3.6) limit, recovered through
    the same machinery for comparability."""
    if not (0.0 < epsilon < 1.0):
        raise ConfigurationError(
            f"epsilon must be in (0, 1), got {epsilon!r}")
    return _scan_total(balanced_glitch_bound, glitch_model, disks, m, g,
                       epsilon, n_cap)


def n_max_random_phases(glitch_model: GlitchModel, disks: int, m: int,
                        g: int, epsilon: float, n_cap: int = 2048) -> int:
    """Farm-wide ``N_max`` when stream phases are left random.

    Always at most :func:`n_max_balanced`; the gap is the admission
    price of not staggering stream starts.
    """
    if not (0.0 < epsilon < 1.0):
        raise ConfigurationError(
            f"epsilon must be in (0, 1), got {epsilon!r}")
    return _scan_total(random_phase_glitch_bound, glitch_model, disks, m,
                       g, epsilon, n_cap)
