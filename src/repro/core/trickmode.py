"""Trick modes: fast-forward load analysis.

§2.1 assumes "most users consume complete objects (as opposed to
fast-forwarding a video or viewing only a short prefix)".  This module
quantifies what relaxing that assumption costs.

Two fast-forward implementations exist in practice:

- **skip mode**: display every ``k``-th fragment at normal rate.  The
  stream still fetches one fragment per round, so the *load is
  unchanged* -- only the striping phase pattern shifts (fragment
  ``i + k`` lives ``k`` disks ahead, which round-robin striping absorbs:
  the stream simply advances its phase class by ``k - 1`` each round).
- **scan mode**: display all content at ``k``-times speed.  The stream
  consumes ``k`` fragments per round and therefore places ``k`` requests
  into every sweep -- a ``k``-fold load multiplier that the admission
  control must charge.

The scan-mode analysis maps directly onto the §3 machinery: a round
serving ``n_normal`` normal streams and ``n_ff`` scan-mode streams at
multiplier ``k`` is a round of ``n_normal + k * n_ff`` i.i.d. requests.
"""

from __future__ import annotations

from repro.core.service_time import RoundServiceTimeModel
from repro.errors import ConfigurationError

__all__ = ["scan_mode_requests", "ff_round_bound", "n_max_with_ff"]


def scan_mode_requests(n_normal: int, n_ff: int, k: int) -> int:
    """Requests per round with ``n_ff`` scan-mode streams at ``k``x."""
    if n_normal < 0 or n_ff < 0 or n_normal + n_ff < 1:
        raise ConfigurationError(
            f"need non-negative stream counts with at least one "
            f"stream, got n_normal={n_normal!r}, n_ff={n_ff!r}")
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k!r}")
    return n_normal + k * n_ff


def ff_round_bound(model: RoundServiceTimeModel, n_normal: int,
                   n_ff: int, k: int, t: float) -> float:
    """Chernoff lateness bound of a round with scan-mode FF streams."""
    return model.b_late(scan_mode_requests(n_normal, n_ff, k), t)


def n_max_with_ff(model: RoundServiceTimeModel, t: float, delta: float,
                  ff_fraction: float, k: int, n_cap: int = 512) -> int:
    """Largest total stream count when a fraction fast-forwards.

    ``ff_fraction`` of the admitted streams are assumed to be in
    ``k``-times scan mode at any instant (the provisioning worst case a
    VOD operator plans for); the rest stream normally.  Returns the
    largest total ``N`` whose worst-round bound stays within ``delta``.
    """
    if not (0.0 <= ff_fraction <= 1.0):
        raise ConfigurationError(
            f"ff_fraction must be in [0, 1], got {ff_fraction!r}")
    if not (0.0 < delta < 1.0):
        raise ConfigurationError(
            f"delta must be in (0, 1), got {delta!r}")
    best = 0
    for n in range(1, n_cap + 1):
        n_ff = int(round(ff_fraction * n))
        requests = scan_mode_requests(n - n_ff, n_ff, k)
        if model.b_late(requests, t) <= delta:
            best = n
        else:
            break
    return best
