"""Worst-case lumped SCAN seek time (Oyang's bound).

[Oya95] shows that, for seek-time functions that are square-root-like for
short distances and linear for long ones, the *total* seek time of one
SCAN sweep over ``N`` requests is maximised when the requests sit at the
equidistant cylinders ``i * CYL / (N+1)``, ``i = 1..N`` (§3.1).  The
sweep then consists of ``N + 1`` hops of ``CYL/(N+1)`` cylinders each
(edge -> first request, N-1 inter-request hops, last request -> edge),
so::

    SEEK(N) = (N + 1) * seek(CYL / (N + 1))

The paper's worked example confirms the convention: for N = 27 and
CYL = 6720 it quotes SEEK = 0.10932 s = 28 * seek(240).
"""

from __future__ import annotations

import numpy as np

from repro.disk.seek import SeekCurve
from repro.errors import ConfigurationError

__all__ = ["equidistant_positions", "oyang_seek_bound"]


def equidistant_positions(cylinders: int, n: int) -> np.ndarray:
    """The worst-case request cylinders ``i * CYL/(N+1)``, ``i = 1..N``."""
    if cylinders < 2:
        raise ConfigurationError(f"cylinders must be >= 2, got {cylinders!r}")
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n!r}")
    i = np.arange(1, n + 1, dtype=float)
    return i * cylinders / (n + 1)


def oyang_seek_bound(seek_curve: SeekCurve, cylinders: int, n: int) -> float:
    """Upper bound ``SEEK(N)`` on the lumped seek time of one sweep.

    The bound is valid for multi-zone disks too (§3.2: zoning only skews
    positions toward the outer tracks, which can only shorten seeks).

    ``n = 0`` returns 0 (an empty sweep does not move the arm).
    """
    if n < 0:
        raise ConfigurationError(f"n must be >= 0, got {n!r}")
    if n == 0:
        return 0.0
    gap = cylinders / (n + 1)
    return (n + 1) * float(seek_curve(gap))
