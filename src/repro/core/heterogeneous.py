"""Heterogeneous stream classes (extension).

The paper's abstract promises "variable display bandwidth both across
different streams and within a single stream".  Within-stream
variability is the Gamma fragment law; *across-stream* variability is
handled here: the server carries several stream classes (audio, SD
video, HD video, ...) and a round's batch mixes their requests.  With
class ``i`` holding a fraction ``w_i`` of the admitted streams, a
uniformly-chosen request's transfer time follows the class mixture,
which still has an MGF, so eq. (3.1.4)'s N-fold convolution applies to
the mixture term unchanged.

This is exact when each round's batch is a multinomial draw over
classes (e.g. randomly phased streams) and a very good approximation
when class counts per round are fixed at ``N * w_i`` (the MGF of the
fixed-count round is the product of per-class powers; both are provided
so the difference can be measured).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.mgf import ConstantTerm, DistributionTerm, ProductMGF, UniformTerm
from repro.core.chernoff import chernoff_tail_bound
from repro.core.seek import oyang_seek_bound
from repro.core.service_time import RoundServiceTimeModel
from repro.core.transfer import MultiZoneTransferModel, single_zone_transfer_time
from repro.disk.presets import DiskSpec
from repro.distributions import Distribution, Mixture
from repro.errors import ConfigurationError

__all__ = ["StreamClass", "class_mixture_model", "fixed_mix_p_late"]


@dataclass(frozen=True)
class StreamClass:
    """One class of streams sharing a fragment-size law.

    Attributes
    ----------
    name:
        Display label.
    size_dist:
        Fragment-size distribution of the class (bytes per round).
    share:
        Fraction (or unnormalised weight) of the admitted streams that
        belong to this class.
    """

    name: str
    size_dist: Distribution
    share: float

    def __post_init__(self) -> None:
        if self.share <= 0:
            raise ConfigurationError(
                f"class {self.name!r} share must be positive")


def _class_transfer(spec: DiskSpec, size_dist: Distribution,
                    multizone: bool) -> Distribution:
    if multizone and spec.zone_map.zones > 1:
        return MultiZoneTransferModel(spec.zone_map,
                                      size_dist).gamma_approximation()
    rate = (spec.zone_map.harmonic_mean_rate()
            if spec.zone_map.zones > 1 else spec.zone_map.r_min)
    return single_zone_transfer_time(size_dist, rate)


def class_mixture_model(spec: DiskSpec, classes: list[StreamClass],
                        multizone: bool = True) -> RoundServiceTimeModel:
    """Round model whose per-request transfer time is the class mixture.

    Suitable for admission control over the *total* stream count when
    the class mix is (approximately) stable.
    """
    if not classes:
        raise ConfigurationError("need at least one stream class")
    transfer = Mixture([
        (cls.share, _class_transfer(spec, cls.size_dist, multizone))
        for cls in classes
    ])

    def seek_bound(n: int, _spec=spec) -> float:
        return oyang_seek_bound(_spec.seek_curve, _spec.cylinders, n)

    return RoundServiceTimeModel(seek_bound=seek_bound, rot=spec.rot,
                                 transfer=transfer)


def fixed_mix_p_late(spec: DiskSpec, counts: dict[str, int],
                     classes: list[StreamClass], t: float,
                     multizone: bool = True) -> float:
    """Chernoff bound for a round with *fixed* per-class counts.

    ``counts`` maps class names to the exact number of requests of that
    class in the round; the MGF is the product of per-class powers
    (tighter than the multinomial mixture when the mix is pinned).
    """
    by_name = {cls.name: cls for cls in classes}
    unknown = set(counts) - set(by_name)
    if unknown:
        raise ConfigurationError(f"unknown classes: {sorted(unknown)}")
    n_total = sum(counts.values())
    if n_total < 1:
        raise ConfigurationError("need at least one request in the round")
    if any(c < 0 for c in counts.values()):
        raise ConfigurationError("class counts must be >= 0")

    factors: list[tuple] = [
        (ConstantTerm(oyang_seek_bound(spec.seek_curve, spec.cylinders,
                                       n_total)), 1),
        (UniformTerm(spec.rot), n_total),
    ]
    for name, count in counts.items():
        if count == 0:
            continue
        transfer = _class_transfer(spec, by_name[name].size_dist,
                                   multizone)
        factors.append((DistributionTerm(transfer), count))
    return chernoff_tail_bound(ProductMGF(factors), t).bound
