"""Per-stream glitch probability (§3.3).

With fragments placed at uncorrelated random positions, the ``k``
glitches of an overrunning round hit a uniformly random ``k``-subset of
the ``N`` streams.  Equation (3.3.2) telescopes the per-stream glitch
probability into::

    p_glitch(N, t) = (1/N) * sum_{k=1..N} p_late(k, t)

bounded by ``b_glitch(N,t) = (1/N) sum_k b_late(k, t)`` (eq. 3.3.3).
Glitches of one stream across ``M`` rounds are Binomial(M, p_glitch)
(eq. 3.3.4); their upper tail ``p_error = P[#glitches >= g]`` is bounded
by the Hagerup-Rüb inequality (eq. 3.3.5).

Note the paper's prose says "more than g glitches" while eq. (3.3.5)
bounds ``P[... >= g]``; we follow the formula (``>= g``) everywhere and
say so in EXPERIMENTS.md.
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.service_time import RoundServiceTimeModel
from repro.distributions import binomial_tail, hagerup_rub_tail
from repro.errors import ConfigurationError

__all__ = ["GlitchModel"]


class GlitchModel:
    """Glitch-rate bounds for one stream under multiprogramming level N.

    Parameters
    ----------
    service_model:
        The round service-time model providing ``b_late(k, t)``.
    t:
        Round length in seconds.
    """

    def __init__(self, service_model: RoundServiceTimeModel,
                 t: float) -> None:
        if not (t > 0.0):
            raise ConfigurationError(f"round length must be positive: {t!r}")
        self.service_model = service_model
        self.t = float(t)

    # ------------------------------------------------------------------
    @lru_cache(maxsize=1024)
    def b_glitch(self, n: int) -> float:
        """Bound on P[a given stream glitches in one round], eq. (3.3.3).

        ``(1/N) sum_{k=1..N} b_late(k, t)``, clipped to 1.
        """
        if not isinstance(n, int) or n < 1:
            raise ConfigurationError(f"n must be an int >= 1, got {n!r}")
        total = sum(self.service_model.b_late(k, self.t)
                    for k in range(1, n + 1))
        return min(total / n, 1.0)

    # ------------------------------------------------------------------
    def p_error(self, n: int, m: int, g: int) -> float:
        """Bound on P[stream suffers >= g glitches in M rounds].

        Hagerup-Rüb bound (eq. 3.3.5) evaluated at ``b_glitch(n)``; since
        ``b_glitch`` upper-bounds ``p_glitch`` and the binomial tail is
        monotone in ``p``, the result bounds the true ``p_error``.
        """
        return hagerup_rub_tail(m, self.b_glitch(n), g)

    def p_error_exact_tail(self, n: int, m: int, g: int) -> float:
        """Exact Binomial(M, b_glitch) tail -- eq. (3.3.4) summed.

        Still an upper bound on the true ``p_error`` (through
        ``b_glitch``), but without the Hagerup-Rüb slack; used to measure
        how much the closed-form bound gives away.
        """
        return binomial_tail(m, self.b_glitch(n), g)

    def expected_glitches(self, n: int, m: int) -> float:
        """Upper bound on the expected number of glitches of one stream
        over ``M`` rounds: ``M * b_glitch(n)``."""
        if m < 1:
            raise ConfigurationError(f"m must be >= 1, got {m!r}")
        return m * self.b_glitch(n)

    def glitch_rate_bound(self, n: int) -> float:
        """Upper bound on the long-run per-round glitch rate of a
        stream (equals ``b_glitch``; provided for API clarity)."""
        return self.b_glitch(n)

    def __repr__(self) -> str:
        return f"GlitchModel(t={self.t:.6g}, model={self.service_model!r})"
