"""Disk fault/degradation modelling (robustness extension).

1990s drives -- the paper's hardware generation -- performed periodic
*thermal recalibration*: the actuator seizes the arm for tens of
milliseconds at unpredictable instants, a notorious problem for
continuous media (it motivated "AV-rated" drives).  The MGF algebra of
§3.1 absorbs such a disturbance for free: a recalibration hitting a
round with probability ``q`` and costing ``d`` seconds is the two-point
mixture ``(1-q) delta_0 + q delta_d``, whose MGF multiplies into the
round transform (eq. 3.1.4) like any other independent term.

The same mechanism models *degraded media rate* (e.g. a drive remapping
sectors): scale the zone capacities and rebuild the transfer term.
"""

from __future__ import annotations

from repro.core.service_time import RoundServiceTimeModel
from repro.distributions import Deterministic, Distribution, Mixture
from repro.errors import ConfigurationError

__all__ = ["recalibration_disturbance", "with_recalibration"]


def recalibration_disturbance(prob: float, duration: float) -> Mixture:
    """The per-round disturbance law: 0 w.p. ``1-prob``, ``duration``
    seconds w.p. ``prob``."""
    if not (0.0 < prob < 1.0):
        raise ConfigurationError(
            f"prob must be in (0, 1), got {prob!r}")
    if duration <= 0.0:
        raise ConfigurationError(
            f"duration must be positive, got {duration!r}")
    return Mixture([(1.0 - prob, Deterministic(0.0)),
                    (prob, Deterministic(duration))])


class _RecalibratedModel(RoundServiceTimeModel):
    """Round model with one recalibration opportunity per round."""

    def __init__(self, base: RoundServiceTimeModel,
                 disturbance: Distribution) -> None:
        super().__init__(seek_bound=base._seek_bound, rot=base.rot,
                         transfer=base.transfer)
        self._disturbance = disturbance

    def log_mgf(self, n: int):
        from repro.core.mgf import DistributionTerm, ProductMGF
        base = super().log_mgf(n)
        return ProductMGF([(base, 1),
                           (DistributionTerm(self._disturbance), 1)])


def with_recalibration(model: RoundServiceTimeModel, prob: float,
                       duration: float) -> RoundServiceTimeModel:
    """A copy of ``model`` whose rounds each suffer a thermal
    recalibration of ``duration`` seconds with probability ``prob``.

    All the derived machinery (``b_late``, :class:`GlitchModel`,
    ``N_max`` solvers) works on the returned model unchanged.
    """
    return _RecalibratedModel(model, recalibration_disturbance(prob,
                                                               duration))
