"""The paper's primary contribution: the analytic service-guarantee model.

Layer map (bottom-up):

- :mod:`repro.core.mgf` -- log-moment-generating-function algebra; builds
  the transform of eq. (3.1.4)/(3.2.11) as a product of per-component
  terms.
- :mod:`repro.core.chernoff` -- the tail-bound optimiser of
  eq. (3.1.5)/(3.2.12).
- :mod:`repro.core.seek` -- Oyang's worst-case lumped SCAN seek bound.
- :mod:`repro.core.transfer` -- transfer-time laws: exact single-zone,
  and the multi-zone density of eq. (3.2.7) with its moment-matched
  Gamma approximation (eq. 3.2.10).
- :mod:`repro.core.service_time` -- the round service time ``T_N`` and
  ``b_late(N, t)`` (eq. 3.1.6).
- :mod:`repro.core.glitch` -- per-stream glitch probability
  (eq. 3.3.3) and the ``p_error`` bound over ``M`` rounds (eq. 3.3.5).
- :mod:`repro.core.admission` -- ``N_max`` solvers (eq. 3.1.7, 3.3.6,
  4.1) and the §5 lookup tables.
- :mod:`repro.core.baselines` -- prior-work comparators (deterministic
  worst case, CLT normal approximation, Tschebyscheff bound,
  independent-seeks model).
"""

from repro.core.mgf import (
    LogMGF,
    DistributionTerm,
    ConstantTerm,
    UniformTerm,
    GammaTerm,
    NumericTerm,
    ProductMGF,
)
from repro.core.chernoff import ChernoffResult, chernoff_tail_bound
from repro.core.seek import oyang_seek_bound, equidistant_positions
from repro.core.transfer import (
    single_zone_transfer_time,
    MultiZoneTransferModel,
)
from repro.core.service_time import RoundServiceTimeModel
from repro.core.glitch import GlitchModel
from repro.core.admission import (
    n_max_plate,
    n_max_perror,
    worst_case_n_max,
    AdmissionTable,
)
from repro.core.baselines import (
    normal_approximation_p_late,
    tschebyscheff_p_late,
    independent_seek_time_distribution,
)
from repro.core.heterogeneous import (
    StreamClass,
    class_mixture_model,
    fixed_mix_p_late,
)
from repro.core.buffering import BufferChain, PrefetchPlan
from repro.core.mixed import MixedWorkloadModel
from repro.core.striping import (
    balanced_glitch_bound,
    random_phase_glitch_bound,
    n_max_balanced,
    n_max_random_phases,
)
from repro.core.sharing import (
    zipf_popularity,
    expected_distinct_fetches,
    sharing_factor,
    effective_stream_capacity,
)
from repro.core.faults import recalibration_disturbance, with_recalibration
from repro.core.farm import (
    FarmPlan,
    degraded_mode_n_max,
    degraded_modes,
    plan_farm,
)
from repro.core.gss import gss_group_p_late, gss_tradeoff, n_max_gss
from repro.core.tuning import tune_round_length
from repro.core.buffering import n_max_hiccup, optimal_prefill

__all__ = [
    "LogMGF",
    "DistributionTerm",
    "ConstantTerm",
    "UniformTerm",
    "GammaTerm",
    "NumericTerm",
    "ProductMGF",
    "ChernoffResult",
    "chernoff_tail_bound",
    "oyang_seek_bound",
    "equidistant_positions",
    "single_zone_transfer_time",
    "MultiZoneTransferModel",
    "RoundServiceTimeModel",
    "GlitchModel",
    "n_max_plate",
    "n_max_perror",
    "worst_case_n_max",
    "AdmissionTable",
    "normal_approximation_p_late",
    "tschebyscheff_p_late",
    "independent_seek_time_distribution",
    "StreamClass",
    "class_mixture_model",
    "fixed_mix_p_late",
    "BufferChain",
    "PrefetchPlan",
    "MixedWorkloadModel",
    "balanced_glitch_bound",
    "random_phase_glitch_bound",
    "n_max_balanced",
    "n_max_random_phases",
    "zipf_popularity",
    "expected_distinct_fetches",
    "sharing_factor",
    "effective_stream_capacity",
    "recalibration_disturbance",
    "with_recalibration",
    "FarmPlan",
    "plan_farm",
    "degraded_mode_n_max",
    "degraded_modes",
    "gss_group_p_late",
    "gss_tradeoff",
    "n_max_gss",
    "tune_round_length",
    "n_max_hiccup",
    "optimal_prefill",
]
