"""Disk-farm admission: heterogeneous drives and degraded mode.

The paper analyses one disk and multiplies by ``D`` under uniform load
(§3).  Two practical farm questions fall outside that treatment:

**Heterogeneous farms.**  With stride-1 striping every stream visits
every disk once per ``D`` rounds, so each disk serves ``ceil(N/D)``
requests per round regardless of its speed -- the farm's admission is
bound by its *weakest* disk::

    N_max_farm = D * min_i n_max_i

Adding a slow disk to a fast farm can therefore *reduce* total
capacity (bench A18 demonstrates the crossover), which is why real
deployments stripe within homogeneous groups.

**Degraded mode.**  When a disk fails, its mirror serves both its own
round batch and the failed disk's (classic RAID-1 read degradation:
double load on the survivor).  A server that must keep its guarantee
*through* a single failure admits against the doubled-batch bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.admission import n_max_perror, n_max_plate
from repro.core.glitch import GlitchModel
from repro.core.service_time import RoundServiceTimeModel
from repro.disk.presets import DiskSpec
from repro.distributions import Distribution
from repro.errors import ConfigurationError

__all__ = ["FarmPlan", "plan_farm", "degraded_mode_n_max"]


@dataclass(frozen=True)
class FarmPlan:
    """Admission plan of a (possibly heterogeneous) striped farm."""

    per_disk_n_max: tuple[int, ...]
    binding_disk: int
    n_max_total: int

    @property
    def wasted_streams(self) -> int:
        """Streams lost to heterogeneity: what the farm would admit if
        every disk matched its own limit vs the weakest-disk rule."""
        return sum(self.per_disk_n_max) - self.n_max_total


def plan_farm(specs: list[DiskSpec], size_dist: Distribution, t: float,
              m: int, g: int, epsilon: float,
              multizone: bool = True) -> FarmPlan:
    """Admission plan for a striped farm of the given disks.

    Every disk gets its own §3 model; the farm admits
    ``D * min_i n_max_i`` because striping loads all disks equally.
    """
    if not specs:
        raise ConfigurationError("need at least one disk")
    if not (0.0 < epsilon < 1.0):
        raise ConfigurationError(
            f"epsilon must be in (0, 1), got {epsilon!r}")
    limits = []
    for spec in specs:
        model = RoundServiceTimeModel.for_disk(spec, size_dist,
                                               multizone=multizone)
        glitch = GlitchModel(model, t)
        limits.append(n_max_perror(glitch, m, g, epsilon))
    binding = min(range(len(limits)), key=lambda i: limits[i])
    return FarmPlan(per_disk_n_max=tuple(limits), binding_disk=binding,
                    n_max_total=len(specs) * limits[binding])


def degraded_mode_n_max(spec: DiskSpec, size_dist: Distribution,
                        t: float, delta: float,
                        multizone: bool = True) -> tuple[int, int]:
    """Per-disk stream limits ``(healthy, failure_proof)``.

    ``healthy`` is the usual eq. (3.1.7) limit.  ``failure_proof`` is
    the largest per-disk count whose *doubled* batch (the survivor of a
    mirrored pair absorbing its partner's requests) still meets the
    round deadline with probability ``1 - delta`` -- the admission level
    at which a single disk failure stays invisible to every stream.
    """
    if not (0.0 < delta < 1.0):
        raise ConfigurationError(
            f"delta must be in (0, 1), got {delta!r}")
    model = RoundServiceTimeModel.for_disk(spec, size_dist,
                                           multizone=multizone)
    healthy = n_max_plate(model, t, delta)
    failure_proof = 0
    for n in range(1, healthy + 1):
        if model.b_late(2 * n, t) <= delta:
            failure_proof = n
        else:
            break
    return healthy, failure_proof
