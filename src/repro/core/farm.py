"""Disk-farm admission: heterogeneous drives and degraded mode.

The paper analyses one disk and multiplies by ``D`` under uniform load
(§3).  Two practical farm questions fall outside that treatment:

**Heterogeneous farms.**  With stride-1 striping every stream visits
every disk once per ``D`` rounds, so each disk serves ``ceil(N/D)``
requests per round regardless of its speed -- the farm's admission is
bound by its *weakest* disk::

    N_max_farm = D * min_i n_max_i

Adding a slow disk to a fast farm can therefore *reduce* total
capacity (bench A18 demonstrates the crossover), which is why real
deployments stripe within homogeneous groups.

**Degraded mode.**  When a disk fails, its mirror serves both its own
round batch and the failed disk's (classic RAID-1 read degradation:
double load on the survivor).  A server that must keep its guarantee
*through* a single failure admits against the doubled-batch bound.

Both scans accept ``jobs``: the per-disk ``N_max`` solves are
independent Chernoff-optimisation pipelines, so a heterogeneous plan
fans them out over the :mod:`repro.parallel` worker pool.  Every
worker's solves land in the persistent bound cache (:mod:`repro.cache`),
so a replanned farm -- or the same plan after a process restart --
re-answers from disk instead of re-optimising.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache import bisect_max_n
from repro.core.admission import n_max_perror, n_max_plate
from repro.core.glitch import GlitchModel
from repro.core.service_time import RoundServiceTimeModel
from repro.disk.presets import DiskSpec
from repro.distributions import Distribution
from repro.errors import ConfigurationError

__all__ = ["FarmPlan", "plan_farm", "degraded_mode_n_max",
           "degraded_modes", "failover_phase_batches", "mirror_of",
           "shed_target"]


def mirror_of(disk: int, disks: int) -> int | None:
    """RAID-1 partner of ``disk`` in a farm of ``disks`` drives.

    Disks pair up as ``(0, 1), (2, 3), ...``; on an odd-sized farm the
    last disk has no partner and ``None`` is returned (a failure there
    is unrecoverable -- its requests are lost until recovery).
    """
    if not (0 <= disk < disks):
        raise ConfigurationError(
            f"disk {disk} out of range [0, {disks})")
    partner = disk ^ 1
    return partner if partner < disks else None


def shed_target(disks: int, failure_proof: int) -> int:
    """Farm-wide stream count the load-shedding policy degrades to.

    ``failure_proof`` is the per-disk limit of
    :func:`degraded_mode_n_max`: with stride-1 striping the survivor of
    a mirrored pair absorbs its partner's batch, so keeping every disk's
    healthy batch at ``failure_proof`` (total ``disks *
    failure_proof`` streams) keeps the doubled batch within the
    degraded-mode Chernoff bound.
    """
    if disks < 1:
        raise ConfigurationError(f"disks must be >= 1, got {disks!r}")
    if failure_proof < 0:
        raise ConfigurationError(
            f"failure_proof must be >= 0, got {failure_proof!r}")
    return disks * failure_proof


def failover_phase_batches(disks: int, n_per_disk: int,
                           degraded_n_max: int | None = None,
                           fail_disk: int = 0,
                           shedding: bool = True
                           ) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """Per-disk round batch sizes before and during a single failure.

    Returns ``(healthy, degraded)`` tuples of length ``disks``.  While
    every disk is up each serves ``n_per_disk`` requests per round.
    When ``fail_disk`` dies, its RAID-1 partner absorbs the doubled
    batch; with ``shedding`` the policy first caps every disk's own
    batch at ``degraded_n_max`` (the ``failure_proof`` limit of
    :func:`degraded_mode_n_max`), so the survivor's doubled batch stays
    within the degraded-mode bound.  On an odd farm the last disk has
    no partner and its requests are simply lost (no survivor doubles).

    This is the population model :func:`repro.server.simulation.
    simulate_farm_rounds` feeds to the vectorised sweep kernel; the
    event-driven :func:`repro.server.faults.run_failover_scenario`
    reaches the same steady-state batches through per-round shedding
    decisions.
    """
    if disks < 1:
        raise ConfigurationError(f"disks must be >= 1, got {disks!r}")
    if n_per_disk < 1:
        raise ConfigurationError(
            f"n_per_disk must be >= 1, got {n_per_disk!r}")
    partner = mirror_of(fail_disk, disks)
    if shedding:
        if degraded_n_max is None:
            raise ConfigurationError(
                "shedding requires degraded_n_max (the failure_proof "
                "limit of degraded_mode_n_max)")
        if degraded_n_max < 0:
            raise ConfigurationError(
                f"degraded_n_max must be >= 0, got {degraded_n_max!r}")
        kept = min(n_per_disk, degraded_n_max)
    else:
        kept = n_per_disk
    healthy = (n_per_disk,) * disks
    degraded = tuple(
        0 if d == fail_disk else (2 * kept if d == partner else kept)
        for d in range(disks))
    return healthy, degraded


@dataclass(frozen=True)
class FarmPlan:
    """Admission plan of a (possibly heterogeneous) striped farm."""

    per_disk_n_max: tuple[int, ...]
    binding_disk: int
    n_max_total: int

    @property
    def wasted_streams(self) -> int:
        """Streams lost to heterogeneity: what the farm would admit if
        every disk matched its own limit vs the weakest-disk rule."""
        return sum(self.per_disk_n_max) - self.n_max_total


def _fan_out_specs(worker, tasks, jobs):
    """Run per-disk solver tasks serially or on the shared pool.

    Imported lazily: :mod:`repro.parallel` pulls in the simulation
    stack, which this analytic module must not require at import time.
    """
    if jobs is None or len(tasks) <= 1:
        return [worker(task) for task in tasks]
    from repro.parallel import fan_out, resolve_jobs
    return fan_out(worker, tasks, resolve_jobs(jobs))


def _per_disk_perror_limit(task) -> int:
    """Worker: the eq. (3.3.6) limit of one disk (module-level so it
    pickles into pool workers)."""
    spec, size_dist, t, m, g, epsilon, multizone = task
    model = RoundServiceTimeModel.for_disk(spec, size_dist,
                                           multizone=multizone)
    glitch = GlitchModel(model, t)
    return n_max_perror(glitch, m, g, epsilon)


def _per_disk_degraded_limits(task) -> tuple[int, int]:
    """Worker: ``(healthy, failure_proof)`` limits of one disk."""
    spec, size_dist, t, delta, multizone = task
    return degraded_mode_n_max(spec, size_dist, t, delta,
                               multizone=multizone)


def plan_farm(specs: list[DiskSpec], size_dist: Distribution, t: float,
              m: int, g: int, epsilon: float,
              multizone: bool = True,
              jobs: int | None = None) -> FarmPlan:
    """Admission plan for a striped farm of the given disks.

    Every disk gets its own §3 model; the farm admits
    ``D * min_i n_max_i`` because striping loads all disks equally.
    ``jobs`` fans the per-disk solves out over worker processes
    (``None`` keeps the serial scan); the result is identical either
    way -- each limit depends only on its own disk.
    """
    if not specs:
        raise ConfigurationError("need at least one disk")
    if not (0.0 < epsilon < 1.0):
        raise ConfigurationError(
            f"epsilon must be in (0, 1), got {epsilon!r}")
    tasks = [(spec, size_dist, t, m, g, epsilon, multizone)
             for spec in specs]
    limits = _fan_out_specs(_per_disk_perror_limit, tasks, jobs)
    binding = min(range(len(limits)), key=lambda i: limits[i])
    return FarmPlan(per_disk_n_max=tuple(limits), binding_disk=binding,
                    n_max_total=len(specs) * limits[binding])


def degraded_mode_n_max(spec: DiskSpec, size_dist: Distribution,
                        t: float, delta: float,
                        multizone: bool = True, *,
                        exact: bool = False) -> tuple[int, int]:
    """Per-disk stream limits ``(healthy, failure_proof)``.

    ``healthy`` is the usual eq. (3.1.7) limit.  ``failure_proof`` is
    the largest per-disk count whose *doubled* batch (the survivor of a
    mirrored pair absorbing its partner's requests) still meets the
    round deadline with probability ``1 - delta`` -- the admission level
    at which a single disk failure stays invisible to every stream.

    The doubled-batch predicate inherits ``b_late``'s monotonicity in
    ``n``, so the scan is the same O(log) bisection the healthy solver
    uses (``exact=True`` falls back to the exhaustive scan, correct for
    any predicate; the test suite pins bisection == brute force).
    """
    if not (0.0 < delta < 1.0):
        raise ConfigurationError(
            f"delta must be in (0, 1), got {delta!r}")
    model = RoundServiceTimeModel.for_disk(spec, size_dist,
                                           multizone=multizone)
    healthy = n_max_plate(model, t, delta, exact=exact)
    if healthy < 1:
        return healthy, 0
    failure_proof = bisect_max_n(
        lambda n: model.b_late(2 * n, t) <= delta, healthy,
        full_scan=exact)
    return healthy, failure_proof


def degraded_modes(specs: list[DiskSpec], size_dist: Distribution,
                   t: float, delta: float, multizone: bool = True,
                   jobs: int | None = None) -> list[tuple[int, int]]:
    """:func:`degraded_mode_n_max` for every disk of a farm, optionally
    fanned out over the worker pool (one task per disk)."""
    if not specs:
        raise ConfigurationError("need at least one disk")
    if not (0.0 < delta < 1.0):
        raise ConfigurationError(
            f"delta must be in (0, 1), got {delta!r}")
    tasks = [(spec, size_dist, t, delta, multizone) for spec in specs]
    return _fan_out_specs(_per_disk_degraded_limits, tasks, jobs)
