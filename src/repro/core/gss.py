"""Grouped Sweeping Scheduling (GSS) comparator.

The paper's related work cites [CKY93]'s GSS: instead of serving all
``N`` streams in one SCAN sweep per round, the streams are partitioned
into ``g`` groups; each round is divided into ``g`` sub-rounds of
length ``t/g`` and each group is served by a SCAN sweep inside its own
sub-round.  ``g = 1`` recovers the paper's scheme; ``g = N`` degenerates
to round-robin with one seek per request.

The trade-off GSS buys: a stream's fragment arrives within a *sub*-round
of its deadline, so client buffers can shrink by roughly a factor ``g``
(a fragment is consumed while the next is fetched one sub-round later,
not one full round).  The price: ``g`` sweeps per round amortise seeks
over ``N/g`` requests instead of ``N``, so fewer streams fit.  The
machinery here quantifies both sides with the paper's own Chernoff
model: a group of ``ceil(N/g)`` streams must finish within ``t/g``,
which is exactly a §3 round with rescaled parameters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.service_time import RoundServiceTimeModel
from repro.errors import ConfigurationError

__all__ = ["GssOperatingPoint", "gss_group_p_late", "n_max_gss",
           "gss_tradeoff"]


def _validate(n: int, groups: int, t: float) -> None:
    if groups < 1:
        raise ConfigurationError(f"groups must be >= 1, got {groups!r}")
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n!r}")
    if t <= 0:
        raise ConfigurationError(f"t must be positive, got {t!r}")


def gss_group_p_late(model: RoundServiceTimeModel, n: int, groups: int,
                     t: float) -> float:
    """Chernoff bound on one *group* overrunning its sub-round.

    A group holds ``ceil(n/groups)`` requests and must complete within
    ``t/groups``; this is the paper's ``b_late`` at rescaled arguments.
    (Each group's glitch exposure is per sub-round; since a stream is
    served exactly once per full round, this is also its per-round
    lateness bound.)
    """
    _validate(n, groups, t)
    group_size = math.ceil(n / groups)
    return model.b_late(group_size, t / groups)


def n_max_gss(model: RoundServiceTimeModel, t: float, groups: int,
              delta: float, n_cap: int = 512) -> int:
    """Largest total ``N`` with every group's sub-round bound within
    ``delta``."""
    if not (0.0 < delta < 1.0):
        raise ConfigurationError(f"delta must be in (0, 1), got {delta!r}")
    best = 0
    for n in range(1, n_cap + 1):
        if gss_group_p_late(model, n, groups, t) <= delta:
            best = n
        else:
            # b_late is monotone in the group size, but the ceil() can
            # hold the group size flat while n grows -- once it fails it
            # fails for larger n too (group size non-decreasing in n).
            break
    return best


@dataclass(frozen=True)
class GssOperatingPoint:
    """The admission/latency/buffer profile of one group count."""

    groups: int
    n_max: int
    group_p_late: float
    max_delivery_latency: float   # worst wait from request to deadline
    buffer_fragments: float       # client buffering in fragment units


def gss_tradeoff(model: RoundServiceTimeModel, t: float, delta: float,
                 group_counts=(1, 2, 4, 8)) -> list[GssOperatingPoint]:
    """Sweep the group count and report the classic GSS trade-off.

    Buffering is reported in fragment-equivalents: with ``g`` groups a
    client consumes a fragment over the full round while the next one
    arrives within ``1/g`` of a round, needing ``1 + 1/g`` fragments of
    buffer instead of SCAN's 2.
    """
    points = []
    for g in sorted(set(int(c) for c in group_counts)):
        n = n_max_gss(model, t, g, delta)
        p = (gss_group_p_late(model, n, g, t) if n else 1.0)
        points.append(GssOperatingPoint(
            groups=g, n_max=n, group_p_late=p,
            max_delivery_latency=t / g,
            buffer_fragments=1.0 + 1.0 / g))
    return points
