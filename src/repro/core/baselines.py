"""Prior-work baselines the paper argues against (§1, §3.1, §4).

- **Deterministic worst case** (eq. 4.1): every component at its maximum;
  see :func:`repro.core.admission.worst_case_n_max` plus the helper here
  that derives the component maxima from a disk/size configuration.
- **CLT / normal approximation** ([CZ94]-style): assume ``T_N`` is
  normal with the model's mean and variance; questionable for realistic
  ``N`` of 10..50 and *not* an upper bound.
- **Tschebyscheff bound** ([CL96]-style): ``P[T_N >= t] <=
  Var[T_N]/(t - E[T_N])^2``; a valid but coarse bound.
- **Independent seeks**: prior stochastic models let every request seek
  from a random position instead of using SCAN; the resulting seek time
  per request is a random variable whose law is derived here, and whose
  (numeric) MGF can be fed through the same Chernoff machinery to show
  what SCAN buys.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import stats

from repro.core.service_time import RoundServiceTimeModel
from repro.disk.presets import DiskSpec
from repro.distributions import Distribution, Empirical
from repro.errors import ConfigurationError

__all__ = [
    "normal_approximation_p_late",
    "tschebyscheff_p_late",
    "independent_seek_time_distribution",
    "worst_case_components",
]


def normal_approximation_p_late(service_model: RoundServiceTimeModel,
                                n: int, t: float) -> float:
    """CLT estimate ``P[T_N >= t] ~= 1 - Phi((t - E)/sqrt(Var))``.

    This is the [CZ94] approach: treat the round service time as normal.
    It is an *approximation*, not a bound -- for small ``N`` it can
    underestimate the true tail, which is exactly the criticism in §3.1.
    """
    mean = service_model.mean(n)
    std = math.sqrt(service_model.var(n))
    if std == 0.0:
        return 0.0 if t > mean else 1.0
    return float(stats.norm.sf((t - mean) / std))


def tschebyscheff_p_late(service_model: RoundServiceTimeModel,
                         n: int, t: float) -> float:
    """One-sided Tschebyscheff bound ``Var/(t - E)^2`` (clipped to 1).

    The [CL96]-style "relatively coarse bound"; valid only for
    ``t > E[T_N]`` (returns 1 otherwise).
    """
    mean = service_model.mean(n)
    var = service_model.var(n)
    if t <= mean:
        return 1.0
    return min(var / (t - mean) ** 2, 1.0)


def independent_seek_time_distribution(spec: DiskSpec, samples: int = 200_000,
                                       seed: int = 0) -> Distribution:
    """Empirical law of one *independent* (non-SCAN) seek's time.

    Successive positions are independent and uniform over cylinders, so
    the seek distance is ``|U1 - U2| * CYL`` with triangular density
    ``2(1 - d/CYL)/CYL``; pushing it through the seek curve has no closed
    form for the piecewise sqrt/linear curve, so we return a large
    empirical sample (which plugs into :class:`NumericTerm` /
    :class:`DistributionTerm` for Chernoff work).
    """
    if samples < 1000:
        raise ConfigurationError(
            f"need >= 1000 samples for a usable law, got {samples!r}")
    rng = np.random.default_rng(seed)
    a = rng.integers(0, spec.cylinders, size=samples)
    b = rng.integers(0, spec.cylinders, size=samples)
    times = np.asarray(spec.seek_curve(np.abs(a - b)))
    return Empirical(times)


def worst_case_components(spec: DiskSpec, size_dist: Distribution,
                          size_quantile: float = 0.99,
                          rate: str = "min") -> tuple[float, float, float]:
    """The ``(T_rot^max, T_seek^max, T_trans^max)`` triple of eq. (4.1).

    Parameters
    ----------
    size_quantile:
        Fragment-size percentile standing in for "maximum" (the paper
        uses 0.99, or optimistically 0.95).
    rate:
        ``"min"`` charges transfers at the innermost-zone rate
        ``C_min/ROT`` (the paper's conservative choice); ``"mean"`` uses
        ``(C_min + C_max)/(2 ROT)`` (the optimistic variant).
    """
    if not (0.0 < size_quantile < 1.0):
        raise ConfigurationError(
            f"size_quantile must be in (0, 1), got {size_quantile!r}")
    if rate == "min":
        transfer_rate = spec.zone_map.r_min
    elif rate == "mean":
        transfer_rate = 0.5 * (spec.zone_map.r_min + spec.zone_map.r_max)
    else:
        raise ConfigurationError(
            f"rate must be 'min' or 'mean', got {rate!r}")
    rot_max = spec.rot
    seek_max = spec.seek_curve.max_time(spec.cylinders)
    size_max = float(size_dist.ppf(size_quantile))
    return rot_max, seek_max, size_max / transfer_rate
