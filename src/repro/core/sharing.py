"""Request sharing (multicast) under popularity-skewed catalogs.

Two streams watching the same object at the same offset need the same
fragment in the same round; a server fetches it once and multicasts it
(:class:`repro.server.MediaServer` does).  With a Zipf-popular catalog
this shrinks the *physical* per-disk load below the admitted stream
count, which the admission controller can exploit.

The model: ``n`` streams pick objects i.i.d. with popularity ``p_v``
over ``V`` objects of ``L`` rounds each, and start phases i.i.d.
uniform over the ``L`` offsets.  Two streams collide (share every
subsequent fetch!) iff they picked the same object *and* the same
phase, so stream slots fall into ``V * L`` "cells" with probabilities
``p_v / L``; the expected physical load is the expected number of
occupied cells.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "zipf_popularity",
    "expected_distinct_fetches",
    "sharing_factor",
    "effective_stream_capacity",
]


def zipf_popularity(objects: int, exponent: float = 0.8) -> np.ndarray:
    """Zipf popularity vector ``p_v ~ v^-exponent`` over ``objects``."""
    if objects < 1:
        raise ConfigurationError(f"objects must be >= 1, got {objects!r}")
    if exponent < 0:
        raise ConfigurationError(
            f"exponent must be >= 0, got {exponent!r}")
    ranks = np.arange(1, objects + 1, dtype=float)
    weights = ranks ** (-exponent)
    return weights / np.sum(weights)


def expected_distinct_fetches(n: int, popularity, length: int) -> float:
    """Expected number of *physical* fetches per round for ``n`` streams.

    ``E[#occupied cells] = sum_cells (1 - (1 - q_cell)^n)`` with
    ``q_cell = p_v / L`` -- exact under the i.i.d. object/phase model.
    """
    if n < 0:
        raise ConfigurationError(f"n must be >= 0, got {n!r}")
    if length < 1:
        raise ConfigurationError(f"length must be >= 1, got {length!r}")
    p = np.asarray(popularity, dtype=float)
    if np.any(p < 0) or not np.isclose(float(np.sum(p)), 1.0):
        raise ConfigurationError("popularity must be a probability vector")
    q = p / length
    # Cells of one object share q; aggregate per object to stay O(V).
    return float(np.sum(length * (1.0 - (1.0 - q) ** n)))


def sharing_factor(n: int, popularity, length: int) -> float:
    """Physical-to-logical load ratio in [something, 1]: fraction of
    stream requests that need their own disk fetch."""
    if n == 0:
        return 1.0
    return expected_distinct_fetches(n, popularity, length) / n


def effective_stream_capacity(n_max_physical: int, popularity,
                              length: int, n_cap: int = 100_000) -> int:
    """Largest stream count whose *expected* physical load fits the
    per-farm physical limit ``n_max_physical``.

    A planning estimate (expectation-based): with heavy sharing a
    server admits far more streams than physical fetch slots.
    """
    if n_max_physical < 0:
        raise ConfigurationError(
            f"n_max_physical must be >= 0, got {n_max_physical!r}")

    def fits(n: int) -> bool:
        return expected_distinct_fetches(n, popularity,
                                         length) <= n_max_physical

    if not fits(1):
        return 0
    # Geometric bracket, then binary search (the load is monotone in n).
    hi = 1
    while hi < n_cap and fits(hi * 2):
        hi *= 2
    hi = min(hi * 2, n_cap)
    lo = hi // 2
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if fits(mid):
            lo = mid
        else:
            hi = mid - 1
    return lo
