"""Round service time ``T_N`` and the lateness bound ``b_late(N, t)``.

Assembles eq. (3.1.1)::

    T_N = SEEK(N) + sum_i T_rot,i + sum_i T_trans,i

into the product MGF of eq. (3.1.4)/(3.2.11) and exposes the Chernoff
bound of eq. (3.1.6)/(3.2.12).  ``SEEK(N)`` is the Oyang worst-case
constant, rotation is ``Uniform(0, ROT)`` and the transfer term is the
(possibly multi-zone moment-matched) Gamma.
"""

from __future__ import annotations

import math

from repro import cache as _cache
from repro.core.chernoff import ChernoffResult, chernoff_tail_bound
from repro.core.mgf import (
    ConstantTerm,
    DistributionTerm,
    LogMGF,
    ProductMGF,
    UniformTerm,
)
from repro.core.seek import oyang_seek_bound
from repro.core.transfer import MultiZoneTransferModel, single_zone_transfer_time
from repro.disk.presets import DiskSpec
from repro.distributions import Distribution
from repro.errors import ConfigurationError, ModelError

__all__ = ["RoundServiceTimeModel"]


class RoundServiceTimeModel:
    """Analytic model of the total service time of one round.

    Parameters
    ----------
    seek_bound:
        Callable ``n -> SEEK(n)`` giving the lumped-seek upper bound for
        ``n`` requests (usually Oyang's; injectable for ablations).
    rot:
        Revolution time (seconds); rotational latency is
        ``Uniform(0, rot)`` per request.
    transfer:
        A :class:`~repro.distributions.base.Distribution` with an MGF
        modelling the per-request transfer time.
    fingerprint:
        Stable identity of the model configuration, used to share
        cached ``ChernoffResult`` values across instances built from
        the same disk/fragment-law parameters (see :mod:`repro.cache`).
        Defaults to a per-instance token, which still memoises repeated
        queries on *this* model but never aliases other instances.
    """

    def __init__(self, seek_bound, rot: float,
                 transfer: Distribution,
                 fingerprint: str | None = None) -> None:
        if not (rot > 0.0 and math.isfinite(rot)):
            raise ConfigurationError(f"rot must be positive, got {rot!r}")
        if not transfer.has_mgf():
            raise ModelError(
                "transfer-time distribution must have an MGF; "
                "truncate heavy-tailed laws first")
        self._seek_bound = seek_bound
        self.rot = float(rot)
        self.transfer = transfer
        self._rot_term = UniformTerm(self.rot)
        self._transfer_term = DistributionTerm(transfer)
        self.fingerprint = (
            fingerprint if fingerprint is not None
            else _cache.instance_fingerprint("RoundServiceTimeModel"))

    # ------------------------------------------------------------------
    @classmethod
    def for_disk(cls, spec: DiskSpec, size_dist: Distribution,
                 multizone: bool = True) -> "RoundServiceTimeModel":
        """Build the model for a concrete disk and fragment-size law.

        ``multizone=True`` uses the §3.2 zone-skewed transfer law
        (moment-matched Gamma); ``multizone=False`` collapses the disk to
        a single-zone drive at the *harmonic-mean* rate -- the
        mean-preserving conventional-disk reading used to quantify what
        ignoring zones costs (ablation A2).
        """
        if multizone and spec.zone_map.zones > 1:
            transfer = MultiZoneTransferModel(
                spec.zone_map, size_dist).gamma_approximation()
        else:
            rate = (spec.zone_map.harmonic_mean_rate()
                    if spec.zone_map.zones > 1 else spec.zone_map.r_min)
            transfer = single_zone_transfer_time(size_dist, rate)

        def seek_bound(n: int, _spec=spec) -> float:
            return oyang_seek_bound(_spec.seek_curve, _spec.cylinders, n)

        # Content-addressed identity: two models built from equal disk
        # and fragment-law parameters share cached Chernoff results.
        fp = _cache.fingerprint(
            "round-service-time", spec.cylinders, spec.surfaces,
            spec.zone_map, spec.seek_curve, size_dist, bool(multizone))
        return cls(seek_bound=seek_bound, rot=spec.rot, transfer=transfer,
                   fingerprint=fp)

    # ------------------------------------------------------------------
    def seek(self, n: int) -> float:
        """``SEEK(n)`` -- worst-case lumped seek time for ``n`` requests."""
        return float(self._seek_bound(n))

    def log_mgf(self, n: int) -> LogMGF:
        """The MGF of ``T_n`` (eq. 3.1.4 / 3.2.11)."""
        if not isinstance(n, int) or n < 1:
            raise ConfigurationError(f"n must be an int >= 1, got {n!r}")
        return ProductMGF([
            (ConstantTerm(self.seek(n)), 1),
            (self._rot_term, n),
            (self._transfer_term, n),
        ])

    def mean(self, n: int) -> float:
        """``E[T_n]`` (with the worst-case SEEK treated as constant)."""
        return self.log_mgf(n).mean()

    def var(self, n: int) -> float:
        """``Var[T_n]``."""
        return self.log_mgf(n).var()

    # ------------------------------------------------------------------
    def p_late(self, n: int, t: float) -> ChernoffResult:
        """Chernoff bound ``b_late(n, t)`` on ``P[T_n >= t]``
        (eq. 3.1.6 / 3.2.12), with full optimisation detail.

        Memoised in the process-wide :mod:`repro.cache` bound cache
        keyed by the model fingerprint, so admission scans, lookup-table
        builds and repeated CLI invocations in one process all share
        one optimisation per distinct ``(model, n, t)``.
        """
        if not isinstance(n, int) or n < 1:
            raise ConfigurationError(f"n must be an int >= 1, got {n!r}")
        if not (t > 0.0 and math.isfinite(t)):
            raise ConfigurationError(
                f"threshold t must be positive, got {t!r}")
        key = ("b_late", self.fingerprint, n, float(t).hex())
        return _cache.get_cache().get_or_compute(
            key, lambda: chernoff_tail_bound(self.log_mgf(n), t))

    def b_late(self, n: int, t: float) -> float:
        """Convenience scalar: the bound value of :meth:`p_late`."""
        return self.p_late(n, t).bound

    def p_late_curve(self, ns, t: float) -> list[float]:
        """``b_late(n, t)`` for each ``n`` in ``ns`` (Figure 1's analytic
        series)."""
        return [self.b_late(int(n), t) for n in ns]

    def utilisation(self, n: int, t: float) -> float:
        """Expected fraction of the round spent busy, ``E[T_n] / t``."""
        if t <= 0.0:
            raise ConfigurationError(f"round length must be positive: {t!r}")
        return self.mean(n) / t

    def __repr__(self) -> str:
        return (f"RoundServiceTimeModel(rot={self.rot:.6g}, "
                f"transfer={self.transfer!r})")
