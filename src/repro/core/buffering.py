"""Client buffering and server prefetch (the paper's §6 outlook).

§6: "Buffering data on the server and/or the client would enable a more
efficient disk scheduling by preloading fragments ahead of time and
saving resources for heavy-load periods later."

The analysis here makes that quantitative with a buffer-occupancy
Markov chain.  Let ``b`` be the number of fragments buffered at a
client when a round starts; each round the client consumes one fragment
(a *visible hiccup* if ``b = 0``) and the server delivers ``D``
fragments (the due one, plus possibly prefetched ones), capped by the
buffer capacity ``B``::

    b' = min(b - 1{b >= 1} + D, B)

Two core facts this module exposes:

- **Without prefetch buffering does not help the long-run hiccup
  rate.**  With ``D <= 1`` the chain's only upward move is out of state
  0, so the stationary mass sits on {0, 1} and the hiccup rate equals
  the glitch rate ``p`` exactly, whatever ``B`` is.  (Buffers only delay
  the hiccups.)
- **With prefetch the hiccup rate drops geometrically in ``B``.**  A
  modest probability of a second delivery per round gives the chain
  upward drift and pushes the stationary mass away from 0.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.service_time import RoundServiceTimeModel
from repro.errors import ConfigurationError

__all__ = ["BufferChain", "PrefetchPlan", "n_max_hiccup",
           "optimal_prefill"]


class BufferChain:
    """Buffer-occupancy Markov chain of one client.

    Parameters
    ----------
    delivery_pmf:
        Probabilities ``P[D = 0], P[D = 1], ..., P[D = d_max]`` of the
        number of fragments delivered per round; must sum to 1.
    capacity:
        Client buffer capacity ``B`` in fragments (>= 1).
    """

    def __init__(self, delivery_pmf, capacity: int) -> None:
        pmf = np.asarray(delivery_pmf, dtype=float)
        if pmf.ndim != 1 or pmf.size < 1:
            raise ConfigurationError("delivery_pmf must be a 1-d sequence")
        if np.any(pmf < 0) or not math.isclose(float(np.sum(pmf)), 1.0,
                                               rel_tol=1e-9):
            raise ConfigurationError("delivery_pmf must sum to 1")
        if capacity < 1:
            raise ConfigurationError(
                f"capacity must be >= 1, got {capacity!r}")
        self.pmf = pmf
        self.capacity = int(capacity)
        self._transition = self._build_transition()

    def _build_transition(self) -> np.ndarray:
        size = self.capacity + 1
        matrix = np.zeros((size, size))
        for b in range(size):
            consumed = 1 if b >= 1 else 0
            for d, prob in enumerate(self.pmf):
                nxt = min(b - consumed + d, self.capacity)
                matrix[b, max(nxt, 0)] += prob
        return matrix

    # ------------------------------------------------------------------
    @property
    def transition_matrix(self) -> np.ndarray:
        """Row-stochastic transition matrix over states 0..B (copy)."""
        return self._transition.copy()

    def stationary_distribution(self) -> np.ndarray:
        """Stationary occupancy distribution (solved by linear algebra).

        For chains with transient states (e.g. no prefetch, where
        occupancies above 1 cannot be re-entered), this is the limiting
        distribution started anywhere in the recurrent class.
        """
        size = self.capacity + 1
        a = np.vstack([self._transition.T - np.eye(size),
                       np.ones((1, size))])
        b = np.concatenate([np.zeros(size), [1.0]])
        solution, *_ = np.linalg.lstsq(a, b, rcond=None)
        solution = np.clip(solution, 0.0, None)
        return solution / np.sum(solution)

    def hiccup_rate(self) -> float:
        """Long-run visible-hiccup probability per round: the stationary
        mass at occupancy 0."""
        return float(self.stationary_distribution()[0])

    def transient_hiccups(self, start: int, rounds: int) -> float:
        """Expected hiccups over the first ``rounds`` rounds when the
        buffer starts with ``start`` prefilled fragments (the startup-
        delay trade-off: prefilling costs ``start`` rounds of delay)."""
        if not (0 <= start <= self.capacity):
            raise ConfigurationError(
                f"start must be in [0, {self.capacity}], got {start!r}")
        if rounds < 1:
            raise ConfigurationError(f"rounds must be >= 1, got {rounds!r}")
        state = np.zeros(self.capacity + 1)
        state[start] = 1.0
        expected = 0.0
        for _ in range(rounds):
            expected += state[0]
            state = state @ self._transition
        return expected


@dataclass(frozen=True)
class PrefetchPlan:
    """Derive a delivery pmf from the round model and a prefetch policy.

    The server runs ``n`` streams and, in every round, additionally
    issues prefetch fetches for the ``headroom`` streams with the
    lowest client buffers, provided the enlarged batch still meets the
    round deadline.  For one stream this yields (approximately
    independently per round)::

        P[D = 0] = p_miss                    (its due fetch glitched)
        P[D = 2] = (1 - p_miss) * r * p_fit  (due + prefetched)
        P[D = 1] = the rest

    where ``r = headroom / n`` is the chance the stream is among the
    prefetched ones and ``p_fit = 1 - b_late(n + headroom, t)`` is a
    conservative bound on the enlarged round fitting the deadline.
    """

    model: RoundServiceTimeModel
    n: int
    t: float
    headroom: int

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ConfigurationError(f"n must be >= 1, got {self.n!r}")
        if self.headroom < 0:
            raise ConfigurationError(
                f"headroom must be >= 0, got {self.headroom!r}")
        if self.t <= 0:
            raise ConfigurationError(
                f"t must be positive, got {self.t!r}")

    def delivery_pmf(self) -> np.ndarray:
        """The per-round delivery pmf ``[P0, P1, P2]`` for one stream."""
        from repro.core.glitch import GlitchModel
        glitch = GlitchModel(self.model, self.t)
        p_miss = glitch.b_glitch(self.n + self.headroom)
        if self.headroom == 0:
            return np.array([p_miss, 1.0 - p_miss, 0.0])
        r = min(self.headroom / self.n, 1.0)
        p_fit = 1.0 - self.model.b_late(self.n + self.headroom, self.t)
        p2 = (1.0 - p_miss) * r * p_fit
        p1 = 1.0 - p_miss - p2
        return np.array([p_miss, p1, p2])

    def chain(self, capacity: int) -> BufferChain:
        """The buffer chain under this plan for a given capacity."""
        return BufferChain(self.delivery_pmf(), capacity)


def optimal_prefill(chain: BufferChain, horizon: int,
                    hiccup_budget: float) -> int:
    """Smallest startup prefill meeting a transient-hiccup budget.

    Prefilling ``b`` fragments costs ``b`` rounds of startup delay
    (§2.3's bounded wait, stretched) but suppresses the early hiccups a
    cold buffer would suffer.  Returns the smallest ``b`` whose expected
    hiccups over the first ``horizon`` rounds stay within
    ``hiccup_budget``; returns the full capacity if even that misses
    the budget (the steady-state rate then dominates and prefill cannot
    help further).
    """
    if hiccup_budget < 0:
        raise ConfigurationError(
            f"hiccup_budget must be >= 0, got {hiccup_budget!r}")
    for prefill in range(chain.capacity + 1):
        if chain.transient_hiccups(prefill, horizon) <= hiccup_budget:
            return prefill
    return chain.capacity


def n_max_hiccup(model: RoundServiceTimeModel, t: float, capacity: int,
                 headroom: int, m: int, h: int, epsilon: float,
                 n_cap: int = 512) -> int:
    """Admission by *visible* hiccups instead of raw glitches.

    Largest ``N`` such that a stream with a ``capacity``-deep client
    buffer under a ``headroom``-slot prefetch plan suffers ``>= h``
    visible hiccups over ``m`` rounds with probability at most
    ``epsilon``.  Uses the buffer chain's stationary hiccup rate as the
    per-round probability and the Hagerup-Rüb tail (the chain's hiccups
    are positively correlated round-to-round, so the Binomial treatment
    is an approximation, but the rate itself is built on conservative
    Chernoff inputs; validate against :func:`repro.server.prefetch.
    simulate_prefetch` when it matters).

    With ``headroom = 0`` this degenerates (correctly) to roughly the
    glitch-based criterion: buffers alone do not improve the rate.
    """
    from repro.distributions import hagerup_rub_tail
    if not (0.0 < epsilon < 1.0):
        raise ConfigurationError(
            f"epsilon must be in (0, 1), got {epsilon!r}")
    if not (0 <= h <= m):
        raise ConfigurationError(f"h must be in [0, {m}], got {h!r}")
    best = 0
    for n in range(1, n_cap + 1):
        rate = PrefetchPlan(model, n=n, t=t,
                            headroom=headroom).chain(capacity).hiccup_rate()
        if hagerup_rub_tail(m, min(rate, 1.0), h) <= epsilon:
            best = n
        else:
            break
    return best
