"""Maximum-admissible-stream solvers and §5 lookup tables.

Three admission criteria from the paper:

- ``N_max^plate`` (eq. 3.1.7): largest ``N`` with ``b_late(N,t) <= delta``.
- ``N_max^perror`` (eq. 3.3.6): largest ``N`` with
  ``p_error(N,t,M,g) <= epsilon``.
- ``N_max^wc`` (eq. 4.1): the deterministic worst-case count.

Both bound families are non-decreasing in ``N`` (more requests per round
can only push the round later), so the solvers run an exponential-search
plus bisection (:func:`repro.cache.bisect_max_n`) -- O(log n_cap)
predicate probes -- and every probed ``b_late`` lands in the process-wide
bound cache, so §5 table builds over a grid of tolerance thresholds pay
for each Chernoff optimisation once.  The in-process cache is backed by
a persistent on-disk store (:class:`repro.cache.PersistentCache`), so a
repeated table build -- in a pool worker, a later CLI invocation, or an
entirely new process -- answers from disk with zero new Chernoff solves.

The monotonicity argument holds for the *exact* bounds; discretisation
effects (e.g. the integer glitch budget discussed in
:mod:`repro.core.tuning`) or a perturbed optimiser could in principle
break it.  Pass ``exact=True`` to fall back to an exhaustive scan up to
``n_cap`` that is correct for any predicate, or leave the default
``verify_above`` probes on to detect (best-effort) a broken prefix and
auto-fall-back.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.cache import bisect_max_n, canonical_threshold
from repro.core.glitch import GlitchModel
from repro.core.service_time import RoundServiceTimeModel
from repro.errors import ConfigurationError

__all__ = [
    "n_max_plate",
    "n_max_perror",
    "worst_case_n_max",
    "AdmissionTable",
]


def n_max_plate(service_model: RoundServiceTimeModel, t: float,
                delta: float, n_cap: int = 512, *,
                exact: bool = False) -> int:
    """``N_max^plate = max{N : b_late(N, t) <= delta}`` (eq. 3.1.7).

    ``exact=True`` replaces the O(log n_cap) bisection with a full scan
    up to ``n_cap`` (exact even for a non-monotone predicate).
    """
    if not (0.0 < delta < 1.0):
        raise ConfigurationError(f"delta must be in (0, 1), got {delta!r}")
    if n_cap < 1:
        raise ConfigurationError(f"n_cap must be >= 1, got {n_cap!r}")
    return bisect_max_n(
        lambda n: service_model.b_late(n, t) <= delta, n_cap,
        full_scan=exact, verify_above=0 if exact else 2)


def n_max_perror(glitch_model: GlitchModel, m: int, g: int,
                 epsilon: float, n_cap: int = 512, *,
                 exact: bool = False) -> int:
    """``N_max^perror = max{N : p_error(N,t,M,g) <= epsilon}``
    (eq. 3.3.6).

    No ``verify_above`` probes by default: evaluating ``p_error`` at a
    large ``n`` costs ``b_late(k, t)`` for every ``k <= n``, so blind
    high-``n`` probes would defeat the point of the bisection.  Use
    ``exact=True`` when non-monotonicity is suspected.
    """
    if not (0.0 < epsilon < 1.0):
        raise ConfigurationError(
            f"epsilon must be in (0, 1), got {epsilon!r}")
    if n_cap < 1:
        raise ConfigurationError(f"n_cap must be >= 1, got {n_cap!r}")
    return bisect_max_n(
        lambda n: glitch_model.p_error(n, m, g) <= epsilon, n_cap,
        full_scan=exact)


def worst_case_n_max(t: float, rot: float, seek_max: float,
                     transfer_max: float) -> int:
    """Deterministic worst case, eq. (4.1)::

        N_max^wc = floor(t / (T_rot^max + T_seek^max + T_trans^max))

    Callers choose the percentile/rate convention for ``transfer_max``
    (the paper uses the 99-percentile fragment at the innermost-zone
    rate, or optimistically the 95-percentile at the mean rate).
    """
    for name, value in (("t", t), ("rot", rot), ("seek_max", seek_max),
                        ("transfer_max", transfer_max)):
        if not (value > 0.0 and math.isfinite(value)):
            raise ConfigurationError(
                f"{name} must be positive and finite, got {value!r}")
    return int(t // (rot + seek_max + transfer_max))


@dataclass
class AdmissionTable:
    """Precomputed ``N_max`` lookup table (§5).

    "To implement this form of admission control, we suggest using a
    lookup table with precomputed values of N_max for different tolerance
    thresholds of the glitch rate."  Keys are the tolerance parameters,
    stored under their canonical 12-significant-digit representation
    (:func:`repro.cache.canonical_threshold`) so ``0.01`` and the
    arithmetic artefact ``0.010000000000000002`` probe the same entry;
    the table needs re-evaluation only when disk or data characteristics
    change.
    """

    glitch_model: GlitchModel
    m: int
    g: int
    n_cap: int = 256
    exact: bool = False
    _plate: dict[float, int] = field(default_factory=dict, repr=False)
    _perror: dict[float, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.m < 1 or self.g < 0 or self.g > self.m:
            raise ConfigurationError(
                f"invalid (m, g) = ({self.m}, {self.g})")

    # ------------------------------------------------------------------
    def build(self, plate_thresholds=(), perror_thresholds=()) -> None:
        """Precompute ``N_max`` for every requested threshold."""
        for delta in plate_thresholds:
            self.n_max_plate(delta)
        for eps in perror_thresholds:
            self.n_max_perror(eps)

    def n_max_plate(self, delta: float) -> int:
        """``N_max^plate`` for round-lateness tolerance ``delta``
        (computed once, then served from the table)."""
        key = canonical_threshold(delta)
        if key not in self._plate:
            self._plate[key] = n_max_plate(
                self.glitch_model.service_model, self.glitch_model.t,
                key, n_cap=self.n_cap, exact=self.exact)
        return self._plate[key]

    def n_max_perror(self, epsilon: float) -> int:
        """``N_max^perror`` for stream-glitch tolerance ``epsilon``."""
        key = canonical_threshold(epsilon)
        if key not in self._perror:
            self._perror[key] = n_max_perror(
                self.glitch_model, self.m, self.g, key,
                n_cap=self.n_cap, exact=self.exact)
        return self._perror[key]

    def entries(self) -> dict[str, dict[float, int]]:
        """Snapshot of all precomputed entries (canonical keys)."""
        return {"plate": dict(self._plate), "perror": dict(self._perror)}
