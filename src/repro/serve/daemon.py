"""The admission daemon's service core (transport-agnostic).

:class:`ServeDaemon` owns the run-time state of a live §5 admission
server: the precomputed :class:`~repro.core.admission.AdmissionTable`,
the locked :class:`~repro.server.admission.AdmissionController`, the
:class:`~repro.server.faults.SheddingPolicy` applied when a disk
fails, and the per-stream ledger that decides *which* streams are shed
(newest first) and resumed (oldest first) -- the same semantics the
event-driven :class:`~repro.server.server.MediaServer` implements per
round boundary, applied here at fault-event time.

All public methods are safe to call from any number of HTTP worker
threads: stream bookkeeping runs under one daemon lock, and the
controller's own re-entrant lock makes the admission test atomic.
Every transition is counted in a
:class:`~repro.obs.metrics.MetricsRegistry` and, when a tracer is
enabled, emitted as structured trace events so ``GET /state`` can
summarise the run through :class:`~repro.obs.RunTelemetry`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.cache import get_persistent_cache
from repro.core import AdmissionTable, GlitchModel, RoundServiceTimeModel
from repro.core.farm import degraded_mode_n_max
from repro.disk import quantum_viking_2_1
from repro.distributions import Gamma
from repro.errors import AdmissionError, ConfigurationError
from repro.obs import MetricsRegistry, RunTelemetry
from repro.obs.trace import NULL_TRACER
from repro.server.admission import AdmissionController
from repro.server.faults import SheddingPolicy

__all__ = ["ServeConfig", "ServeDaemon"]


@dataclass(frozen=True)
class ServeConfig:
    """Parameters of one daemon instance.

    Defaults mirror the CLI's: the Table 1 Viking drive, the paper's
    200 KB +/- 100 KB fragment law, one-second rounds, the paper's
    tolerance pair ``epsilon = delta = 0.01`` and stream shape
    ``(m, g) = (1200, 12)``.
    """

    spec: object = field(default_factory=quantum_viking_2_1)
    size_dist: object = None
    t: float = 1.0
    epsilon: float = 0.01
    delta: float = 0.01
    m: int = 1200
    g: int = 12
    disks: int = 2
    shed_mode: str = "pause"
    #: Bulk-load the persistent bound cache before building the table.
    preload: bool = True

    def __post_init__(self) -> None:
        if self.size_dist is None:
            object.__setattr__(
                self, "size_dist",
                Gamma.from_mean_std(200_000.0, 100_000.0))
        if self.disks < 1:
            raise ConfigurationError(
                f"disks must be >= 1, got {self.disks!r}")
        if self.shed_mode not in ("pause", "drop"):
            raise ConfigurationError(
                f"shed_mode must be 'pause' or 'drop', "
                f"got {self.shed_mode!r}")


class ServeDaemon:
    """Thread-safe admission service over a precomputed lookup table."""

    def __init__(self, config: ServeConfig | None = None,
                 registry: MetricsRegistry | None = None,
                 tracer=NULL_TRACER) -> None:
        self.config = config or ServeConfig()
        self.registry = registry or MetricsRegistry()
        self.tracer = tracer
        self.started_at = time.time()

        cfg = self.config
        preloaded = 0
        if cfg.preload:
            persistent = get_persistent_cache()
            if persistent is not None:
                preloaded = persistent.preload()
        build_start = time.perf_counter()
        model = RoundServiceTimeModel.for_disk(cfg.spec, cfg.size_dist)
        glitch = GlitchModel(model, cfg.t)
        self.table = AdmissionTable(glitch, m=cfg.m, g=cfg.g)
        self.table.build(plate_thresholds=(cfg.delta,),
                         perror_thresholds=(cfg.epsilon,))
        healthy, failure_proof = degraded_mode_n_max(
            cfg.spec, cfg.size_dist, cfg.t, cfg.delta)
        self.build_seconds = time.perf_counter() - build_start

        self.controller = AdmissionController.from_table(
            self.table, epsilon=cfg.epsilon, disks=cfg.disks)
        self.policy = SheddingPolicy(failure_proof, mode=cfg.shed_mode)
        self.healthy_n_max = healthy
        self.degraded_n_max = failure_proof

        #: Admission order, newest last -- shed from the tail, resume
        #: from the head.  Guards: ``self._lock``.
        self._streams: list[int] = []
        self._paused: list[int] = []
        self._failed_disks: set[int] = set()
        self._next_stream = 0
        self._lock = threading.Lock()

        m = self.registry
        self._admitted = m.counter(
            "serve_admitted_total",
            help="Streams admitted by the daemon")
        self._rejected = m.counter(
            "serve_rejected_total",
            help="Admission requests denied (guarantee would break)")
        self._released = m.counter(
            "serve_released_total", help="Streams released by clients")
        self._shed = m.counter(
            "serve_shed_total",
            help="Streams shed by the policy during degraded phases")
        self._resumed = m.counter(
            "serve_resumed_total",
            help="Paused streams resumed after recovery")
        self._dropped = m.counter(
            "serve_dropped_total",
            help="Streams dropped permanently (shed_mode=drop)")
        self._active_gauge = m.gauge(
            "serve_active_streams", help="Streams admitted right now")
        self._paused_gauge = m.gauge(
            "serve_paused_streams",
            help="Streams paused awaiting recovery")
        self._degraded_gauge = m.gauge(
            "serve_degraded",
            help="1 while a degraded-mode limit is in force")
        self._admit_hist = m.histogram(
            "serve_admit_seconds",
            help="Latency of the admission test (lock + table lookup)")
        m.gauge("serve_table_build_seconds",
                help="Wall time of the admission-table build at "
                "startup").set(self.build_seconds)
        m.gauge("serve_n_max_per_disk",
                help="Healthy per-disk stream limit in force"
                ).set(self.controller.n_max_per_disk)
        m.gauge("serve_degraded_n_max",
                help="Failure-proof per-disk limit applied on disk "
                "failure").set(failure_proof)
        m.gauge("serve_cache_preloaded_entries",
                help="Persistent-cache rows bulk-loaded at startup"
                ).set(preloaded)
        if tracer.enabled:
            tracer.start_run(disks=cfg.disks, t=cfg.t,
                             epsilon=cfg.epsilon, delta=cfg.delta,
                             n_max=self.controller.n_max_per_disk,
                             degraded_n_max=failure_proof,
                             shed_mode=cfg.shed_mode)

    # -- client operations ---------------------------------------------
    def _count_request(self, op: str) -> None:
        self.registry.counter(
            "serve_requests_total", {"op": op},
            help="Requests answered, by operation").inc()

    def admit(self) -> dict:
        """Admit one stream; returns its ticket.

        Raises :class:`~repro.errors.AdmissionError` when one more
        stream would break the per-disk guarantee -- the HTTP layer
        maps that to a 409 rather than treating it as a failure.
        """
        self._count_request("admit")
        start = time.perf_counter()
        try:
            with self._lock:
                self.controller.admit()
                stream = self._next_stream
                self._next_stream += 1
                self._streams.append(stream)
                active = self.controller.active
        except AdmissionError:
            self._rejected.inc()
            raise
        finally:
            self._admit_hist.observe(time.perf_counter() - start)
        self._admitted.inc()
        self._active_gauge.set(active)
        if self.tracer.enabled:
            self.tracer.emit("stream_admit", stream=stream,
                             object=None, start_round=None)
        return {"stream": stream, "active": active}

    def release(self, stream: int | None = None) -> dict:
        """Release a stream (by ticket, or the oldest active one)."""
        self._count_request("release")
        with self._lock:
            if not self._streams:
                raise ConfigurationError("no active stream to release")
            if stream is None:
                stream = self._streams.pop(0)
            else:
                try:
                    self._streams.remove(int(stream))
                except ValueError:
                    raise ConfigurationError(
                        f"stream {stream!r} is not active") from None
                stream = int(stream)
            self.controller.release()
            active = self.controller.active
        self._released.inc()
        self._active_gauge.set(active)
        return {"stream": stream, "active": active}

    # -- fault handling ------------------------------------------------
    def fault(self, kind: str, disk: int = 0) -> dict:
        """Apply one fault event to the live controller.

        ``disk_fail`` degrades the admission limit and sheds the
        newest streams down to the policy target; ``disk_recover``
        restores the healthy limit and (pause mode) resumes paused
        streams oldest-first.  Other kinds are counted and traced but
        have no admission-side effect (they perturb service times,
        which the daemon does not simulate).
        """
        self.registry.counter(
            "serve_faults_total", {"kind": str(kind)},
            help="Fault events applied, by kind").inc()
        if self.tracer.enabled:
            self.tracer.emit("fault", t=time.time() - self.started_at,
                             desc=f"{kind} disk={disk}")
        if kind == "disk_fail":
            return self._apply_fail(int(disk))
        if kind == "disk_recover":
            return self._apply_recover(int(disk))
        if kind in ("slow_disk", "recalibration_storm"):
            return {"applied": False, "kind": kind}
        raise ConfigurationError(f"unknown fault kind {kind!r}")

    def _apply_fail(self, disk: int) -> dict:
        cfg = self.config
        if not (0 <= disk < cfg.disks):
            raise ConfigurationError(
                f"disk {disk} out of range [0, {cfg.disks})")
        shed: list[int] = []
        with self._lock:
            self._failed_disks.add(disk)
            self.controller.degrade(self.degraded_n_max)
            target = self.policy.target(cfg.disks)
            while self.controller.active > target and self._streams:
                victim = self._streams.pop()  # newest first
                self.controller.release()
                shed.append(victim)
            if self.policy.mode == "pause":
                # Keep the paused ledger in admission order (ticket
                # ids are monotonic), so recovery resumes oldest
                # first.
                self._paused.extend(shed)
                self._paused.sort()
            active, paused = self.controller.active, len(self._paused)
        self._shed.inc(len(shed))
        if self.policy.mode == "drop":
            self._dropped.inc(len(shed))
        self._active_gauge.set(active)
        self._paused_gauge.set(paused)
        self._degraded_gauge.set(1)
        if self.tracer.enabled:
            for victim in shed:
                self.tracer.emit("stream_shed", round=None,
                                 stream=victim,
                                 action=self.policy.mode)
        return {"applied": True, "kind": "disk_fail", "disk": disk,
                "shed": len(shed), "active": active}

    def _apply_recover(self, disk: int) -> dict:
        resumed: list[int] = []
        with self._lock:
            self._failed_disks.discard(disk)
            if self._failed_disks:
                # Another disk is still down: stay degraded.
                return {"applied": True, "kind": "disk_recover",
                        "disk": disk, "resumed": 0,
                        "active": self.controller.active}
            self.controller.restore()
            while self._paused and self.controller.would_admit():
                stream = self._paused.pop(0)  # oldest first
                self.controller.admit()
                self._streams.append(stream)
                resumed.append(stream)
            active, paused = self.controller.active, len(self._paused)
        self._resumed.inc(len(resumed))
        self._active_gauge.set(active)
        self._paused_gauge.set(paused)
        self._degraded_gauge.set(0)
        if self.tracer.enabled:
            for stream in resumed:
                self.tracer.emit("stream_resume", round=None,
                                 stream=stream)
        return {"applied": True, "kind": "disk_recover", "disk": disk,
                "resumed": len(resumed), "active": active}

    # -- views ---------------------------------------------------------
    def healthz(self) -> dict:
        """Liveness summary (cheap: one controller snapshot)."""
        snap = self.controller.snapshot()
        return {"status": "degraded" if snap["degraded"] else "ok",
                "active": snap["active"],
                "capacity": snap["capacity"],
                "uptime_seconds": time.time() - self.started_at}

    def state(self) -> dict:
        """Full JSON state: controller snapshot, policy, table entries,
        failed disks, and (when tracing) the RunTelemetry digest of the
        recorded events."""
        with self._lock:
            controller = self.controller.snapshot()
            paused = list(self._paused)
            failed = sorted(self._failed_disks)
        state = {
            "controller": controller,
            "policy": {"mode": self.policy.mode,
                       "degraded_n_max": self.policy.degraded_n_max,
                       "target": self.policy.target(self.config.disks)},
            "table": self.table.entries(),
            "paused_streams": paused,
            "failed_disks": failed,
            "uptime_seconds": time.time() - self.started_at,
            "build_seconds": self.build_seconds,
        }
        if self.tracer.enabled:
            telemetry = RunTelemetry.from_records(self.tracer.records())
            state["telemetry"] = {
                "faults": len(telemetry.faults),
                "sheds": len(telemetry.sheds),
                "rounds": len(telemetry.rounds),
            }
        return state
