"""The admission daemon's service core (transport-agnostic).

:class:`ServeDaemon` owns the run-time state of a live §5 admission
server: the precomputed :class:`~repro.core.admission.AdmissionTable`,
the striped :class:`~repro.server.admission.ShardedAdmissionController`,
the :class:`~repro.server.faults.SheddingPolicy` applied when a disk
fails, and the per-stream ledger that decides *which* streams are shed
(newest first) and resumed (oldest first) -- the same semantics the
event-driven :class:`~repro.server.server.MediaServer` implements per
round boundary, applied here at fault-event time.

The hot path is sharded: the ledger is striped into one segment per
controller shard, and an admit or a release-by-ticket touches exactly
one shard lock (the ticket counter has its own micro-lock).  Batch
admission (:meth:`ServeDaemon.admit_many`) grants k tickets under a
single shard acquisition with one ``admission.admit`` span and one
``ledger.append`` span for the whole batch.  Global events -- fault,
shed/resume, controller retarget, snapshot, ``/state`` -- run under
the daemon lock *plus* :meth:`ShardedAdmissionController.quiesced`,
which takes every shard lock in fixed order, so they always observe a
ledger that agrees with the counters (ledger mutations happen inside
the controller's on-grant/on-release callbacks, under the same shard
lock as the count).

On top of the static service, two optional planes from
:mod:`repro.control`:

- a **measurement plane** (:meth:`ServeDaemon.tick_round`): each tick
  probes one round per alive disk on the calibrated disk model -- with
  live ``slow_disk`` drift factors applied -- and folds the result
  into a :class:`~repro.control.window.TelemetryWindow`, so observed
  ``p_late``/glitch rates are compared against the analytic bounds
  stamped for the current operating point;
- a **control plane** (``adaptive=True``): the
  :class:`~repro.control.controller.Controller` reads that window and
  retunes ``(N_max, t)`` online through cached Chernoff re-solves,
  shedding (watchdog: hard-dropping) or gradually rejoining streams.

Both planes are crash-safe: with ``snapshot_path`` set the daemon
persists a versioned, fsync-atomic snapshot of the ledger + controller
state after every fault/retune, restores it on start, and applies the
unclean-restart ticket reserve so a ``kill -9`` mid-storm can never
re-issue a granted ticket (:mod:`repro.control.snapshot`).  Snapshots
are shard-count independent: the persisted stream list is the sorted
merge of the segments, and restore re-stripes it round-robin, so a
snapshot written under ``--shards 16`` restores bit-for-bit under
``--shards 1``.

All public methods are safe to call from any number of HTTP worker
threads.  ``tick_round`` is additionally serialised by a tick lock
(the probe RNG is sequential state); ticks sample *outside* the
daemon lock so the admission hot path never waits on a probe or a
re-solve.
"""

from __future__ import annotations

import bisect
import math
import threading
import time
from dataclasses import dataclass, field
from itertools import chain
from pathlib import Path

from repro.cache import fingerprint, get_persistent_cache
from repro.control import (Controller, ControllerConfig, ServiceProbe,
                           TelemetryWindow, TICKET_RESERVE,
                           read_snapshot, write_snapshot)
from repro.core import AdmissionTable, GlitchModel, RoundServiceTimeModel
from repro.core.farm import degraded_mode_n_max, mirror_of
from repro.disk import quantum_viking_2_1
from repro.distributions import Gamma
from repro.errors import AdmissionError, ConfigurationError
from repro.obs import MetricsRegistry, RunTelemetry
from repro.obs.slo import SLOTracker, slot_glitch_budget
from repro.obs.spans import start_span
from repro.obs.trace import NULL_TRACER, publish_trace_metrics
from repro.server.admission import ShardedAdmissionController
from repro.server.faults import SheddingPolicy

__all__ = ["ServeConfig", "ServeDaemon", "BATCH_SIZE_BOUNDS"]

#: Batch-size histogram buckets: powers of two up to the HTTP layer's
#: request-size ceiling (a 64 KB body holds far more than 256 ids).
BATCH_SIZE_BOUNDS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0,
                     256.0)


@dataclass(frozen=True)
class ServeConfig:
    """Parameters of one daemon instance.

    Defaults mirror the CLI's: the Table 1 Viking drive, the paper's
    200 KB +/- 100 KB fragment law, one-second rounds, the paper's
    tolerance pair ``epsilon = delta = 0.01`` and stream shape
    ``(m, g) = (1200, 12)``.
    """

    spec: object = field(default_factory=quantum_viking_2_1)
    size_dist: object = None
    t: float = 1.0
    epsilon: float = 0.01
    delta: float = 0.01
    m: int = 1200
    g: int = 12
    disks: int = 2
    shed_mode: str = "pause"
    #: Bulk-load the persistent bound cache before building the table.
    preload: bool = True
    #: Run the closed-loop controller (``repro serve --adaptive``).
    adaptive: bool = False
    #: Control-loop knobs; defaults built when ``adaptive`` and unset.
    control: ControllerConfig | None = None
    #: Crash-safe ledger snapshot location (None: snapshots disabled).
    snapshot_path: str | None = None
    #: Seed of the deterministic round probe.
    probe_seed: int = 0
    #: Burn-rate alert windows of the ε error-budget tracker, in
    #: probed rounds (``repro serve --slo-fast-window/--slo-slow-
    #: window``).  Fast catches storms (page), slow catches leaks
    #: (warn).
    slo_fast_window: int = 32
    slo_slow_window: int = 256
    #: Admission-counter stripes (``repro serve --shards``); 0 picks
    #: the auto default (about 2x the worker-thread count).  Purely a
    #: concurrency knob: excluded from the snapshot fingerprint, and
    #: snapshots restore across different shard counts.
    shards: int = 0

    def __post_init__(self) -> None:
        if self.size_dist is None:
            object.__setattr__(
                self, "size_dist",
                Gamma.from_mean_std(200_000.0, 100_000.0))
        if self.disks < 1:
            raise ConfigurationError(
                f"disks must be >= 1, got {self.disks!r}")
        if self.shed_mode not in ("pause", "drop"):
            raise ConfigurationError(
                f"shed_mode must be 'pause' or 'drop', "
                f"got {self.shed_mode!r}")
        if self.slo_fast_window < 1 or (self.slo_slow_window
                                        < self.slo_fast_window):
            raise ConfigurationError(
                f"need 1 <= slo_fast_window <= slo_slow_window, got "
                f"{self.slo_fast_window!r}/{self.slo_slow_window!r}")
        if self.shards < 0:
            raise ConfigurationError(
                f"shards must be >= 0 (0: auto), got {self.shards!r}")
        if self.control is None and self.adaptive:
            object.__setattr__(self, "control", ControllerConfig())

    def fingerprint(self) -> str:
        """Content hash of the admission-relevant parameters -- the
        compatibility key stamped into snapshots (adaptive/snapshot/
        SLO-window/shard settings excluded: they do not change what a
        ticket means)."""
        return fingerprint(
            "serve-config", self.spec, self.size_dist, float(self.t),
            float(self.epsilon), float(self.delta), int(self.m),
            int(self.g), int(self.disks), self.shed_mode)


class ServeDaemon:
    """Thread-safe admission service over a precomputed lookup table."""

    def __init__(self, config: ServeConfig | None = None,
                 registry: MetricsRegistry | None = None,
                 tracer=NULL_TRACER) -> None:
        self.config = config or ServeConfig()
        self.registry = registry or MetricsRegistry()
        self.tracer = tracer
        self.started_at = time.time()

        cfg = self.config
        preloaded = 0
        if cfg.preload:
            persistent = get_persistent_cache()
            if persistent is not None:
                preloaded = persistent.preload()
        build_start = time.perf_counter()
        self.model = RoundServiceTimeModel.for_disk(cfg.spec,
                                                    cfg.size_dist)
        glitch = GlitchModel(self.model, cfg.t)
        self.table = AdmissionTable(glitch, m=cfg.m, g=cfg.g)
        self.table.build(plate_thresholds=(cfg.delta,),
                         perror_thresholds=(cfg.epsilon,))
        healthy, failure_proof = degraded_mode_n_max(
            cfg.spec, cfg.size_dist, cfg.t, cfg.delta)
        self.build_seconds = time.perf_counter() - build_start

        self.controller = ShardedAdmissionController.from_table(
            self.table, epsilon=cfg.epsilon, disks=cfg.disks,
            shards=(cfg.shards or None))
        #: Admission-layer spans ride the daemon's tracer.
        self.controller.tracer = tracer
        self.policy = SheddingPolicy(failure_proof, mode=cfg.shed_mode)
        #: ε as an error budget: the per-slot glitch rate the stream
        #: shape (m, g, ε) sustains, burned round by round; degraded
        #: rounds are charged against the δ-based promise instead.
        self.slo = SLOTracker(
            slot_glitch_budget(cfg.m, cfg.g, cfg.epsilon),
            degraded_budget=cfg.delta,
            fast_window=cfg.slo_fast_window,
            slow_window=cfg.slo_slow_window)
        #: The limit actually enforced while healthy -- the epsilon
        #: table point, not degraded_mode_n_max's delta-based one.
        self.healthy_n_max = self.controller.n_max_per_disk
        self.degraded_n_max = failure_proof

        #: The striped ledger: one ascending segment of live tickets
        #: per controller shard, mutated only inside the controller's
        #: grant/release callbacks (so always under that shard's lock)
        #: or under a full quiesce.  Ticket ids are globally monotonic,
        #: so the sorted merge of the segments is the admission order.
        self._segments: list[list[int]] = [
            [] for _ in range(self.controller.shards)]
        #: Ticket -> owning shard.  Written under the shard lock;
        #: lock-free reads see a GIL-atomic point-in-time value and
        #: re-validate under the lock before acting.
        self._shard_of: dict[int, int] = {}
        self._paused: list[int] = []
        self._failed_disks: set[int] = set()
        #: Live slow-disk drift factors, by disk (1.0 entries elided).
        self._slow: dict[int, float] = {}
        self._next_stream = 0
        #: Micro-lock for the monotonic ticket counter: taken inside a
        #: shard lock on the grant path (lock order: daemon lock ->
        #: shard locks -> ticket lock).
        self._ticket_lock = threading.Lock()
        #: The global-event lock (fault/control/snapshot/views).  The
        #: admit/release hot paths never take it.
        self._lock = threading.Lock()

        # -- measurement + control planes ------------------------------
        control_cfg = cfg.control or ControllerConfig()
        self._window = TelemetryWindow(maxlen=control_cfg.window_rounds)
        self._probe = ServiceProbe(cfg.spec, cfg.size_dist,
                                   seed=cfg.probe_seed)
        self._ctl: Controller | None = None
        if cfg.adaptive:
            self._ctl = Controller(
                control_cfg, self.model, cfg.t, delta=cfg.delta,
                epsilon=cfg.epsilon, m=cfg.m, g=cfg.g,
                healthy_n_max=self.controller.n_max_per_disk,
                fallback_n_max=failure_proof)
        #: Per-disk limit imposed by the control loop (None: none).
        self._control_n_max: int | None = None
        self._t_mult = 1.0
        self._round_index = 0
        #: Streams rejoined per tick after a relax (0: no ramp active).
        self._rejoin_quota = 0
        self._tick_lock = threading.Lock()
        self._restored = False
        self._restored_clean = False

        m = self.registry
        self._admitted = m.counter(
            "serve_admitted_total",
            help="Streams admitted by the daemon")
        self._rejected = m.counter(
            "serve_rejected_total",
            help="Admission requests denied (guarantee would break)")
        self._released = m.counter(
            "serve_released_total", help="Streams released by clients")
        self._shed = m.counter(
            "serve_shed_total",
            help="Streams shed by the policy during degraded phases")
        self._resumed = m.counter(
            "serve_resumed_total",
            help="Paused streams resumed after recovery")
        self._dropped = m.counter(
            "serve_dropped_total",
            help="Streams dropped permanently (shed_mode=drop)")
        self._active_gauge = m.gauge(
            "serve_active_streams", help="Streams admitted right now")
        self._paused_gauge = m.gauge(
            "serve_paused_streams",
            help="Streams paused awaiting recovery")
        self._degraded_gauge = m.gauge(
            "serve_degraded",
            help="1 while a degraded-mode limit is in force")
        self._admit_hist = m.histogram(
            "serve_admit_seconds",
            help="Latency of the admission test (lock + table lookup)")
        self._batch_hist = m.histogram(
            "serve_admit_batch_size", bounds=BATCH_SIZE_BOUNDS,
            help="Tickets requested per batch admission call")
        self._rounds_total = m.counter(
            "serve_rounds_total", help="Rounds probed by tick_round")
        self._late_rounds = m.counter(
            "serve_late_disk_rounds_total",
            help="Probed sweeps that overran the round budget")
        self._retunes = m.counter(
            "serve_retunes_total",
            help="Controller decisions applied (tighten/relax/"
            "watchdog)")
        self._watchdog_trips = m.counter(
            "serve_watchdog_trips_total",
            help="Watchdog escalations to hard shedding")
        self._snapshot_writes = m.counter(
            "serve_snapshot_writes_total",
            help="Crash-safe snapshots persisted")
        self._p_late_gauge = m.gauge(
            "serve_observed_p_late",
            help="Windowed observed per-sweep overrun rate")
        self._control_gauge = m.gauge(
            "serve_control_n_max",
            help="Per-disk limit imposed by the control loop "
            "(healthy limit while quiescent)")
        self._t_mult_gauge = m.gauge(
            "serve_t_mult",
            help="Round-length multiplier in force")
        self._service_hist = m.histogram(
            "serve_round_service_seconds",
            help="Probed sweep service times")
        self._control_gauge.set(self.controller.n_max_per_disk)
        self._t_mult_gauge.set(1.0)
        m.gauge("serve_adaptive",
                help="1 when the closed-loop controller is enabled"
                ).set(1 if cfg.adaptive else 0)
        m.gauge("serve_table_build_seconds",
                help="Wall time of the admission-table build at "
                "startup").set(self.build_seconds)
        m.gauge("serve_n_max_per_disk",
                help="Healthy per-disk stream limit in force"
                ).set(self.controller.n_max_per_disk)
        m.gauge("serve_degraded_n_max",
                help="Failure-proof per-disk limit applied on disk "
                "failure").set(failure_proof)
        m.gauge("serve_cache_preloaded_entries",
                help="Persistent-cache rows bulk-loaded at startup"
                ).set(preloaded)
        m.gauge("serve_shards",
                help="Admission-counter stripes in the hot path"
                ).set(self.controller.shards)
        self._epoch_gauge = m.gauge(
            "serve_admission_epoch",
            help="Shard-limit redistribution epoch (bumps on retarget "
            "and slow-path rebalance)")
        self._rebalance_gauge = m.gauge(
            "serve_admission_rebalances",
            help="Slow-path shard-slack rebalances performed")
        self._restored_gauge = m.gauge(
            "serve_snapshot_restored",
            help="1 when this daemon restored a snapshot at startup "
            "(2: an unclean one, ticket reserve applied)")

        if cfg.snapshot_path and Path(cfg.snapshot_path).exists():
            self._restore_snapshot(cfg.snapshot_path)

        if tracer.enabled:
            tracer.start_run(disks=cfg.disks, t=cfg.t,
                             epsilon=cfg.epsilon, delta=cfg.delta,
                             m=cfg.m, g=cfg.g,
                             n_max=self.controller.n_max_per_disk,
                             degraded_n_max=failure_proof,
                             shed_mode=cfg.shed_mode,
                             shards=self.controller.shards)

    # -- client operations ---------------------------------------------
    def _count_request(self, op: str, retried: bool = False) -> None:
        """Count one answered request.  Retried attempts (client
        stamped ``attempt > 1`` in ``X-Repro-Trace``) land in their own
        counter so a flaky network cannot inflate the primary rates."""
        if retried:
            self.registry.counter(
                "serve_requests_retried_total", {"op": op},
                help="Retried client attempts answered (attempt > 1 "
                "in X-Repro-Trace), by operation").inc()
            return
        self.registry.counter(
            "serve_requests_total", {"op": op},
            help="Requests answered, by operation").inc()

    def _grant_tickets(self, out: dict):
        """Build the controller ``on_grant`` callback: issue a block
        of monotonic tickets, splice them into the granting shard's
        segment, and record one ``ledger.append`` span for the block.
        Runs under the granting shard's lock, *after* the
        ``admission.admit`` span has closed -- the two stay siblings
        under the caller's HTTP span."""
        tracer = self.tracer

        def on_grant(index: int, granted: int) -> None:
            with self._ticket_lock:
                first = self._next_stream
                self._next_stream += granted
            tickets = list(range(first, first + granted))
            # Monotonic ids: appending keeps the segment ascending.
            self._segments[index].extend(tickets)
            for ticket in tickets:
                self._shard_of[ticket] = index
            active = self.controller.active
            with start_span("ledger.append", tracer=tracer) as span:
                span.set(stream=tickets[0], active=active)
                if granted > 1:
                    span.set(count=granted,
                             last_stream=tickets[-1])
            out["streams"] = tickets
            out["active"] = active

        return on_grant

    def admit(self, *, retried: bool = False) -> dict:
        """Admit one stream; returns its ticket.

        Raises :class:`~repro.errors.AdmissionError` when one more
        stream would break the per-disk guarantee -- the HTTP layer
        maps that to a 409 rather than treating it as a failure.
        """
        self._count_request("admit", retried)
        start = time.perf_counter()
        out: dict = {}
        try:
            # No daemon-level wrapper span: the serve tree is
            # client -> HTTP handler -> admission test -> ledger
            # mutation, and the HTTP span (or the caller's span, for
            # embedded use) is the parent of both children here.
            self.controller.admit_batch(1,
                                        on_grant=self._grant_tickets(out))
        except AdmissionError:
            self._rejected.inc()
            raise
        finally:
            self._admit_hist.observe(time.perf_counter() - start)
        self._admitted.inc()
        self._active_gauge.set(out["active"])
        return {"stream": out["streams"][0], "active": out["active"]}

    def admit_many(self, count: int, *,
                   retried: bool = False) -> dict:
        """Admit up to ``count`` streams under one shard acquisition.

        Partial-grant: when fewer than ``count`` slots remain
        globally, the remainder is rejected (counted) and the grant is
        returned; only a zero-grant raises
        :class:`~repro.errors.AdmissionError`.  ``count == 0`` is a
        free probe.
        """
        count = int(count)
        self._count_request("admit_batch", retried)
        if count > 0:
            self._batch_hist.observe(count)
        start = time.perf_counter()
        out: dict = {}
        try:
            granted = self.controller.admit_batch(
                count, on_grant=self._grant_tickets(out))
        except AdmissionError:
            self._rejected.inc(count)
            raise
        finally:
            self._admit_hist.observe(time.perf_counter() - start)
        if granted == 0:
            return {"requested": count, "granted": 0, "streams": [],
                    "active": self.controller.active}
        self._admitted.inc(granted)
        if granted < count:
            self._rejected.inc(count - granted)
        self._active_gauge.set(out["active"])
        return {"requested": count, "granted": granted,
                "streams": out["streams"], "active": out["active"]}

    def _remove_ticket_locked(self, stream: int, index: int) -> int:
        """Unlink ``stream`` from shard ``index``'s segment; call
        under that shard's lock.  Returns how many were removed (0:
        the ticket was shed/moved since the caller looked it up)."""
        if self._shard_of.get(stream) != index:
            return 0
        segment = self._segments[index]
        at = bisect.bisect_left(segment, stream)
        if at < len(segment) and segment[at] == stream:
            del segment[at]
            del self._shard_of[stream]
            return 1
        return 0

    def _release_ticket(self, stream: int) -> None:
        """Release one ticket through its shard's fast path; retries
        the lookup when a concurrent global event moves the ticket
        between the lock-free lookup and the shard lock."""
        for _ in range(8):
            index = self._shard_of.get(stream)
            if index is None:
                break
            removed = self.controller.release_on(
                index,
                lambda: self._remove_ticket_locked(stream, index))
            if removed:
                return
        raise ConfigurationError(f"stream {stream!r} is not active")

    def _pop_oldest_locked(self) -> int:
        """Remove and return the oldest live ticket; call under the
        daemon lock + controller quiesce."""
        best = None
        for index, segment in enumerate(self._segments):
            if segment and (best is None
                            or segment[0] < self._segments[best][0]):
                best = index
        if best is None:
            raise ConfigurationError("no active stream to release")
        stream = self._segments[best].pop(0)
        del self._shard_of[stream]
        self.controller.release_locked(best, 1)
        return stream

    def release(self, stream: int | None = None, *,
                retried: bool = False) -> dict:
        """Release a stream (by ticket, or the oldest active one)."""
        self._count_request("release", retried)
        if stream is None:
            # Oldest-first needs a consistent global view.
            with self._lock, self.controller.quiesced():
                stream = self._pop_oldest_locked()
                active = self.controller.active
        else:
            stream = int(stream)
            self._release_ticket(stream)
            active = self.controller.active
        self._released.inc()
        self._active_gauge.set(active)
        return {"stream": stream, "active": active}

    def release_many(self, streams, *, retried: bool = False) -> dict:
        """Release a batch of tickets, grouped so each shard's lock is
        taken once.  Unknown/already-released tickets are reported in
        ``missing`` rather than failing the batch."""
        self._count_request("release_batch", retried)
        released: list[int] = []
        missing: list[int] = []
        groups: dict[int, list[int]] = {}
        for raw in streams:
            stream = int(raw)
            index = self._shard_of.get(stream)
            if index is None:
                missing.append(stream)
            else:
                groups.setdefault(index, []).append(stream)
        for index, group in groups.items():
            got: list[int] = []

            def unlink(index=index, group=group, got=got) -> int:
                for stream in group:
                    if self._remove_ticket_locked(stream, index):
                        got.append(stream)
                return len(got)

            self.controller.release_on(index, unlink)
            released.extend(got)
            for stream in group:
                if stream not in got:
                    # Moved by a concurrent global event: single-path
                    # retry resolves the new shard (or reports it).
                    try:
                        self._release_ticket(stream)
                        released.append(stream)
                    except ConfigurationError:
                        missing.append(stream)
        active = self.controller.active
        if released:
            self._released.inc(len(released))
            self._active_gauge.set(active)
        return {"released": released, "missing": missing,
                "active": active}

    # -- shared retarget helpers ---------------------------------------
    # All _*_locked helpers below run under self._lock AND
    # self.controller.quiesced(): every shard lock is held, so the
    # segments and counters form one consistent picture.
    def _ledger_streams_locked(self) -> list[int]:
        """Sorted merge of the live segments (== admission order,
        ticket ids being monotonic)."""
        return sorted(chain.from_iterable(self._segments))

    def _fault_limit_locked(self) -> int:
        return (self.degraded_n_max if self._failed_disks
                else self.healthy_n_max)

    def _apply_limit_locked(self) -> None:
        """Impose ``min(fault limit, control limit)`` on the
        admission controller."""
        limit = self._fault_limit_locked()
        if self._control_n_max is not None:
            limit = min(limit, self._control_n_max)
        if self._failed_disks or self._control_n_max is not None:
            self.controller.degrade_locked(limit)
        else:
            self.controller.restore_locked()

    def _shed_to_capacity_locked(self, mode: str) -> list[int]:
        """Shed newest-first until the active count fits the current
        capacity; pause mode parks victims in admission order."""
        shed: list[int] = []
        while (self.controller.active > self.controller.capacity
               and any(self._segments)):
            # Newest first == the global max ticket: the largest
            # segment tail (segments are ascending).
            victim_shard = max(
                (i for i, seg in enumerate(self._segments) if seg),
                key=lambda i: self._segments[i][-1])
            victim = self._segments[victim_shard].pop()
            del self._shard_of[victim]
            self.controller.release_locked(victim_shard, 1)
            shed.append(victim)
        if mode == "pause" and shed:
            # Keep the paused ledger in admission order (ticket ids
            # are monotonic), so recovery resumes oldest first.
            self._paused.extend(shed)
            self._paused.sort()
        return shed

    def _resume_locked(self, limit: int | None = None) -> list[int]:
        """Resume paused streams oldest-first while capacity allows,
        up to ``limit`` of them (None: all that fit)."""
        resumed: list[int] = []
        while self._paused and self.controller.would_admit_locked():
            if limit is not None and len(resumed) >= limit:
                break
            stream = self._paused.pop(0)  # oldest first

            def relink(index: int, stream=stream) -> None:
                # Old ticket rejoining a live segment: insort, not
                # append (newer tickets were granted meanwhile).
                bisect.insort(self._segments[index], stream)
                self._shard_of[stream] = index

            self.controller.admit_locked(relink)
            resumed.append(stream)
        return resumed

    # -- fault handling ------------------------------------------------
    def fault(self, kind: str, disk: int = 0, factor: float = 1.0,
              *, retried: bool = False) -> dict:
        """Apply one fault event to the live controller.

        ``disk_fail`` degrades the admission limit and sheds the
        newest streams down to the policy target; ``disk_recover``
        restores the healthy limit and (pause mode) resumes paused
        streams oldest-first.  ``slow_disk`` records a live service
        drift factor the round probe applies from the next tick on --
        the signal the adaptive controller reacts to.  Recalibration
        storms are counted and traced but have no admission-side
        effect.  Every applied event refreshes the crash-safe snapshot
        when one is configured.
        """
        self._count_request("fault", retried)
        self.registry.counter(
            "serve_faults_total", {"kind": str(kind)},
            help="Fault events applied, by kind").inc()
        if self.tracer.enabled:
            self.tracer.emit("fault", t=time.time() - self.started_at,
                             desc=f"{kind} disk={disk}")
        if kind == "disk_fail":
            result = self._apply_fail(int(disk))
        elif kind == "disk_recover":
            result = self._apply_recover(int(disk))
        elif kind == "slow_disk":
            result = self._apply_slow(int(disk), float(factor))
        elif kind == "recalibration_storm":
            return {"applied": False, "kind": kind}
        else:
            raise ConfigurationError(f"unknown fault kind {kind!r}")
        if self.config.snapshot_path:
            self.save_snapshot()
        return result

    def _check_disk(self, disk: int) -> None:
        if not (0 <= disk < self.config.disks):
            raise ConfigurationError(
                f"disk {disk} out of range [0, {self.config.disks})")

    def _apply_fail(self, disk: int) -> dict:
        self._check_disk(disk)
        with self._lock, self.controller.quiesced():
            self._failed_disks.add(disk)
            self._apply_limit_locked()
            shed = self._shed_to_capacity_locked(self.policy.mode)
            active, paused = self.controller.active, len(self._paused)
        self._shed.inc(len(shed))
        if self.policy.mode == "drop":
            self._dropped.inc(len(shed))
        self._active_gauge.set(active)
        self._paused_gauge.set(paused)
        self._degraded_gauge.set(1)
        if self.tracer.enabled:
            for victim in shed:
                self.tracer.emit("stream_shed", round=None,
                                 stream=victim,
                                 action=self.policy.mode)
        return {"applied": True, "kind": "disk_fail", "disk": disk,
                "shed": len(shed), "active": active}

    def _apply_recover(self, disk: int) -> dict:
        self._check_disk(disk)
        with self._lock, self.controller.quiesced():
            self._failed_disks.discard(disk)
            if self._failed_disks:
                # Another disk is still down: stay degraded.
                return {"applied": True, "kind": "disk_recover",
                        "disk": disk, "resumed": 0,
                        "active": self.controller.active}
            self._apply_limit_locked()
            resumed = self._resume_locked()
            active, paused = self.controller.active, len(self._paused)
            degraded = self.controller.degraded
        self._resumed.inc(len(resumed))
        self._active_gauge.set(active)
        self._paused_gauge.set(paused)
        self._degraded_gauge.set(1 if degraded else 0)
        if self.tracer.enabled:
            for stream in resumed:
                self.tracer.emit("stream_resume", round=None,
                                 stream=stream)
        return {"applied": True, "kind": "disk_recover", "disk": disk,
                "resumed": len(resumed), "active": active}

    def _apply_slow(self, disk: int, factor: float) -> dict:
        self._check_disk(disk)
        if not (factor > 0.0 and math.isfinite(factor)):
            raise ConfigurationError(
                f"slow_disk factor must be positive, got {factor!r}")
        with self._lock:
            if factor == 1.0:
                self._slow.pop(disk, None)
            else:
                self._slow[disk] = factor
            slow = dict(self._slow)
        self.registry.gauge(
            "serve_slow_disks",
            help="Disks with a live slow-disk drift factor"
            ).set(len(slow))
        return {"applied": True, "kind": "slow_disk", "disk": disk,
                "factor": factor}

    # -- measurement + control plane -----------------------------------
    def tick_round(self) -> dict:
        """Probe one service round and run one controller step.

        Samples each alive disk's sweep on the calibrated disk model
        (drift factors applied), folds the observation into the
        telemetry window, and -- when adaptive -- lets the controller
        plan/verify a retune which is then applied under the daemon
        lock plus a controller quiesce.  Sampling and Chernoff
        re-solves run *outside* those locks, so admissions never stall
        behind the control loop.  Driven by the HTTP layer's
        ``RoundTicker`` in wall-clock time, or called directly (tests,
        benches) for determinism.
        """
        cfg = self.config
        tracer = self.tracer
        with self._tick_lock, \
                start_span("control.cycle", tracer=tracer) as cycle:
            with self._lock:
                active = self.controller.active
                failed = frozenset(self._failed_disks)
                slow = dict(self._slow)
                t_budget = cfg.t * self._t_mult
                index = self._round_index
                self._round_index += 1
            cycle.set(round=index)
            plan = []
            if active > 0:
                per_disk = math.ceil(active / cfg.disks)
                for disk in range(cfg.disks):
                    if disk in failed:
                        continue
                    n = per_disk
                    mirror = mirror_of(disk, cfg.disks)
                    if mirror is not None and mirror in failed:
                        n = min(active, 2 * per_disk)
                    plan.append((disk, n, slow.get(disk, 1.0)))
            obs = None
            if plan:
                with start_span("control.observe", tracer=tracer,
                                round=index) as observe_span:
                    obs = self._probe.sample_round(index, t_budget,
                                                   plan, self.model)
                    observe_span.set(
                        disk_rounds=obs.disk_rounds,
                        late_disk_rounds=obs.late_disk_rounds,
                        glitched=obs.glitched)
            decision = None
            applied: dict = {}
            if obs is not None:
                with self._lock:
                    self._window.add(obs)
                # The controller step may re-solve Chernoff bounds;
                # the window is only ever mutated on this (tick)
                # thread, so reading it lock-free here is safe.
                if self._ctl is not None:
                    with start_span("control.plan", tracer=tracer,
                                    round=index) as plan_span:
                        decision = self._ctl.step(self._window)
                        plan_span.set(
                            **self._ctl.evidence(self._window))
                        if decision is not None:
                            plan_span.set(decision=decision.kind,
                                          n_max=decision.n_max,
                                          t_mult=decision.t_mult,
                                          reason=decision.reason)
                with self._lock, self.controller.quiesced():
                    if decision is not None:
                        with start_span("control.apply",
                                        tracer=tracer, round=index,
                                        decision=decision.kind
                                        ) as apply_span:
                            applied = self._apply_decision_locked(
                                decision)
                            apply_span.set(
                                shed=len(applied.get("shed", ())),
                                resumed=len(applied.get("resumed",
                                                        ())))
                    elif (self._ctl is not None and self._rejoin_quota
                          and self._paused
                          and not self._failed_disks):
                        rejoined = self._resume_locked(
                            limit=self._rejoin_quota)
                        if rejoined:
                            applied = {"resumed": rejoined}
                        if not self._paused:
                            self._rejoin_quota = 0
                    active = self.controller.active
                    paused = len(self._paused)
                    p_late = self._window.observed_p_late
            if obs is not None:
                self._rounds_total.inc()
                self._late_rounds.inc(obs.late_disk_rounds)
                self._p_late_gauge.set(p_late)
                if obs.disk_rounds:
                    self._service_hist.observe(
                        obs.observed_service / obs.disk_rounds)
                if applied.get("resumed"):
                    self._resumed.inc(len(applied["resumed"]))
                if applied.get("shed"):
                    self._shed.inc(len(applied["shed"]))
                    if applied.get("mode") == "drop":
                        self._dropped.inc(len(applied["shed"]))
                self._active_gauge.set(active)
                self._paused_gauge.set(paused)
                # Burn the ε error budget with this round's evidence;
                # degraded rounds run under the δ-based promise.
                degraded_round = bool(failed)
                slo_state = self.slo.observe(
                    obs.glitched, obs.requests,
                    degraded=degraded_round, round_index=index)
                self.slo.publish(self.registry)
                cycle.set(slo=slo_state)
                if tracer.enabled:
                    tracer.emit(
                        "round_observe", round=index,
                        disk_rounds=obs.disk_rounds,
                        late_disk_rounds=obs.late_disk_rounds,
                        requests=obs.requests,
                        glitched=obs.glitched,
                        degraded=degraded_round,
                        bound=obs.bound)
        if tracer.enabled:
            # Drain deferred sink writes here, once per round, so the
            # admission hot path never serialises JSON.
            tracer.flush()
        if decision is not None:
            self._retunes.inc()
            if decision.kind == "watchdog":
                self._watchdog_trips.inc()
            self._control_gauge.set(decision.n_max)
            self._t_mult_gauge.set(decision.t_mult)
            self._degraded_gauge.set(
                1 if self.controller.degraded else 0)
            if self.tracer.enabled:
                self.tracer.emit(
                    "fault", t=time.time() - self.started_at,
                    desc=f"retune {decision.kind}: "
                         f"n_max={decision.n_max} "
                         f"t_mult={decision.t_mult:g}")
            if cfg.snapshot_path:
                self.save_snapshot()
        result = {"round": index, "probed": obs is not None}
        if obs is not None:
            result.update(disk_rounds=obs.disk_rounds,
                          late_disk_rounds=obs.late_disk_rounds,
                          glitched=obs.glitched)
        if decision is not None:
            result["decision"] = decision.to_dict()
            result["shed"] = len(applied.get("shed", ()))
        if applied.get("resumed"):
            result["resumed"] = len(applied["resumed"])
        return result

    def _apply_decision_locked(self, decision) -> dict:
        """Retarget the ledger to a verified controller decision;
        call under the daemon lock + controller quiesce."""
        self._t_mult = float(decision.t_mult)
        relaxed_out = (decision.n_max >= self.healthy_n_max
                       and decision.t_mult == 1.0)
        self._control_n_max = None if relaxed_out else int(
            decision.n_max)
        self._apply_limit_locked()
        mode = ("drop" if decision.kind == "watchdog"
                else self.policy.mode)
        shed = self._shed_to_capacity_locked(mode)
        resumed: list[int] = []
        if decision.kind == "relax":
            headroom = self.controller.capacity - self.controller.active
            if self._paused and headroom > 0:
                self._rejoin_quota = max(1, math.ceil(
                    headroom / self._ctl.config.rejoin_rounds))
                resumed = self._resume_locked(limit=self._rejoin_quota)
            else:
                self._rejoin_quota = 0
        else:
            self._rejoin_quota = 0
        self._ctl.committed(decision, epoch=self.controller.epoch)
        self._window.clear()
        if self.tracer.enabled:
            for victim in shed:
                self.tracer.emit("stream_shed", round=None,
                                 stream=victim, action=mode)
            for stream in resumed:
                self.tracer.emit("stream_resume", round=None,
                                 stream=stream)
        return {"shed": shed, "resumed": resumed, "mode": mode}

    # -- crash-safe snapshots ------------------------------------------
    def snapshot_payload(self, clean: bool = False) -> dict:
        """Consistent snapshot document (see
        :mod:`repro.control.snapshot` for the format contract).

        Shard-count independent by construction: streams are the
        sorted merge of the segments and the counters are global sums,
        so the same logical state snapshots to the same document under
        any ``--shards`` setting.
        """
        with self._lock, self.controller.quiesced():
            snap = self.controller.snapshot_locked()
            with self._ticket_lock:
                next_stream = self._next_stream
            payload = {
                "clean": bool(clean),
                "config_fingerprint": self.config.fingerprint(),
                "written_at": time.time(),
                "ledger": {
                    "next_stream": next_stream,
                    "streams": self._ledger_streams_locked(),
                    "paused": list(self._paused),
                    "failed_disks": sorted(self._failed_disks),
                    "slow": {str(d): f for d, f
                             in sorted(self._slow.items())},
                    "requests": snap["requests"],
                    "rejections": snap["rejections"],
                    "counters": {
                        "admitted": self._admitted.value,
                        "rejected": self._rejected.value,
                        "released": self._released.value,
                        "shed": self._shed.value,
                        "resumed": self._resumed.value,
                        "dropped": self._dropped.value,
                    },
                },
                "control": {
                    "round_index": self._round_index,
                    "t_mult": self._t_mult,
                    "control_n_max": self._control_n_max,
                    "rejoin_quota": self._rejoin_quota,
                    "window": self._window.to_dict(),
                    "controller": (self._ctl.to_dict()
                                   if self._ctl else None),
                },
                "slo": self.slo.to_dict(),
            }
        return payload

    def save_snapshot(self, clean: bool = False) -> Path | None:
        """Persist the crash-safe snapshot (no-op when unconfigured)."""
        path = self.config.snapshot_path
        if not path:
            return None
        written = write_snapshot(path, self.snapshot_payload(clean))
        self._snapshot_writes.inc()
        return written

    def _restore_snapshot(self, path: str) -> None:
        """Reinstate ledger + controller state from ``path``.

        A clean snapshot resumes ticket numbering exactly; an unclean
        one (the ``kill -9`` case) advances the ticket counter by the
        reserve so no granted ticket can ever be re-issued.  The
        persisted stream list is re-striped round-robin over however
        many shards *this* daemon runs -- restore works across shard
        counts.
        """
        document = read_snapshot(path, self.config.fingerprint())
        ledger = document.get("ledger") or {}
        control = document.get("control") or {}
        clean = bool(document.get("clean", False))
        with self._lock, self.controller.quiesced():
            streams = sorted(int(s) for s in ledger.get("streams", ()))
            count = self.controller.shards
            self._segments = [streams[i::count] for i in range(count)]
            self._shard_of = {
                stream: index
                for index, segment in enumerate(self._segments)
                for stream in segment}
            self._paused = sorted(
                int(s) for s in ledger.get("paused", ()))
            self._failed_disks = {
                int(d) for d in ledger.get("failed_disks", ())}
            self._slow = {int(d): float(f) for d, f
                          in (ledger.get("slow") or {}).items()}
            reserve = 0 if clean else TICKET_RESERVE
            with self._ticket_lock:
                self._next_stream = int(
                    ledger.get("next_stream", 0)) + reserve
            self.controller.restore_state_locked(
                shard_actives=[len(s) for s in self._segments],
                requests=int(ledger.get("requests", 0)),
                rejections=int(ledger.get("rejections", 0)))
            self._round_index = int(control.get("round_index", 0))
            self._t_mult = float(control.get("t_mult", 1.0))
            raw_limit = control.get("control_n_max")
            self._control_n_max = (int(raw_limit)
                                   if raw_limit is not None else None)
            self._rejoin_quota = int(control.get("rejoin_quota", 0))
            window = control.get("window")
            if window:
                self._window = TelemetryWindow.from_dict(window)
            if self._ctl is not None and control.get("controller"):
                self._ctl.restore_dict(control["controller"])
            # Pre-SLO snapshots simply lack the key; the fresh
            # tracker's budget was rebuilt from the same (m, g, ε).
            if document.get("slo"):
                self.slo = SLOTracker.from_dict(document["slo"])
            self._apply_limit_locked()
            active = self.controller.active
            paused = len(self._paused)
            degraded = self.controller.degraded
        counters = ledger.get("counters") or {}
        for metric, key in ((self._admitted, "admitted"),
                            (self._rejected, "rejected"),
                            (self._released, "released"),
                            (self._shed, "shed"),
                            (self._resumed, "resumed"),
                            (self._dropped, "dropped")):
            value = float(counters.get(key, 0) or 0)
            if value > 0:
                metric.inc(value)
        self._active_gauge.set(active)
        self._paused_gauge.set(paused)
        self._degraded_gauge.set(1 if degraded else 0)
        if self._ctl is not None:
            self._control_gauge.set(self._ctl.n_max)
        self._t_mult_gauge.set(self._t_mult)
        if self._slow:
            self.registry.gauge(
                "serve_slow_disks",
                help="Disks with a live slow-disk drift factor"
                ).set(len(self._slow))
        self._restored = True
        self._restored_clean = clean
        self._restored_gauge.set(1 if clean else 2)

    # -- views ---------------------------------------------------------
    def slo_state(self) -> dict:
        """The ``GET /slo`` view: burn rates, alert state, budget."""
        return self.slo.summary()

    def refresh_export_metrics(self) -> None:
        """Refresh scrape-time derived metrics -- trace emit/drop
        counters, the SLO burn gauges, and the per-shard admission
        gauges -- so ``/metrics`` reflects this instant even between
        ticks.  Idempotent, and lock-free on the hot-path state."""
        publish_trace_metrics(self.registry, self.tracer)
        self.slo.publish(self.registry)
        total = 0
        for index, (active, limit) in enumerate(
                self.controller.shard_counts()):
            label = {"shard": str(index)}
            self.registry.gauge(
                "serve_shard_active", label,
                help="Streams admitted on this stripe").set(active)
            self.registry.gauge(
                "serve_shard_limit", label,
                help="Capacity slice assigned to this stripe"
                ).set(limit)
            total += active
        self._active_gauge.set(total)
        self._epoch_gauge.set(self.controller.epoch)
        self._rebalance_gauge.set(self.controller.rebalances)

    def healthz(self) -> dict:
        """Liveness summary (lock-free: stripe-sum reads only)."""
        controller = self.controller
        return {"status": ("degraded" if controller.degraded
                           else "ok"),
                "active": controller.active,
                "capacity": controller.capacity,
                "uptime_seconds": time.time() - self.started_at}

    def control_state(self) -> dict:
        """The ``/control`` view: window aggregates, controller state
        machine, live drift factors, and the operating point."""
        cfg = self.config
        with self._lock:
            out = {
                "adaptive": cfg.adaptive,
                "round_index": self._round_index,
                "t_mult": self._t_mult,
                "round_budget": cfg.t * self._t_mult,
                "control_n_max": self._control_n_max,
                "effective_n_max": self.controller.n_max_per_disk,
                "healthy_n_max": self.healthy_n_max,
                "fallback_n_max": self.degraded_n_max,
                "rejoin_quota": self._rejoin_quota,
                "slow_disks": {str(d): f for d, f
                               in sorted(self._slow.items())},
                "window": self._window.summary(cfg.m, cfg.g),
                "controller": (self._ctl.summary()
                               if self._ctl else None),
            }
        out["shards"] = {
            "count": self.controller.shards,
            "epoch": self.controller.epoch,
            "debt": self.controller.debt,
            "rebalances": self.controller.rebalances,
        }
        out["snapshot"] = {
            "path": cfg.snapshot_path,
            "restored": self._restored,
            "restored_clean": self._restored_clean,
            "writes": self._snapshot_writes.value,
        }
        out["slo"] = self.slo.summary()
        return out

    def state(self) -> dict:
        """Full JSON state: controller snapshot, policy, table entries,
        failed disks, control plane, and (when tracing) the
        RunTelemetry digest of the recorded events."""
        with self._lock, self.controller.quiesced():
            controller = self.controller.snapshot_locked()
            streams = self._ledger_streams_locked()
            paused = list(self._paused)
            failed = sorted(self._failed_disks)
            with self._ticket_lock:
                next_stream = self._next_stream
            slow = {str(d): f for d, f in sorted(self._slow.items())}
        state = {
            "controller": controller,
            "policy": {"mode": self.policy.mode,
                       "degraded_n_max": self.policy.degraded_n_max,
                       "target": self.policy.target(self.config.disks)},
            "table": self.table.entries(),
            "streams": streams,
            "next_stream": next_stream,
            "paused_streams": paused,
            "failed_disks": failed,
            "slow_disks": slow,
            "adaptive": self.config.adaptive,
            "t_mult": self._t_mult,
            "restored": self._restored,
            "uptime_seconds": time.time() - self.started_at,
            "build_seconds": self.build_seconds,
        }
        if self.tracer.enabled:
            telemetry = RunTelemetry.from_records(self.tracer.records())
            state["telemetry"] = {
                "faults": len(telemetry.faults),
                "sheds": len(telemetry.sheds),
                "rounds": len(telemetry.rounds),
            }
        return state
