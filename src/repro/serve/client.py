"""``urllib`` client for a running ``repro serve`` daemon.

Used by the ``repro admit`` CLI, the serve smoke test and bench A23 --
no third-party HTTP library, no connection pooling cleverness: one
request per call against the daemon's thread-per-request server.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

from repro.errors import ConfigurationError

__all__ = ["ServeClient"]


class ServeClient:
    """Thin JSON client bound to one daemon base URL."""

    def __init__(self, url: str, timeout: float = 10.0) -> None:
        if not url.startswith(("http://", "https://")):
            raise ConfigurationError(
                f"daemon url must start with http(s)://, got {url!r}")
        self.url = url.rstrip("/")
        self.timeout = timeout

    # -- plumbing ------------------------------------------------------
    def _request(self, method: str, path: str,
                 body: dict | None = None) -> tuple[int, bytes]:
        data = (json.dumps(body).encode("utf-8")
                if body is not None else None)
        request = urllib.request.Request(
            self.url + path, data=data, method=method,
            headers={"Content-Type": "application/json"}
            if data else {})
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as resp:
                return resp.status, resp.read()
        except urllib.error.HTTPError as exc:
            # 4xx carries a JSON error payload we want to surface, not
            # an exception -- a 409 rejection is a *result* here.
            with exc:
                return exc.code, exc.read()

    def _json(self, method: str, path: str,
              body: dict | None = None) -> tuple[int, dict]:
        status, payload = self._request(method, path, body)
        try:
            return status, json.loads(payload.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            raise ConfigurationError(
                f"daemon returned non-JSON for {path}: "
                f"{payload[:120]!r}") from None

    # -- operations ----------------------------------------------------
    def admit(self) -> dict:
        """One admission attempt.  Returns ``{"admitted": bool, ...}``
        -- a 409 rejection is reported, not raised."""
        status, data = self._json("POST", "/admit")
        data["admitted"] = status == 200
        return data

    def admit_until_reject(self, cap: int = 100_000) -> int:
        """Admit repeatedly until the daemon says no; returns how many
        were admitted.  ``cap`` guards against a daemon that never
        rejects."""
        admitted = 0
        for _ in range(cap):
            if not self.admit()["admitted"]:
                return admitted
            admitted += 1
        raise ConfigurationError(
            f"daemon still admitting after {cap} streams")

    def release(self, stream: int | None = None) -> dict:
        """Release ``stream`` (or the oldest active one)."""
        body = {"stream": stream} if stream is not None else {}
        status, data = self._json("POST", "/release", body)
        if status != 200:
            raise ConfigurationError(
                f"release failed ({status}): {data.get('error')}")
        return data

    def fault(self, kind: str, disk: int = 0) -> dict:
        """Inject one fault event."""
        status, data = self._json("POST", "/fault",
                                  {"kind": kind, "disk": disk})
        if status != 200:
            raise ConfigurationError(
                f"fault failed ({status}): {data.get('error')}")
        return data

    def metrics(self) -> str:
        """Prometheus text exposition from ``/metrics``."""
        status, payload = self._request("GET", "/metrics")
        if status != 200:
            raise ConfigurationError(f"/metrics returned {status}")
        return payload.decode("utf-8")

    def healthz(self) -> dict:
        """Liveness JSON from ``/healthz``."""
        return self._json("GET", "/healthz")[1]

    def state(self) -> dict:
        """Full daemon state JSON from ``/state``."""
        return self._json("GET", "/state")[1]
