"""Keep-alive JSON client for a running ``repro serve`` daemon.

Used by the ``repro admit`` CLI, the serve smoke test, the chaos leg
and benches A23/A27 -- no third-party HTTP library.  Each thread keeps
one persistent ``http.client`` connection to the daemon (HTTP/1.1
keep-alive), so a stream of admits pays the TCP handshake once and --
because the daemon's server is thread-per-connection -- lands on one
admission shard with no lock contention.  ``close()`` (or using the
client as a context manager) releases the sockets; an unclosed client
closes them on garbage collection.

The client is **retrying**: transport failures (connection refused
while the daemon restarts from a snapshot, a connection torn mid
flight by ``kill -9``, a stale keep-alive socket the daemon's restart
invalidated) are retried with exponential backoff plus deterministic
decorrelation jitter, up to ``retries`` attempts per call, each under
its own ``timeout``.  Retry safety is per operation and per failure
stage:

- *stale keep-alive* failures -- the send failed on a **reused**
  connection -- are retried for every operation: the daemon closed
  the idle socket between our requests, so this request never
  reached it;
- *connect-stage* failures (``ConnectionRefusedError`` and friends on
  a fresh connection) are likewise retried for every operation;
- *mid-flight* failures (the send failed partway on a fresh
  connection, or the connection died while awaiting/reading the
  response; the daemon may or may not have processed the request) are
  retried only for idempotent operations: reads, ``release`` of an
  explicit stream (releasing an already-released ticket is a 400 the
  caller sees as "done"), ``release_many`` (doubled tickets land in
  ``missing``), and ``fault``/``snapshot`` whose doubled application
  is a no-op.  A mid-flight ``admit`` (single or batch) is *not*
  retried -- a blind re-send could admit streams twice for one
  request -- and surfaces as a
  :class:`~repro.errors.ConfigurationError` naming the ambiguity.

Exhausted retries raise :class:`~repro.errors.ConfigurationError`
(never a raw ``ConnectionError``), carrying the last transport error.

Every wire request carries the ``X-Repro-Trace`` header
(``trace_id/span_id/attempt``): with a tracer enabled the ids come
from real ``client.<op>``/``client.request`` spans so the daemon's
spans join the client's tree; without one, fresh ids are minted so the
daemon still sees a client-originated trace-id and -- crucially -- the
attempt number, which keeps retried requests out of its primary
request counters.

For tests, ``connection_factory`` injects the transport: any callable
returning an object with ``request``/``getresponse``/``close`` (the
``http.client.HTTPConnection`` surface) -- the retry contract tests
drive the client against flaky fakes through this seam.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
import urllib.parse

from repro.errors import ConfigurationError
from repro.obs.spans import (
    TRACE_HEADER,
    SpanContext,
    format_trace_header,
    new_id,
    start_span,
)
from repro.obs.trace import get_tracer

__all__ = ["ServeClient"]

#: Transport-level exceptions that mean "the daemon was unreachable or
#: the connection died" -- candidates for retry.  ``RemoteDisconnected``
#: is a ``ConnectionResetError``; ``HTTPException`` covers the
#: connection-state errors (``CannotSendRequest`` after a half-torn
#: exchange); ``OSError`` covers refused/reset/timeout at the socket.
_TRANSPORT_ERRORS = (http.client.HTTPException, ConnectionError,
                     TimeoutError, OSError)


def _is_connect_stage(exc: BaseException) -> bool:
    """Whether the failure happened before the request was sent (safe
    to retry for any operation)."""
    reason = getattr(exc, "reason", exc)
    return isinstance(reason, (ConnectionRefusedError,
                               ConnectionAbortedError))


class _TransportFailure(Exception):
    """Internal: a transport error tagged with where it happened."""

    def __init__(self, cause: BaseException, *, stage: str,
                 reused: bool) -> None:
        super().__init__(str(cause))
        self.cause = cause
        self.stage = stage  # "send" | "response"
        self.reused = reused

    def retriable(self, idempotent: bool) -> bool:
        """Apply the module-doc taxonomy."""
        if idempotent:
            return True
        if self.stage == "send" and self.reused:
            return True  # stale keep-alive: never reached the daemon
        if self.stage == "send" and _is_connect_stage(self.cause):
            return True  # refused before anything was sent
        return False  # mid-flight: ambiguous, caller must decide


class ServeClient:
    """Retrying keep-alive JSON client bound to one daemon base URL."""

    def __init__(self, url: str, timeout: float = 10.0, *,
                 retries: int = 5, backoff: float = 0.05,
                 backoff_max: float = 2.0,
                 sleep=time.sleep, tracer=None,
                 connection_factory=None) -> None:
        if not url.startswith(("http://", "https://")):
            raise ConfigurationError(
                f"daemon url must start with http(s)://, got {url!r}")
        if retries < 1:
            raise ConfigurationError(
                f"retries must be >= 1, got {retries!r}")
        if backoff <= 0 or backoff_max < backoff:
            raise ConfigurationError(
                f"need 0 < backoff <= backoff_max, got "
                f"{backoff!r}/{backoff_max!r}")
        self.url = url.rstrip("/")
        self.timeout = timeout
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.backoff_max = float(backoff_max)
        self._sleep = sleep
        #: None defers to the process-wide tracer at call time.
        self._tracer = tracer
        #: Transport retries performed over this client's lifetime.
        self.retried = 0

        split = urllib.parse.urlsplit(self.url)
        self._path_prefix = split.path.rstrip("/")
        if connection_factory is None:
            conn_cls = (http.client.HTTPSConnection
                        if split.scheme == "https"
                        else http.client.HTTPConnection)
            host, port = split.hostname, split.port

            def connection_factory():
                return conn_cls(host, port, timeout=self.timeout)

        self._factory = connection_factory
        #: Per-thread persistent connection slot.
        self._local = threading.local()
        #: Every connection ever handed out and not yet discarded, so
        #: close() can release sockets owned by other threads.
        self._conns: list = []
        self._conns_lock = threading.Lock()
        #: Bumped by close(): stashed per-thread connections from an
        #: older generation are stale and must not be reused.
        self._generation = 0

    # -- connection management -----------------------------------------
    def _acquire(self):
        """Take this thread's persistent connection (reused=True) or
        open a fresh one.  The slot is emptied while a request is in
        flight so an exception can never stash a poisoned socket."""
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            self._local.conn = None
            if getattr(self._local, "generation", -1) == self._generation:
                return conn, True
            # close() ran since this was stashed: already closed there.
        conn = self._factory()
        with self._conns_lock:
            self._conns.append(conn)
        return conn, False

    def _stash(self, conn) -> None:
        self._local.conn = conn
        self._local.generation = self._generation

    def _discard(self, conn) -> None:
        try:
            conn.close()
        except Exception:
            pass
        with self._conns_lock:
            try:
                self._conns.remove(conn)
            except ValueError:
                pass

    def close(self) -> None:
        """Close every connection this client opened (all threads).
        The client stays usable -- the next request reconnects."""
        with self._conns_lock:
            conns, self._conns = list(self._conns), []
            self._generation += 1
        for conn in conns:
            try:
                conn.close()
            except Exception:
                pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass

    # -- plumbing ------------------------------------------------------
    def _delay(self, attempt: int) -> float:
        """Exponential backoff with deterministic decorrelation jitter
        (golden-ratio phase per attempt: spreads concurrent clients
        without consuming global RNG state)."""
        base = min(self.backoff * (2.0 ** attempt), self.backoff_max)
        jitter = ((attempt + 1) * 0.618033988749895) % 1.0
        return base * (0.5 + 0.5 * jitter)

    def _roundtrip(self, method: str, path: str, data, headers
                   ) -> tuple[int, bytes]:
        """One wire exchange on the thread's persistent connection.
        Tags transport failures with the stage and whether the socket
        was a reused keep-alive one (the retry taxonomy's inputs)."""
        conn, reused = self._acquire()
        stage = "send"
        try:
            conn.request(method, self._path_prefix + path, body=data,
                         headers=headers)
            stage = "response"
            response = conn.getresponse()
            payload = response.read()
        except _TRANSPORT_ERRORS as exc:
            self._discard(conn)
            raise _TransportFailure(exc, stage=stage,
                                    reused=reused) from exc
        self._stash(conn)
        return response.status, payload

    def _request(self, method: str, path: str,
                 body: dict | None = None, *,
                 idempotent: bool = True) -> tuple[int, bytes]:
        data = (json.dumps(body).encode("utf-8")
                if body is not None else None)
        tracer = (self._tracer if self._tracer is not None
                  else get_tracer())
        op = path.strip("/").replace("/", ".") or "root"
        op_span = start_span(f"client.{op}", tracer=tracer,
                             method=method, path=path)
        with op_span:
            trace_id = (op_span.context.trace_id
                        if op_span.context is not None else new_id())
            last: BaseException | None = None
            for attempt in range(self.retries):
                number = attempt + 1
                attempt_span = start_span(
                    "client.request", tracer=tracer,
                    parent=(op_span if op_span.context is not None
                            else None),
                    trace_id=trace_id, attempt=number)
                with attempt_span:
                    # The wire context is the attempt span when traced;
                    # otherwise mint ids so the daemon still receives a
                    # client-originated trace-id + attempt number.
                    context = attempt_span.context or SpanContext(
                        trace_id, new_id())
                    headers = {TRACE_HEADER:
                               format_trace_header(context, number)}
                    if data:
                        headers["Content-Type"] = "application/json"
                    try:
                        status, payload = self._roundtrip(
                            method, path, data, headers)
                        # Unlike urllib, http.client treats 4xx/5xx as
                        # data, which is what we want -- a 409
                        # rejection is a *result*, not an exception.
                        attempt_span.set(status=status)
                        op_span.set(status=status, attempts=number)
                        return status, payload
                    except _TransportFailure as failure:
                        exc = failure.cause
                        last = exc
                        attempt_span.set(error=type(exc).__name__,
                                         stage=failure.stage)
                        if not failure.retriable(idempotent):
                            op_span.set(error="mid-flight",
                                        attempts=number)
                            raise ConfigurationError(
                                f"{method} {path} failed mid-flight "
                                f"({exc}); not retrying a "
                                f"non-idempotent operation -- the "
                                f"daemon may have already applied it"
                                ) from exc
                if attempt + 1 < self.retries:
                    self.retried += 1
                    self._sleep(self._delay(attempt))
            op_span.set(error="unreachable", attempts=self.retries)
            raise ConfigurationError(
                f"{method} {path} unreachable after {self.retries} "
                f"attempt(s): {last}") from last

    def _json(self, method: str, path: str,
              body: dict | None = None, *,
              idempotent: bool = True) -> tuple[int, dict]:
        status, payload = self._request(method, path, body,
                                        idempotent=idempotent)
        try:
            return status, json.loads(payload.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            raise ConfigurationError(
                f"daemon returned non-JSON for {path}: "
                f"{payload[:120]!r}") from None

    # -- operations ----------------------------------------------------
    def admit(self) -> dict:
        """One admission attempt.  Returns ``{"admitted": bool, ...}``
        -- a 409 rejection is reported, not raised.  Connect-stage and
        stale-keep-alive failures retry; mid-flight ones raise (see
        module docs)."""
        status, data = self._json("POST", "/admit", idempotent=False)
        data["admitted"] = status == 200
        return data

    def admit_many(self, count: int, *, batch: int = 16) -> dict:
        """Admit up to ``count`` streams through ``/admit/batch``,
        split into chunks of ``batch`` tickets per request.

        Stops at the first rejection or partial grant (capacity is
        exhausted; later chunks could only reject).  Returns
        ``{"requested", "granted", "streams", "admitted"}`` where
        ``admitted`` is True iff anything was granted.  Mid-flight
        transport failures raise (non-idempotent), same as
        :meth:`admit`.
        """
        count = int(count)
        if count < 0:
            raise ConfigurationError(
                f"admit_many needs count >= 0, got {count!r}")
        if batch < 1:
            raise ConfigurationError(
                f"batch must be >= 1, got {batch!r}")
        granted = 0
        streams: list[int] = []
        active = None
        remaining = count
        while remaining > 0:
            chunk = min(int(batch), remaining)
            status, data = self._json("POST", "/admit/batch",
                                      {"count": chunk},
                                      idempotent=False)
            if status == 409:
                break
            if status != 200:
                raise ConfigurationError(
                    f"admit batch failed ({status}): "
                    f"{data.get('error')}")
            got = int(data.get("granted", 0))
            granted += got
            streams.extend(int(s) for s in data.get("streams", ()))
            active = data.get("active", active)
            remaining -= chunk
            if got < chunk:
                break  # partial grant: the daemon is at capacity
        result = {"requested": count, "granted": granted,
                  "streams": streams, "admitted": granted > 0}
        if active is not None:
            result["active"] = active
        return result

    def admit_until_reject(self, cap: int = 100_000) -> int:
        """Admit repeatedly until the daemon says no; returns how many
        were admitted.  ``cap`` guards against a daemon that never
        rejects."""
        admitted = 0
        for _ in range(cap):
            if not self.admit()["admitted"]:
                return admitted
            admitted += 1
        raise ConfigurationError(
            f"daemon still admitting after {cap} streams")

    def release(self, stream: int | None = None) -> dict:
        """Release ``stream`` (or the oldest active one).

        Explicit-stream releases are idempotent (a doubled release of
        the same ticket answers 400, which we treat as released) and
        therefore retried mid-flight; anonymous releases pop the
        oldest stream and are connect-stage-retry only.
        """
        body = {"stream": stream} if stream is not None else {}
        status, data = self._json("POST", "/release", body,
                                  idempotent=stream is not None)
        if status != 200:
            raise ConfigurationError(
                f"release failed ({status}): {data.get('error')}")
        return data

    def release_many(self, streams, *, batch: int = 16) -> dict:
        """Release a batch of tickets through ``/release/batch`` in
        chunks of ``batch``.  Idempotent (doubled releases land in
        ``missing``), so mid-flight failures retry.  Returns
        ``{"released", "missing", "active"}`` accumulated over the
        chunks."""
        if batch < 1:
            raise ConfigurationError(
                f"batch must be >= 1, got {batch!r}")
        tickets = [int(s) for s in streams]
        released: list[int] = []
        missing: list[int] = []
        active = None
        for start in range(0, len(tickets), int(batch)):
            chunk = tickets[start:start + int(batch)]
            status, data = self._json("POST", "/release/batch",
                                      {"streams": chunk})
            if status != 200:
                raise ConfigurationError(
                    f"release batch failed ({status}): "
                    f"{data.get('error')}")
            released.extend(int(s) for s in data.get("released", ()))
            missing.extend(int(s) for s in data.get("missing", ()))
            active = data.get("active", active)
        return {"released": released, "missing": missing,
                "active": active}

    def fault(self, kind: str, disk: int = 0,
              factor: float = 1.0) -> dict:
        """Inject one fault event (``slow_disk`` takes ``factor``)."""
        body = {"kind": kind, "disk": disk}
        if factor != 1.0:
            body["factor"] = factor
        status, data = self._json("POST", "/fault", body)
        if status != 200:
            raise ConfigurationError(
                f"fault failed ({status}): {data.get('error')}")
        return data

    def snapshot(self) -> dict:
        """Ask the daemon to persist its crash-safe snapshot now."""
        status, data = self._json("POST", "/snapshot")
        if status != 200:
            raise ConfigurationError(
                f"snapshot failed ({status}): {data.get('error')}")
        return data

    def metrics(self) -> str:
        """Prometheus text exposition from ``/metrics``."""
        status, payload = self._request("GET", "/metrics")
        if status != 200:
            raise ConfigurationError(f"/metrics returned {status}")
        return payload.decode("utf-8")

    def healthz(self) -> dict:
        """Liveness JSON from ``/healthz``."""
        return self._json("GET", "/healthz")[1]

    def state(self) -> dict:
        """Full daemon state JSON from ``/state``."""
        return self._json("GET", "/state")[1]

    def control(self) -> dict:
        """Control-plane JSON from ``/control``."""
        return self._json("GET", "/control")[1]

    def slo(self) -> dict:
        """Error-budget burn-rate state JSON from ``/slo``."""
        return self._json("GET", "/slo")[1]
