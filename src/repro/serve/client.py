"""``urllib`` client for a running ``repro serve`` daemon.

Used by the ``repro admit`` CLI, the serve smoke test, the chaos leg
and benches A23/A25 -- no third-party HTTP library, no connection
pooling cleverness: one request per call against the daemon's
thread-per-request server.

The client is **retrying**: transport failures (connection refused
while the daemon restarts from a snapshot, a connection torn mid
flight by ``kill -9``) are retried with exponential backoff plus
deterministic decorrelation jitter, up to ``retries`` attempts per
call, each under its own ``timeout``.  Retry safety is per operation:

- *connect-stage* failures (``ConnectionRefusedError`` and friends
  wrapped in ``URLError``) are retried for every operation -- the
  request never reached the daemon, so re-sending cannot double-apply;
- *mid-flight* failures (the connection died after the request was
  sent; the daemon may or may not have processed it) are retried only
  for idempotent operations: reads, ``release`` of an explicit stream
  (releasing an already-released ticket is a 400 the caller sees as
  "done"), and ``fault``/``snapshot`` whose doubled application is a
  no-op.  A mid-flight ``admit`` is *not* retried -- a blind re-send
  could admit two streams for one request -- and surfaces as a
  :class:`~repro.errors.ConfigurationError` naming the ambiguity.

Exhausted retries raise :class:`~repro.errors.ConfigurationError`
(never a raw ``ConnectionError``), carrying the last transport error.

Every wire request carries the ``X-Repro-Trace`` header
(``trace_id/span_id/attempt``): with a tracer enabled the ids come
from real ``client.<op>``/``client.request`` spans so the daemon's
spans join the client's tree; without one, fresh ids are minted so the
daemon still sees a client-originated trace-id and -- crucially -- the
attempt number, which keeps retried requests out of its primary
request counters.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

from repro.errors import ConfigurationError
from repro.obs.spans import (
    TRACE_HEADER,
    SpanContext,
    format_trace_header,
    new_id,
    start_span,
)
from repro.obs.trace import get_tracer

__all__ = ["ServeClient"]

#: Transport-level exceptions that mean "the daemon was unreachable or
#: the connection died" -- candidates for retry.
_TRANSPORT_ERRORS = (urllib.error.URLError, ConnectionError,
                     TimeoutError, OSError)


def _is_connect_stage(exc: BaseException) -> bool:
    """Whether the failure happened before the request was sent (safe
    to retry for any operation)."""
    reason = getattr(exc, "reason", exc)
    return isinstance(reason, (ConnectionRefusedError,
                               ConnectionAbortedError))


class ServeClient:
    """Retrying JSON client bound to one daemon base URL."""

    def __init__(self, url: str, timeout: float = 10.0, *,
                 retries: int = 5, backoff: float = 0.05,
                 backoff_max: float = 2.0,
                 sleep=time.sleep, tracer=None) -> None:
        if not url.startswith(("http://", "https://")):
            raise ConfigurationError(
                f"daemon url must start with http(s)://, got {url!r}")
        if retries < 1:
            raise ConfigurationError(
                f"retries must be >= 1, got {retries!r}")
        if backoff <= 0 or backoff_max < backoff:
            raise ConfigurationError(
                f"need 0 < backoff <= backoff_max, got "
                f"{backoff!r}/{backoff_max!r}")
        self.url = url.rstrip("/")
        self.timeout = timeout
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.backoff_max = float(backoff_max)
        self._sleep = sleep
        #: None defers to the process-wide tracer at call time.
        self._tracer = tracer
        #: Transport retries performed over this client's lifetime.
        self.retried = 0

    # -- plumbing ------------------------------------------------------
    def _delay(self, attempt: int) -> float:
        """Exponential backoff with deterministic decorrelation jitter
        (golden-ratio phase per attempt: spreads concurrent clients
        without consuming global RNG state)."""
        base = min(self.backoff * (2.0 ** attempt), self.backoff_max)
        jitter = ((attempt + 1) * 0.618033988749895) % 1.0
        return base * (0.5 + 0.5 * jitter)

    def _request(self, method: str, path: str,
                 body: dict | None = None, *,
                 idempotent: bool = True) -> tuple[int, bytes]:
        data = (json.dumps(body).encode("utf-8")
                if body is not None else None)
        tracer = (self._tracer if self._tracer is not None
                  else get_tracer())
        op = path.strip("/").replace("/", ".") or "root"
        op_span = start_span(f"client.{op}", tracer=tracer,
                             method=method, path=path)
        with op_span:
            trace_id = (op_span.context.trace_id
                        if op_span.context is not None else new_id())
            last: BaseException | None = None
            for attempt in range(self.retries):
                number = attempt + 1
                attempt_span = start_span(
                    "client.request", tracer=tracer,
                    parent=(op_span if op_span.context is not None
                            else None),
                    trace_id=trace_id, attempt=number)
                with attempt_span:
                    # The wire context is the attempt span when traced;
                    # otherwise mint ids so the daemon still receives a
                    # client-originated trace-id + attempt number.
                    context = attempt_span.context or SpanContext(
                        trace_id, new_id())
                    headers = {TRACE_HEADER:
                               format_trace_header(context, number)}
                    if data:
                        headers["Content-Type"] = "application/json"
                    request = urllib.request.Request(
                        self.url + path, data=data, method=method,
                        headers=headers)
                    try:
                        with urllib.request.urlopen(
                                request, timeout=self.timeout) as resp:
                            payload = resp.read()
                            attempt_span.set(status=resp.status)
                            op_span.set(status=resp.status,
                                        attempts=number)
                            return resp.status, payload
                    except urllib.error.HTTPError as exc:
                        # 4xx carries a JSON error payload we want to
                        # surface, not an exception -- a 409 rejection
                        # is a *result*.
                        with exc:
                            payload = exc.read()
                        attempt_span.set(status=exc.code)
                        op_span.set(status=exc.code, attempts=number)
                        return exc.code, payload
                    except _TRANSPORT_ERRORS as exc:
                        last = exc
                        attempt_span.set(error=type(exc).__name__)
                        if not idempotent and not _is_connect_stage(exc):
                            op_span.set(error="mid-flight",
                                        attempts=number)
                            raise ConfigurationError(
                                f"{method} {path} failed mid-flight "
                                f"({exc}); not retrying a "
                                f"non-idempotent operation -- the "
                                f"daemon may have already applied it"
                                ) from exc
                if attempt + 1 < self.retries:
                    self.retried += 1
                    self._sleep(self._delay(attempt))
            op_span.set(error="unreachable", attempts=self.retries)
            raise ConfigurationError(
                f"{method} {path} unreachable after {self.retries} "
                f"attempt(s): {last}") from last

    def _json(self, method: str, path: str,
              body: dict | None = None, *,
              idempotent: bool = True) -> tuple[int, dict]:
        status, payload = self._request(method, path, body,
                                        idempotent=idempotent)
        try:
            return status, json.loads(payload.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            raise ConfigurationError(
                f"daemon returned non-JSON for {path}: "
                f"{payload[:120]!r}") from None

    # -- operations ----------------------------------------------------
    def admit(self) -> dict:
        """One admission attempt.  Returns ``{"admitted": bool, ...}``
        -- a 409 rejection is reported, not raised.  Connect-stage
        failures retry; mid-flight ones raise (see module docs)."""
        status, data = self._json("POST", "/admit", idempotent=False)
        data["admitted"] = status == 200
        return data

    def admit_until_reject(self, cap: int = 100_000) -> int:
        """Admit repeatedly until the daemon says no; returns how many
        were admitted.  ``cap`` guards against a daemon that never
        rejects."""
        admitted = 0
        for _ in range(cap):
            if not self.admit()["admitted"]:
                return admitted
            admitted += 1
        raise ConfigurationError(
            f"daemon still admitting after {cap} streams")

    def release(self, stream: int | None = None) -> dict:
        """Release ``stream`` (or the oldest active one).

        Explicit-stream releases are idempotent (a doubled release of
        the same ticket answers 400, which we treat as released) and
        therefore retried mid-flight; anonymous releases pop the
        oldest stream and are connect-stage-retry only.
        """
        body = {"stream": stream} if stream is not None else {}
        status, data = self._json("POST", "/release", body,
                                  idempotent=stream is not None)
        if status != 200:
            raise ConfigurationError(
                f"release failed ({status}): {data.get('error')}")
        return data

    def fault(self, kind: str, disk: int = 0,
              factor: float = 1.0) -> dict:
        """Inject one fault event (``slow_disk`` takes ``factor``)."""
        body = {"kind": kind, "disk": disk}
        if factor != 1.0:
            body["factor"] = factor
        status, data = self._json("POST", "/fault", body)
        if status != 200:
            raise ConfigurationError(
                f"fault failed ({status}): {data.get('error')}")
        return data

    def snapshot(self) -> dict:
        """Ask the daemon to persist its crash-safe snapshot now."""
        status, data = self._json("POST", "/snapshot")
        if status != 200:
            raise ConfigurationError(
                f"snapshot failed ({status}): {data.get('error')}")
        return data

    def metrics(self) -> str:
        """Prometheus text exposition from ``/metrics``."""
        status, payload = self._request("GET", "/metrics")
        if status != 200:
            raise ConfigurationError(f"/metrics returned {status}")
        return payload.decode("utf-8")

    def healthz(self) -> dict:
        """Liveness JSON from ``/healthz``."""
        return self._json("GET", "/healthz")[1]

    def state(self) -> dict:
        """Full daemon state JSON from ``/state``."""
        return self._json("GET", "/state")[1]

    def control(self) -> dict:
        """Control-plane JSON from ``/control``."""
        return self._json("GET", "/control")[1]

    def slo(self) -> dict:
        """Error-budget burn-rate state JSON from ``/slo``."""
        return self._json("GET", "/slo")[1]
