"""HTTP front end for :class:`~repro.serve.daemon.ServeDaemon`.

A stdlib ``ThreadingHTTPServer`` (one thread per connection, no
external dependencies) exposing:

- ``POST /admit``   -> 200 ``{"stream": ..., "active": ...}`` or
  409 ``{"error": ...}`` when admission would break the guarantee;
- ``POST /admit/batch`` -> 200 ``{"requested": k, "granted": g,
  "streams": [...], "active": ...}``; body ``{"count": k}``.  One
  shard acquisition and one span for the whole batch; partial grants
  return 200 with ``granted < requested``, a zero grant returns 409;
- ``POST /release`` -> 200; JSON body ``{"stream": n}`` optional
  (default: oldest active stream);
- ``POST /release/batch`` -> 200 ``{"released": [...], "missing":
  [...], "active": ...}``; body ``{"streams": [...]}``;
- ``POST /fault``   -> 200; JSON body ``{"kind": "disk_fail",
  "disk": 0}`` applies the event to the live controller
  (``slow_disk`` also takes ``"factor"``);
- ``POST /snapshot``-> 200; persists the crash-safe ledger snapshot
  and returns where it was written;
- ``GET /metrics``  -> Prometheus text exposition of the daemon's
  registry (version 0.0.4 content type), refreshed with trace-loss
  counters, SLO burn gauges and per-shard admission gauges at scrape
  time;
- ``GET /healthz``  -> liveness JSON;
- ``GET /state``    -> full controller/policy/table JSON view;
- ``GET /control``  -> control-plane view: telemetry window
  aggregates, controller state machine, drift factors, shard epoch;
- ``GET /slo``      -> ε error-budget view: burn rates over the
  fast/slow round windows, alert state, budget remaining.

Connections are HTTP/1.1 persistent: a keep-alive client
(:class:`~repro.serve.client.ServeClient`) pays the TCP handshake
once and its requests keep landing on the same worker thread -- which
also pins them to one admission shard, so the sharded hot path runs
contention-free per connection.  The server tracks live connection
sockets and force-closes them on shutdown, so ``block_on_close`` can
still join every worker and a clean exit leaks nothing.

Two response fast paths skip JSON encoding entirely: admission
rejects are answered from a one-slot pre-encoded 409 cache (the
reject message is stable while the daemon sits at capacity -- the
common case under overload), and ``/healthz`` reuses a pre-encoded
prefix keyed on (status, active, capacity), appending only the uptime
float.  Both caches produce byte-identical output to a fresh
``json.dumps``.

Mutating requests honour the ``X-Repro-Trace`` header: the handler
opens an ``http.<op>`` span parented on the client's span context (so
one JSONL trace reconstructs client -> HTTP -> admission -> ledger),
and the attempt number stamped by :class:`~repro.serve.client.
ServeClient` retries routes attempt > 1 into the daemon's *retried*
request counter instead of the primary one.  ``/release`` and
``/release/batch`` are the unspanned mutations -- they stay fully
counter-visible, but the admit chain is the traced artifact and
skipping one span per admit/release cycle keeps tracing inside the
A26 overhead budget.  A batch admit opens one ``http.admit_batch``
span for the whole batch (per-ticket events would defeat the
amortisation the endpoint exists for).

:class:`ServeHandle` owns the server lifecycle: ``start()`` spawns the
accept loop thread, ``stop()`` first stops any attached background
feeds (:meth:`ServeHandle.attach`), then shuts the server down,
force-closes the tracked keep-alive connections and joins every
request thread (``block_on_close``) -- the CI smoke test asserts
exactly that.  :class:`FaultFeed` replays a TOML
:class:`~repro.server.faults.FaultSchedule` against the daemon in
scaled wall-clock time; :class:`RoundTicker` drives the daemon's
measurement/control loop (:meth:`~repro.serve.daemon.ServeDaemon.
tick_round`) at a fixed wall-clock cadence.
"""

from __future__ import annotations

import json
import socket
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import AdmissionError, ConfigurationError, ReproError
from repro.obs.spans import TRACE_HEADER, parse_trace_header, start_span
from repro.serve.daemon import ServeDaemon

__all__ = ["ServeHandle", "FaultFeed", "RoundTicker",
           "PROMETHEUS_CONTENT_TYPE"]

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Span names for the known mutating routes, precomputed so the admit
#: hot path skips the per-request string surgery.
_SPAN_NAMES = {"/admit": "http.admit",
               "/admit/batch": "http.admit_batch",
               "/fault": "http.fault", "/snapshot": "http.snapshot"}
#: Routes that are counter-visible but never spanned (see module doc).
_UNSPANNED = ("/release", "/release/batch")
_MAX_BODY = 64 * 1024


class _ServeHTTPServer(ThreadingHTTPServer):
    """Request-per-thread server that joins its workers on close.

    Keep-alive means a worker thread lives as long as its connection:
    the server keeps the set of live connection sockets so
    :meth:`close_connections` can force idle keep-alive workers out of
    their blocking read at shutdown -- without it, ``block_on_close``
    would wait forever on a client that simply kept its connection
    open.
    """

    daemon_threads = False
    block_on_close = True
    #: Fast restarts over leaked-port paranoia: tests bind ephemeral
    #: ports, the CLI binds user-chosen ones.
    allow_reuse_address = True

    def __init__(self, address, daemon: ServeDaemon) -> None:
        super().__init__(address, _Handler)
        self.daemon = daemon
        self._conn_lock = threading.Lock()
        self._conns: set = set()
        #: One-slot pre-encoded 409 cache: (reject message, body).
        self.reject_cache: tuple = (None, b"")
        #: Pre-encoded healthz prefix: ((degraded, active, capacity),
        #: bytes up to the uptime value).
        self.healthz_cache: tuple = (None, b"")

    def get_request(self):
        request, address = super().get_request()
        with self._conn_lock:
            self._conns.add(request)
        return request, address

    def shutdown_request(self, request) -> None:
        with self._conn_lock:
            self._conns.discard(request)
        super().shutdown_request(request)

    def close_connections(self) -> None:
        """Force-close every live connection so keep-alive workers
        unblock and can be joined."""
        with self._conn_lock:
            conns = list(self._conns)
            self._conns.clear()
        for request in conns:
            try:
                request.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass

    def handle_error(self, request, client_address) -> None:
        """A force-closed keep-alive connection raises in its worker
        during shutdown (and an impatient client mid-response any
        time); that is connection lifecycle, not a server error."""
        exc = sys.exc_info()[1]
        if isinstance(exc, (ConnectionError, OSError)):
            return
        super().handle_error(request, client_address)


class _Handler(BaseHTTPRequestHandler):
    """Routes requests into the daemon; all responses are JSON except
    ``/metrics``."""

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"
    #: Buffer the response writer so headers + body leave in ONE
    #: send() (handle_one_request flushes after each response).  With
    #: the default unbuffered wfile the body is a second small packet
    #: that Nagle holds until the client ACKs the header packet --
    #: a ~40ms delayed-ACK stall per keep-alive response.
    wbufsize = -1
    disable_nagle_algorithm = True

    def log_message(self, format, *args):  # noqa: A002 - stdlib name
        """Quiet by default; the metrics registry is the access log."""

    # -- plumbing ------------------------------------------------------
    def _send(self, status: int, payload: bytes,
              content_type: str = "application/json") -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _send_json(self, status: int, data: dict) -> int:
        self._send(status, (json.dumps(data) + "\n").encode("utf-8"))
        return status

    def _send_reject(self, exc: AdmissionError) -> int:
        """409 from the pre-encoded one-slot cache.  At capacity every
        reject carries the same message (same active count, same
        limit), so the overload path never touches ``json.dumps``."""
        message = str(exc)
        key, body = self.server.reject_cache
        if key != message:
            body = (json.dumps({"error": message, "admitted": False})
                    + "\n").encode("utf-8")
            self.server.reject_cache = (message, body)
        self._send(409, body)
        return 409

    def _send_healthz(self) -> None:
        """Liveness from a pre-encoded prefix; only the uptime float
        is formatted per request.  Byte-identical to ``_send_json(200,
        daemon.healthz())``."""
        daemon = self.server.daemon
        controller = daemon.controller
        key = (controller.degraded, controller.active,
               controller.capacity)
        cached_key, prefix = self.server.healthz_cache
        if key != cached_key:
            prefix = (
                '{"status": "%s", "active": %d, "capacity": %d, '
                '"uptime_seconds": '
                % ("degraded" if key[0] else "ok", key[1], key[2])
            ).encode("utf-8")
            self.server.healthz_cache = (key, prefix)
        uptime = time.time() - daemon.started_at
        self._send(200, prefix + repr(uptime).encode("ascii") + b"}\n")

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            return {}
        if length > _MAX_BODY:
            raise ConfigurationError(
                f"request body too large ({length} bytes)")
        raw = self.rfile.read(length)
        try:
            data = json.loads(raw.decode("utf-8")) if raw.strip() else {}
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ConfigurationError(
                f"request body is not JSON: {exc}") from None
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"request body must be a JSON object, got {data!r}")
        return data

    # -- routes --------------------------------------------------------
    def do_GET(self) -> None:
        """Read-only views: metrics, health, state, control, SLO."""
        daemon = self.server.daemon
        if self.path == "/metrics":
            daemon.refresh_export_metrics()
            text = daemon.registry.to_prometheus()
            self._send(200, text.encode("utf-8"),
                       content_type=PROMETHEUS_CONTENT_TYPE)
        elif self.path == "/healthz":
            self._send_healthz()
        elif self.path == "/state":
            self._send_json(200, daemon.state())
        elif self.path == "/control":
            self._send_json(200, daemon.control_state())
        elif self.path == "/slo":
            self._send_json(200, daemon.slo_state())
        else:
            self._send_json(404, {"error": f"no route {self.path!r}"})

    def do_POST(self) -> None:
        """Mutating operations: admit (single/batch), release
        (single/batch), fault, snapshot.

        The ``X-Repro-Trace`` header joins the daemon-side span tree
        onto the client's trace and flags retried attempts so they
        stay out of the primary request counters.  A malformed header
        never fails the request (it parses as absent).
        """
        daemon = self.server.daemon
        context, attempt = parse_trace_header(
            self.headers.get(TRACE_HEADER))
        if self.path in _UNSPANNED:
            self._dispatch_post(daemon, attempt > 1)
            return
        name = _SPAN_NAMES.get(self.path)
        if name is None:
            op = self.path.strip("/").replace("/", ".") or "root"
            name = f"http.{op}"
        if attempt > 1:
            span = start_span(name, tracer=daemon.tracer,
                              parent=context, attempt=attempt)
        else:
            span = start_span(name, tracer=daemon.tracer,
                              parent=context)
        with span:
            status = self._dispatch_post(daemon, attempt > 1)
            span.set(status=status)

    def _dispatch_post(self, daemon: ServeDaemon,
                       retried: bool) -> int:
        """Route one mutating request; returns the HTTP status sent."""
        try:
            body = self._read_body()
            if self.path == "/admit":
                return self._send_json(200,
                                       daemon.admit(retried=retried))
            if self.path == "/admit/batch":
                try:
                    count = int(body.get("count", 1))
                except (TypeError, ValueError):
                    raise ConfigurationError(
                        f"admit batch 'count' must be an integer, "
                        f"got {body.get('count')!r}") from None
                return self._send_json(
                    200, daemon.admit_many(count, retried=retried))
            if self.path == "/release":
                return self._send_json(
                    200, daemon.release(body.get("stream"),
                                        retried=retried))
            if self.path == "/release/batch":
                raw = body.get("streams")
                if not isinstance(raw, list):
                    raise ConfigurationError(
                        "release batch body needs a 'streams' list")
                try:
                    streams = [int(s) for s in raw]
                except (TypeError, ValueError):
                    raise ConfigurationError(
                        f"release batch 'streams' must be integers, "
                        f"got {raw!r}") from None
                return self._send_json(
                    200, daemon.release_many(streams,
                                             retried=retried))
            if self.path == "/fault":
                kind = body.get("kind")
                if not kind:
                    raise ConfigurationError(
                        "fault body needs a 'kind' key")
                return self._send_json(
                    200, daemon.fault(
                        str(kind), int(body.get("disk", 0)),
                        factor=float(body.get("factor", 1.0)),
                        retried=retried))
            if self.path == "/snapshot":
                written = daemon.save_snapshot()
                if written is None:
                    raise ConfigurationError(
                        "daemon has no --snapshot-path configured")
                return self._send_json(200, {"written": str(written)})
            return self._send_json(
                404, {"error": f"no route {self.path!r}"})
        except AdmissionError as exc:
            return self._send_reject(exc)
        except ReproError as exc:
            return self._send_json(400, {"error": str(exc)})


class ServeHandle:
    """Lifecycle wrapper: daemon + HTTP server + accept-loop thread."""

    def __init__(self, daemon: ServeDaemon, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.daemon = daemon
        self.server = _ServeHTTPServer((host, port), daemon)
        self.host, self.port = self.server.server_address[:2]
        self._thread: threading.Thread | None = None
        self._feeds: list = []

    @property
    def url(self) -> str:
        """Base URL clients should talk to."""
        return f"http://{self.host}:{self.port}"

    def attach(self, feed) -> "ServeHandle":
        """Register a background feed (:class:`FaultFeed`,
        :class:`RoundTicker`) so :meth:`stop` tears it down *before*
        the HTTP server -- a feed left running would keep mutating the
        daemon (or, mid-sleep, outlive the process's clean exit)."""
        self._feeds.append(feed)
        return self

    def start(self) -> "ServeHandle":
        """Spawn the accept loop; returns self for chaining."""
        if self._thread is not None:
            raise ConfigurationError("serve handle already started")
        self._thread = threading.Thread(
            target=self.server.serve_forever,
            name=f"repro-serve:{self.port}")
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop attached feeds, stop accepting, force-close live
        keep-alive connections, join the accept loop and every request
        thread, close the listening socket.  Idempotent."""
        while self._feeds:
            # Reverse order of attachment; each stop() joins.
            self._feeds.pop().stop()
        if self._thread is not None:
            self.server.shutdown()
            self._thread.join()
            self._thread = None
        # Unblock idle keep-alive workers *before* server_close joins
        # them (block_on_close) -- an open client connection would
        # otherwise park the join forever.
        self.server.close_connections()
        self.server.server_close()

    def __enter__(self) -> "ServeHandle":
        """Start on entry (``with ServeHandle(daemon) as handle:``)."""
        return self.start()

    def __exit__(self, *exc) -> None:
        """Always stop, even when the body raised."""
        self.stop()


class FaultFeed:
    """Replays a :class:`~repro.server.faults.FaultSchedule` against a
    live daemon.

    Event times are interpreted as seconds and multiplied by
    ``time_scale`` -- a schedule authored in round units (the CLI
    convention, one round = ``t`` seconds) replayed with
    ``time_scale=0.01`` injects a round-300 failure after 3 wall
    seconds.  The feed runs in its own thread; ``stop()`` cancels any
    remaining events (including one it is currently sleeping towards)
    and joins it.
    """

    def __init__(self, daemon: ServeDaemon, schedule,
                 time_scale: float = 1.0) -> None:
        if time_scale <= 0:
            raise ConfigurationError(
                f"time_scale must be positive, got {time_scale!r}")
        self.daemon = daemon
        self.events = list(schedule)
        self.time_scale = float(time_scale)
        self.applied = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def _run(self) -> None:
        elapsed = 0.0
        for event in self.events:
            delay = event.t * self.time_scale - elapsed
            if delay > 0 and self._stop.wait(delay):
                return
            elapsed = event.t * self.time_scale
            if self._stop.is_set():
                return
            self.daemon.fault(event.kind,
                              event.disk if event.disk is not None
                              else 0,
                              factor=event.factor)
            self.applied += 1

    def start(self) -> "FaultFeed":
        """Spawn the replay thread; returns self for chaining."""
        if self._thread is not None:
            raise ConfigurationError("fault feed already started")
        self._thread = threading.Thread(target=self._run,
                                        name="repro-serve-faults")
        self._thread.start()
        return self

    def join(self, timeout: float | None = None) -> None:
        """Wait for the replay to finish."""
        if self._thread is not None:
            self._thread.join(timeout)

    def stop(self) -> None:
        """Cancel pending events and join the thread.  Idempotent."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None


class RoundTicker:
    """Drives :meth:`~repro.serve.daemon.ServeDaemon.tick_round` at a
    fixed wall-clock cadence -- the production heartbeat of the
    measurement/control loop.  Tests and benches skip the ticker and
    call ``tick_round()`` directly for determinism."""

    def __init__(self, daemon: ServeDaemon,
                 interval: float = 0.2) -> None:
        if interval <= 0:
            raise ConfigurationError(
                f"tick interval must be positive, got {interval!r}")
        self.daemon = daemon
        self.interval = float(interval)
        self.ticks = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.daemon.tick_round()
            self.ticks += 1

    def start(self) -> "RoundTicker":
        """Spawn the tick thread; returns self for chaining."""
        if self._thread is not None:
            raise ConfigurationError("round ticker already started")
        self._thread = threading.Thread(target=self._run,
                                        name="repro-serve-ticker")
        self._thread.start()
        return self

    def stop(self) -> None:
        """Cancel the cadence and join the thread.  Idempotent."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
