"""Live admission-control service (``repro serve``).

The paper's §5 scheme is an *online* admission test: a stream enters
only while the precomputed stochastic guarantee still holds.  This
package turns the batch machinery (``AdmissionTable``, the persistent
bound cache, ``SheddingPolicy``, ``MetricsRegistry``) into a
long-running daemon:

- :class:`~repro.serve.daemon.ServeDaemon` -- the thread-safe service
  core: admits/releases streams against the locked
  :class:`~repro.server.admission.AdmissionController`, applies the
  shedding policy live as disk fail/recover events arrive, and keeps
  every counter in a :class:`~repro.obs.metrics.MetricsRegistry`;
- :mod:`~repro.serve.http` -- a stdlib ``ThreadingHTTPServer`` front
  end exposing ``POST /admit``, ``POST /release``, ``POST /fault`` and
  ``GET /metrics`` (Prometheus text exposition), ``GET /healthz``,
  ``GET /state``;
- :class:`~repro.serve.http.FaultFeed` -- replays a TOML
  :class:`~repro.server.faults.FaultSchedule` against the daemon in
  scaled wall-clock time;
- :class:`~repro.serve.http.RoundTicker` -- drives the daemon's
  measurement/control loop (``tick_round``) at wall-clock cadence;
- :class:`~repro.serve.client.ServeClient` -- a retrying ``urllib``
  client (exponential backoff + jitter, idempotency-aware) used by
  ``repro admit``, the smoke/chaos legs and benches A23/A25.

With ``adaptive=True`` the daemon additionally runs the closed-loop
controller from :mod:`repro.control`: a telemetry window compares
observed per-round lateness against the bounds stamped for the
current operating point and retunes ``(N_max, t)`` online through
cached Chernoff re-solves, with a watchdog escalating to hard
shedding; ``snapshot_path`` makes the whole ledger crash-safe
(fsync-atomic versioned JSON, unclean-restart ticket reserve).

Everything is standard library only; the daemon warm-starts by bulk
loading the persistent bound cache
(:meth:`repro.cache.PersistentCache.preload`), so a restart answers
table builds without re-running a single Chernoff optimisation.
"""

from repro.serve.client import ServeClient
from repro.serve.daemon import ServeConfig, ServeDaemon
from repro.serve.http import FaultFeed, RoundTicker, ServeHandle

__all__ = [
    "ServeConfig",
    "ServeDaemon",
    "ServeHandle",
    "FaultFeed",
    "RoundTicker",
    "ServeClient",
]
