"""Deterministic named random-number streams.

Every stochastic component of the simulator (placement, sizes,
rotational latencies, arrivals, ...) draws from its own named stream so
experiments are reproducible and components stay statistically
independent even when code paths are reordered.  Streams are derived
from a root :class:`numpy.random.SeedSequence` keyed by a stable hash of
the stream name.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["RngRegistry"]


class RngRegistry:
    """Factory of independent, reproducible RNG streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """The generator for ``name`` (created on first use).

        The same (seed, name) pair always yields the same stream; calls
        for different names yield statistically independent streams.
        """
        if name not in self._streams:
            key = zlib.crc32(name.encode("utf-8"))
            seq = np.random.SeedSequence(entropy=self.seed,
                                         spawn_key=(key,))
            self._streams[name] = np.random.default_rng(seq)
        return self._streams[name]

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __repr__(self) -> str:
        return (f"RngRegistry(seed={self.seed}, "
                f"streams={sorted(self._streams)})")
