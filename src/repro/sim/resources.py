"""Counted resources and item stores for the simulation kernel."""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any

from repro.errors import SimulationError
from repro.sim.engine import Engine, Event

__all__ = ["Resource", "PriorityResource", "Store"]


class Resource:
    """A counted lock with FIFO waiters (like a disk arm or a buffer
    slot pool).

    ``request()`` returns an event that fires when a unit is granted;
    the holder must call ``release()`` exactly once per grant.
    """

    def __init__(self, engine: Engine, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(
                f"capacity must be >= 1, got {capacity!r}")
        self.engine = engine
        self.capacity = int(capacity)
        self._in_use = 0
        self._waiters: deque[Event] = deque()

    @property
    def in_use(self) -> int:
        """Units currently granted."""
        return self._in_use

    @property
    def available(self) -> int:
        """Units free right now."""
        return self.capacity - self._in_use

    @property
    def queue_length(self) -> int:
        """Requests waiting for a unit."""
        return len(self._waiters)

    def request(self) -> Event:
        """Acquire one unit; the returned event fires on grant."""
        event = self.engine.event()
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed(self)
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Return one unit, waking the longest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError("release() without a matching request()")
        if self._waiters:
            waiter = self._waiters.popleft()
            waiter.succeed(self)
        else:
            self._in_use -= 1

    def __repr__(self) -> str:
        return (f"Resource(capacity={self.capacity}, in_use={self._in_use}, "
                f"queued={len(self._waiters)})")


class PriorityResource(Resource):
    """A counted lock whose waiters are served by priority.

    Lower priority values are served first; ties break FIFO (a
    monotonically increasing sequence number).  Continuous-data fetches
    outranking discrete requests on a shared disk is the motivating
    use (§6).
    """

    def __init__(self, engine: Engine, capacity: int = 1) -> None:
        super().__init__(engine, capacity)
        self._heap: list[tuple[float, int, Event]] = []
        self._ticket = itertools.count()

    @property
    def queue_length(self) -> int:
        """Requests waiting for a unit."""
        return len(self._heap)

    def request(self, priority: float = 0.0) -> Event:
        """Acquire one unit at the given priority (lower = sooner)."""
        event = self.engine.event()
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed(self)
        else:
            heapq.heappush(self._heap,
                           (priority, next(self._ticket), event))
        return event

    def release(self) -> None:
        """Return one unit, waking the highest-priority waiter."""
        if self._in_use <= 0:
            raise SimulationError("release() without a matching request()")
        if self._heap:
            _, _, waiter = heapq.heappop(self._heap)
            waiter.succeed(self)
        else:
            self._in_use -= 1

    def __repr__(self) -> str:
        return (f"PriorityResource(capacity={self.capacity}, "
                f"in_use={self._in_use}, queued={len(self._heap)})")


class Store:
    """An unbounded FIFO hand-off queue of items between processes."""

    def __init__(self, engine: Engine) -> None:
        self.engine = engine
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    @property
    def size(self) -> int:
        """Items currently buffered."""
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit an item, waking the longest-waiting getter if any."""
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """An event that fires with the next available item."""
        event = self.engine.event()
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def __repr__(self) -> str:
        return f"Store(size={len(self._items)}, waiting={len(self._getters)})"
