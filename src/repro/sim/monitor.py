"""Statistics collection for simulations."""

from __future__ import annotations

import math

import numpy as np

from repro.errors import SimulationError

__all__ = ["Monitor", "TimeWeightedMonitor"]


class Monitor:
    """Accumulates scalar observations and summarises them.

    Uses Welford's online algorithm so long simulations do not need to
    retain every sample; ``keep_samples=True`` retains them anyway for
    quantile work.
    """

    def __init__(self, name: str = "", keep_samples: bool = False) -> None:
        self.name = name
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._samples: list[float] | None = [] if keep_samples else None

    def record(self, value: float) -> None:
        """Add one observation."""
        value = float(value)
        self._n += 1
        delta = value - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (value - self._mean)
        self._min = min(self._min, value)
        self._max = max(self._max, value)
        if self._samples is not None:
            self._samples.append(value)

    @property
    def count(self) -> int:
        """Number of observations."""
        return self._n

    @property
    def mean(self) -> float:
        """Sample mean."""
        if self._n == 0:
            raise SimulationError(f"monitor {self.name!r} has no samples")
        return self._mean

    @property
    def var(self) -> float:
        """Unbiased sample variance."""
        if self._n < 2:
            raise SimulationError(
                f"monitor {self.name!r} needs >= 2 samples for variance")
        return self._m2 / (self._n - 1)

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.var)

    @property
    def min(self) -> float:
        """Smallest observation."""
        if self._n == 0:
            raise SimulationError(f"monitor {self.name!r} has no samples")
        return self._min

    @property
    def max(self) -> float:
        """Largest observation."""
        if self._n == 0:
            raise SimulationError(f"monitor {self.name!r} has no samples")
        return self._max

    def quantile(self, q: float) -> float:
        """Empirical quantile; requires ``keep_samples=True``."""
        if self._samples is None:
            raise SimulationError(
                f"monitor {self.name!r} was created without keep_samples")
        if not self._samples:
            raise SimulationError(f"monitor {self.name!r} has no samples")
        return float(np.quantile(self._samples, q))

    def __repr__(self) -> str:
        if self._n == 0:
            return f"Monitor({self.name!r}, empty)"
        return (f"Monitor({self.name!r}, n={self._n}, "
                f"mean={self._mean:.6g})")


class TimeWeightedMonitor:
    """Integrates a piecewise-constant signal over simulation time
    (queue lengths, number of active streams, ...)."""

    def __init__(self, name: str = "", start_time: float = 0.0,
                 initial: float = 0.0) -> None:
        self.name = name
        self._last_time = float(start_time)
        self._last_value = float(initial)
        self._area = 0.0
        self._elapsed = 0.0

    def record(self, now: float, value: float) -> None:
        """The signal changed to ``value`` at time ``now``."""
        if now < self._last_time:
            raise SimulationError(
                f"time went backwards in monitor {self.name!r}")
        dt = now - self._last_time
        self._area += self._last_value * dt
        self._elapsed += dt
        self._last_time = float(now)
        self._last_value = float(value)

    def time_average(self, now: float | None = None) -> float:
        """Time-weighted average of the signal up to ``now``."""
        area, elapsed = self._area, self._elapsed
        if now is not None:
            if now < self._last_time:
                raise SimulationError(
                    f"time went backwards in monitor {self.name!r}")
            dt = now - self._last_time
            area += self._last_value * dt
            elapsed += dt
        if elapsed == 0.0:
            raise SimulationError(
                f"monitor {self.name!r} covers zero elapsed time")
        return area / elapsed

    def __repr__(self) -> str:
        return (f"TimeWeightedMonitor({self.name!r}, "
                f"last={self._last_value:.6g}@{self._last_time:.6g})")
