"""Event combinators: wait for all/any of several events.

The round scheduler waits for every disk's sweep; admission tests race
a timeout against a slot release.  Both shapes are provided here as
first-class events so processes can ``yield`` them directly.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

from repro.errors import SimulationError
from repro.sim.engine import Engine, Event

__all__ = ["all_of", "any_of"]


def _values(events: Sequence[Event]) -> list[Any]:
    return [e._value for e in events]


def all_of(engine: Engine, events: Sequence[Event]) -> Event:
    """An event firing when *every* input event has fired.

    Succeeds with the list of input values (input order).  If any input
    fails, the combinator fails with that exception as soon as it is
    observed.
    """
    events = list(events)
    if not events:
        raise SimulationError("all_of requires at least one event")
    result = engine.event()
    pending = sum(1 for e in events if not e.processed)
    state = {"remaining": pending, "done": False}

    def check_settled(event: Event) -> None:
        if state["done"]:
            return
        if event._ok is False:
            state["done"] = True
            result.fail(event._value)
            return
        state["remaining"] -= 1
        if state["remaining"] <= 0:
            state["done"] = True
            result.succeed(_values(events))

    settled_now = True
    for event in events:
        if event.processed:
            if event._ok is False:
                result.fail(event._value)
                return result
        else:
            settled_now = False
            event.callbacks.append(check_settled)
    if settled_now:
        result.succeed(_values(events))
    return result


def any_of(engine: Engine, events: Sequence[Event]) -> Event:
    """An event firing when the *first* input event fires.

    Succeeds with ``(index, value)`` of the winner; a failing winner
    fails the combinator.  Later events are left untouched (their own
    waiters still see them).
    """
    events = list(events)
    if not events:
        raise SimulationError("any_of requires at least one event")
    result = engine.event()

    for index, event in enumerate(events):
        if event.processed:
            if event._ok:
                result.succeed((index, event._value))
            else:
                result.fail(event._value)
            return result

    state = {"done": False}

    def make_callback(index: int):
        def on_fire(event: Event) -> None:
            if state["done"]:
                return
            state["done"] = True
            if event._ok:
                result.succeed((index, event._value))
            else:
                result.fail(event._value)
        return on_fire

    for index, event in enumerate(events):
        event.callbacks.append(make_callback(index))
    return result
