"""Discrete-event simulation substrate.

A small generator-coroutine kernel in the style of SimPy (which is not
available in this environment): an :class:`~repro.sim.engine.Engine`
with a binary-heap event calendar, :class:`~repro.sim.engine.Process`
coroutines that ``yield`` events or timeouts, counted
:class:`~repro.sim.resources.Resource` locks and
:class:`~repro.sim.resources.Store` queues, deterministic named RNG
streams, and statistics monitors.

The microscopic server simulation (:mod:`repro.server.scheduler`) runs on
this kernel; the bulk validation sweeps use the vectorised Monte-Carlo
path (:mod:`repro.server.simulation`) and the two are cross-validated in
the test suite.
"""

from repro.sim.engine import Engine, Event, Process, Interrupt
from repro.sim.resources import PriorityResource, Resource, Store
from repro.sim.combinators import all_of, any_of
from repro.sim.rng import RngRegistry
from repro.sim.monitor import Monitor, TimeWeightedMonitor

__all__ = [
    "Engine",
    "Event",
    "Process",
    "Interrupt",
    "Resource",
    "PriorityResource",
    "Store",
    "all_of",
    "any_of",
    "RngRegistry",
    "Monitor",
    "TimeWeightedMonitor",
]
