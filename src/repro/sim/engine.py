"""Event calendar and process coroutines.

Usage sketch::

    engine = Engine()

    def worker(engine):
        yield engine.timeout(1.5)          # sleep
        done.succeed(value="result")       # trigger an event

    done = engine.event()
    engine.process(worker(engine))
    engine.run()

Processes are generators that yield :class:`Event` objects (a timeout is
just a pre-scheduled event).  A process is itself an event that triggers
when the generator returns, carrying the generator's return value, so
processes can wait on each other.
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Generator
from typing import Any, Callable

from repro.errors import SimulationError

__all__ = ["Engine", "Event", "Process", "Interrupt"]


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence processes can wait on.

    Lifecycle: *pending* -> ``succeed``/``fail`` -> callbacks run at the
    current simulation time.
    """

    __slots__ = ("engine", "callbacks", "_value", "_ok", "_triggered")

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self.callbacks: list[Callable[[Event], None]] | None = []
        self._value: Any = None
        self._ok: bool | None = None
        self._triggered = False

    @property
    def triggered(self) -> bool:
        """Whether the event has been scheduled for processing."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """Whether callbacks have already run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (valid once triggered)."""
        if self._ok is None:
            raise SimulationError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """Payload passed to :meth:`succeed` (or the failure exception)."""
        if not self._triggered:
            raise SimulationError("event not yet triggered")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with an optional payload."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.engine._enqueue(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiters receive the exception."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exception
        self.engine._enqueue(self)
        return self


class Process(Event):
    """A running generator coroutine; also an event that fires when the
    generator finishes (value = generator return value)."""

    __slots__ = ("_generator", "_waiting_on")

    def __init__(self, engine: "Engine",
                 generator: Generator[Event, Any, Any]) -> None:
        super().__init__(engine)
        if not isinstance(generator, Generator):
            raise SimulationError(
                f"process body must be a generator, got {generator!r}")
        self._generator = generator
        self._waiting_on: Event | None = None
        # Kick off at the current time.
        bootstrap = Event(engine)
        bootstrap.callbacks.append(self._resume)
        bootstrap._triggered = True
        bootstrap._ok = True
        engine._enqueue(bootstrap)

    @property
    def is_alive(self) -> bool:
        """Whether the coroutine has not finished yet."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError("cannot interrupt a finished process")
        waiting = self._waiting_on
        if waiting is not None and not waiting.processed:
            # Detach from whatever we were waiting on.
            if waiting.callbacks is not None and self._resume in waiting.callbacks:
                waiting.callbacks.remove(self._resume)
        self._waiting_on = None
        kick = Event(self.engine)
        kick.callbacks.append(
            lambda _ev, cause=cause: self._step_throw(Interrupt(cause)))
        kick._triggered = True
        kick._ok = True
        self.engine._enqueue(kick)

    # ------------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        if event._ok:
            self._step_send(event._value)
        else:
            self._step_throw(event._value)

    def _step_send(self, value: Any) -> None:
        try:
            target = self._generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        self._wait_on(target)

    def _step_throw(self, exc: BaseException) -> None:
        try:
            target = self._generator.throw(exc)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt:
            raise SimulationError(
                "process did not handle its Interrupt") from None
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if not isinstance(target, Event):
            raise SimulationError(
                f"process yielded {target!r}; processes must yield events "
                "(use engine.timeout(delay) to sleep)")
        if target.processed:
            # Already fired: resume immediately (at the current time).
            kick = Event(self.engine)
            kick.callbacks.append(lambda _ev: self._resume(target))
            kick._triggered = True
            kick._ok = True
            self.engine._enqueue(kick)
        else:
            target.callbacks.append(self._resume)
        self._waiting_on = target


class Engine:
    """The event calendar: a time-ordered heap of triggered events."""

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._sequence = 0
        #: Calendar entries processed so far -- the kernel's unit of
        #: work.  A plain int (bumped once per :meth:`step`) so the
        #: count is free; observability layers read it into a gauge at
        #: report time instead of instrumenting the hot loop.
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    # ------------------------------------------------------------------
    # factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Event:
        """An event that fires ``delay`` seconds from now."""
        if delay < 0 or math.isnan(delay):
            raise SimulationError(f"timeout delay must be >= 0, got {delay!r}")
        event = Event(self)
        event._triggered = True
        event._ok = True
        event._value = value
        self._push(self._now + delay, event)
        return event

    def process(self, generator: Generator[Event, Any, Any]) -> Process:
        """Start a process coroutine now."""
        return Process(self, generator)

    def at(self, when: float, callback: Callable[[], None],
           value: Any = None) -> Event:
        """Schedule ``callback`` to run at absolute time ``when``.

        The hook an external controller (e.g. a fault injector) uses to
        mutate model state at an exact simulation instant, deterministically
        ordered against process events by the calendar's (time, sequence)
        key.  Times already in the past run at the current time.  Returns
        the underlying event so processes may also wait on it.
        """
        if math.isnan(when):
            raise SimulationError(f"at() time must be a number, got {when!r}")
        event = Event(self)
        event._triggered = True
        event._ok = True
        event._value = value
        event.callbacks.append(lambda _event: callback())
        self._push(max(float(when), self._now), event)
        return event

    # ------------------------------------------------------------------
    # scheduling internals
    # ------------------------------------------------------------------
    def _push(self, when: float, event: Event) -> None:
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when} before now={self._now}")
        heapq.heappush(self._heap, (when, self._sequence, event))
        self._sequence += 1

    def _enqueue(self, event: Event) -> None:
        """Schedule a just-triggered event for processing *now*."""
        self._push(self._now, event)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Process the single next event."""
        if not self._heap:
            raise SimulationError("event calendar is empty")
        when, _seq, event = heapq.heappop(self._heap)
        self._now = when
        self.events_processed += 1
        callbacks = event.callbacks
        event.callbacks = None
        if callbacks:
            for callback in callbacks:
                callback(event)
        elif event._ok is False:
            # A failed event nobody waited on: surface the error rather
            # than losing it silently.
            raise event._value

    def run(self, until: float | Event | None = None) -> float:
        """Run until the calendar drains, a time is reached, or an event
        fires.  Returns the simulation time at stop."""
        if isinstance(until, Event):
            sentinel = until
            while not sentinel.processed:
                if not self._heap:
                    raise SimulationError(
                        "calendar drained before the awaited event fired")
                self.step()
            return self._now
        if until is not None:
            if until < self._now:
                raise SimulationError(
                    f"cannot run until {until} < now={self._now}")
            while self._heap and self._heap[0][0] <= until:
                self.step()
            self._now = float(until)
            return self._now
        while self._heap:
            self.step()
        return self._now

    def __repr__(self) -> str:
        return f"Engine(now={self._now:.6g}, pending={len(self._heap)})"
