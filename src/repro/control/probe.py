"""Deterministic round probe feeding the control loop.

The live daemon admits streams but does not, by itself, move a disk
arm: there is no physical signal to observe.  The probe closes that
gap the same way the statistical engine does -- it *samples* each
round's sweep on the calibrated multi-zone disk model
(:func:`repro.server.simulation.simulate_rounds`), one round per alive
disk per tick, with the daemon's live drift state (``slow_disk``
factors) applied as ``service_scale``.  In production the observations
would come from real sweep timings; here the probe doubles as the
drift *generator* for tests, benches and the chaos suite, which is
exactly what makes the convergence scenarios reproducible: every
sample is a pure function of the probe seed and the call sequence.

The probe owns one :class:`numpy.random.Generator` seeded via
``SeedSequence([seed, 0xC7A1])`` and must be driven from one thread at
a time (the daemon serialises ticks under its tick lock).
"""

from __future__ import annotations

import numpy as np

from repro.control.window import LATENCY_EDGES, RoundObservation
from repro.errors import ConfigurationError

__all__ = ["ServiceProbe"]


class ServiceProbe:
    """Seeded per-round sweep sampler for a daemon's disk farm."""

    def __init__(self, spec, size_dist, seed: int = 0) -> None:
        self.spec = spec
        self.size_dist = size_dist
        self.seed = int(seed)
        self._rng = np.random.default_rng(
            np.random.SeedSequence([self.seed, 0xC7A1]))
        #: Rounds sampled so far (all disks of a tick share one round).
        self.samples = 0

    def sample_round(self, round_index: int, t_budget: float,
                     disks, service_model) -> RoundObservation:
        """Probe one round.

        ``disks`` is a sequence of ``(disk, n_requests, scale)`` for
        every alive disk: ``n_requests`` the worst-case batch the disk
        serves this round (doubled when covering a failed mirror) and
        ``scale`` its current slow-disk factor.  Returns the aggregated
        :class:`RoundObservation`, stamped with the disk-weighted
        nominal bound ``b_late(n, t_budget)`` -- the reference the
        controller's guard band is measured against.
        """
        # Local import keeps daemon startup light when never ticked.
        from repro.server.simulation import simulate_rounds

        if t_budget <= 0.0:
            raise ConfigurationError(
                f"round budget must be positive, got {t_budget!r}")
        disk_rounds = late = requests = glitched = 0
        observed = expected = 0.0
        bound_weight = 0.0
        counts = [0] * (len(LATENCY_EDGES) + 1)
        for _, n, scale in disks:
            n = int(n)
            if n < 1:
                continue
            batch = simulate_rounds(
                self.spec, self.size_dist, n, t_budget, 1, self._rng,
                service_scale=float(scale))
            service = float(batch.service_times[0])
            disk_rounds += 1
            requests += n
            glitched += int(batch.glitches.sum())
            observed += service
            expected += float(service_model.mean(n))
            bound_weight += float(service_model.b_late(n, t_budget))
            if service > t_budget:
                late += 1
            relative = service / t_budget
            for index, edge in enumerate(LATENCY_EDGES):
                if relative <= edge:
                    counts[index] += 1
                    break
            else:
                counts[-1] += 1
        self.samples += 1
        return RoundObservation(
            round_index=int(round_index),
            disk_rounds=disk_rounds,
            late_disk_rounds=late,
            requests=requests,
            glitched=glitched,
            observed_service=observed,
            expected_service=expected,
            bound=bound_weight / disk_rounds if disk_rounds else 0.0,
            latency_counts=tuple(counts))
