"""Closed-loop adaptive admission control (``repro serve --adaptive``).

The paper's §5 admission test is an open-loop proof: pick ``(N_max,
t)`` once, at nominal disk speed, and the Chernoff machinery
guarantees ``p_error <= epsilon`` forever after.  Real drives drift --
thermal recalibration storms, slow-disk creep, media retries -- and a
drifted disk quietly invalidates the proof while the daemon keeps
admitting at full capacity.  This package closes the loop:

- :class:`~repro.control.window.TelemetryWindow` /
  :class:`~repro.control.window.RoundObservation` -- windowed
  bound-vs-observed aggregates (Wilson-scored ``p_late``, slot glitch
  rate, service-ratio drift estimator, latency histogram);
- :class:`~repro.control.probe.ServiceProbe` -- the deterministic
  seeded per-round sweep sampler standing in for real drive timings;
- :class:`~repro.control.controller.Controller` -- the observe ->
  plan -> verify -> apply state machine with guard band, hysteresis
  and cooldown, re-solving ``(N_max, t)`` through the persistent
  Chernoff cache via the scaling identity ``P[s*T >= t] = P[T >=
  t/s]``, plus the :class:`~repro.control.controller.Watchdog` that
  escalates to hard shedding;
- :mod:`~repro.control.snapshot` -- versioned, fsync-atomic
  snapshot/restore of the daemon ledger + controller state with the
  unclean-restart ticket reserve (zero duplicate admissions after
  ``kill -9``).

See docs/ROBUSTNESS.md for the operational semantics and
tests/control + tests/serve for the drift/chaos suite.
"""

from repro.control.controller import (Controller, ControllerConfig,
                                      Decision, Watchdog)
from repro.control.probe import ServiceProbe
from repro.control.snapshot import (SNAPSHOT_VERSION, TICKET_RESERVE,
                                    read_snapshot, write_snapshot)
from repro.control.window import RoundObservation, TelemetryWindow

__all__ = [
    "TelemetryWindow",
    "RoundObservation",
    "ServiceProbe",
    "Controller",
    "ControllerConfig",
    "Decision",
    "Watchdog",
    "SNAPSHOT_VERSION",
    "TICKET_RESERVE",
    "write_snapshot",
    "read_snapshot",
]
