"""Closed-loop retuning of the live admission configuration.

The paper proves ``p_error <= epsilon`` for a *static* operating point
``(N_max, t)`` at nominal disk speed.  Under drift (slow-disk creep,
thermal trouble, load ramps) that proof silently stops describing the
machine: the daemon keeps admitting 28 streams per disk while the real
service times have grown 20%, and the observed glitch rate blows
through the stream tolerance.  The :class:`Controller` closes the loop
with the classic observe -> plan -> verify -> apply cycle:

observe
    The daemon's round probe fills a
    :class:`~repro.control.window.TelemetryWindow`; the controller only
    ever reads window aggregates.
plan
    When the Wilson *lower* bound of the observed overrun rate clears
    the guard band over the stamped analytic bound (a confident
    violation, not noise), estimate the drift scale ``s`` from the
    calibrated service-time ratio and re-solve the admission point.
    The key identity is ``P[s*T_n >= t] = P[T_n >= t/s]``: a uniformly
    ``s``-times-slower disk is exactly the nominal disk with round
    budget ``t/s``, so the re-solve is an ordinary
    :func:`~repro.core.admission.n_max_perror` call at ``t_eff =
    t*t_mult/s`` -- every Chernoff bound it touches flows through the
    persistent cache, and the scale estimate is quantised to 5% steps
    so repeated retunes under the same drift are pure cache hits.
verify
    The candidate is accepted only if its *predicted* ``p_error`` at
    the estimated scale is back within ``epsilon`` (and the solve
    found at least one admissible stream, walking the round-length
    ladder when the budget collapsed entirely).
apply
    The daemon sheds or rejoins streams to the new limit; the window
    is cleared and a cooldown starts so the loop reacts to post-retune
    evidence only (hysteresis: tighten needs a confident violation,
    relax needs a comfortable margin *and* a bigger solved limit *and*
    an expired cooldown).

A :class:`Watchdog` sits outside the cycle: when the point estimate
breaches ``watchdog_factor`` times the stamped bound it escalates to
hard shedding immediately -- dropping to the precomputed failure-proof
limit without waiting for a solve or a cooldown, in ``drop`` mode, the
way a human operator would yank load off a drive that is clearly
dying.  The planner then refines from that safe point.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.admission import n_max_perror
from repro.core.glitch import GlitchModel
from repro.errors import ConfigurationError

__all__ = ["ControllerConfig", "Decision", "Watchdog", "Controller"]

#: Drift-scale quantisation step: estimates are snapped to the nearest
#: power of 1.05 so the ``t_eff`` values hitting the bound cache form a
#: small reusable grid instead of a continuum of cache misses.
SCALE_STEP = 1.05

_STATES = ("calibrating", "steady", "cooldown", "escalated")


@dataclass(frozen=True)
class ControllerConfig:
    """Knobs of the control loop (see docs/ROBUSTNESS.md)."""

    #: Rounds kept by the telemetry window.
    window_rounds: int = 48
    #: Minimum probed disk-rounds before plan/relax may act.
    min_disk_rounds: int = 24
    #: Tighten when the Wilson lower bound exceeds
    #: ``(1 - guard_band) * bound`` -- the fraction of the analytic
    #: bound reserved as early-warning margin.
    guard_band: float = 0.25
    #: Relax only while the Wilson *upper* bound sits below
    #: ``relax_margin * (1 - guard_band) * bound`` (hysteresis gap).
    relax_margin: float = 0.5
    #: Rounds after an apply during which the planner stays quiet.
    cooldown_rounds: int = 32
    #: Watchdog trips when the *point* overrun estimate exceeds
    #: ``watchdog_factor * bound``.
    watchdog_factor: float = 4.0
    #: Disk-rounds of evidence the watchdog needs (kept small: it
    #: exists to react faster than the planner).
    watchdog_min_rounds: int = 8
    #: Confidence of the Wilson intervals.
    confidence: float = 0.95
    #: Estimated drift scales are inflated by this factor before the
    #: re-solve, so the plan lands inside the bound, not on its edge.
    safety: float = 1.1
    #: Round-length multipliers tried in order when the effective
    #: budget ``t/s`` is too tight to admit even one stream.
    t_ladder: tuple[float, ...] = (1.0, 1.5, 2.0)
    #: Paused streams rejoin over this many rounds after a relax.
    rejoin_rounds: int = 4
    #: Disk-rounds of comfortable steady evidence used to calibrate
    #: the service-ratio baseline.
    calibration_rounds: int = 16
    #: Drift-scale estimates are clamped to [1, max_scale].
    max_scale: float = 32.0

    def __post_init__(self) -> None:
        if not (0.0 < self.guard_band < 1.0):
            raise ConfigurationError(
                f"guard_band must be in (0, 1), got {self.guard_band!r}")
        if not (0.0 < self.relax_margin <= 1.0):
            raise ConfigurationError(
                f"relax_margin must be in (0, 1], "
                f"got {self.relax_margin!r}")
        if self.watchdog_factor <= 1.0:
            raise ConfigurationError(
                f"watchdog_factor must be > 1, "
                f"got {self.watchdog_factor!r}")
        if self.window_rounds < 1 or self.min_disk_rounds < 1:
            raise ConfigurationError(
                "window_rounds and min_disk_rounds must be >= 1")
        if self.cooldown_rounds < 0 or self.rejoin_rounds < 1:
            raise ConfigurationError(
                "cooldown_rounds must be >= 0 and rejoin_rounds >= 1")
        if not self.t_ladder or any(x < 1.0 for x in self.t_ladder):
            raise ConfigurationError(
                f"t_ladder must be non-empty multipliers >= 1, "
                f"got {self.t_ladder!r}")
        if self.safety < 1.0 or self.max_scale <= 1.0:
            raise ConfigurationError(
                "safety must be >= 1 and max_scale > 1")

    def to_dict(self) -> dict:
        """JSON-serialisable form (stamped into every snapshot)."""
        return {
            "window_rounds": self.window_rounds,
            "min_disk_rounds": self.min_disk_rounds,
            "guard_band": self.guard_band,
            "relax_margin": self.relax_margin,
            "cooldown_rounds": self.cooldown_rounds,
            "watchdog_factor": self.watchdog_factor,
            "watchdog_min_rounds": self.watchdog_min_rounds,
            "confidence": self.confidence,
            "safety": self.safety,
            "t_ladder": list(self.t_ladder),
            "rejoin_rounds": self.rejoin_rounds,
            "calibration_rounds": self.calibration_rounds,
            "max_scale": self.max_scale,
        }


@dataclass(frozen=True)
class Decision:
    """One verified retune the daemon should apply."""

    kind: str                 # "tighten" | "relax" | "watchdog"
    n_max: int                # new per-disk limit
    t_mult: float             # new round-length multiplier
    scale: float              # drift scale the plan assumed
    predicted_p_error: float | None
    reason: str

    def to_dict(self) -> dict:
        """JSON-serialisable form (``/control`` view and snapshots)."""
        return {"kind": self.kind, "n_max": self.n_max,
                "t_mult": self.t_mult, "scale": self.scale,
                "predicted_p_error": self.predicted_p_error,
                "reason": self.reason}


class Watchdog:
    """Last-resort guard over the observed overrun rate.

    Trips on the *point* estimate (no Wilson smoothing -- speed over
    certainty) as soon as ``watchdog_min_rounds`` disk-rounds show an
    overrun rate beyond ``watchdog_factor`` times the stamped bound.
    """

    def __init__(self, factor: float, min_disk_rounds: int) -> None:
        self.factor = float(factor)
        self.min_disk_rounds = int(min_disk_rounds)
        self.trips = 0

    def breached(self, window) -> bool:
        """True when the window's point overrun rate is past the
        escalation threshold (with enough evidence to say so)."""
        if window.disk_rounds < self.min_disk_rounds:
            return False
        reference = window.bound
        if reference <= 0.0:
            return False
        return window.observed_p_late > self.factor * reference


def quantise_scale(scale: float, max_scale: float) -> float:
    """Snap a drift-scale estimate onto the ``SCALE_STEP`` grid,
    clamped to ``[1, max_scale]`` (speeds faster than nominal keep the
    proven static point; we never loosen beyond it)."""
    scale = min(max(float(scale), 1.0), float(max_scale))
    if scale <= 1.0:
        return 1.0
    steps = round(math.log(scale) / math.log(SCALE_STEP))
    return min(max(SCALE_STEP ** steps, 1.0), float(max_scale))


@dataclass
class _Plan:
    n_max: int
    t_mult: float
    predicted_p_error: float | None


class Controller:
    """The observe -> plan -> verify -> apply state machine.

    Owns no threads and takes no locks: the daemon calls :meth:`step`
    under its own lock once per probed round and applies any returned
    :class:`Decision` itself, then confirms with :meth:`committed`.
    """

    def __init__(self, config: ControllerConfig,
                 service_model, t: float, *, delta: float,
                 epsilon: float, m: int, g: int,
                 healthy_n_max: int, fallback_n_max: int,
                 n_cap: int | None = None) -> None:
        self.config = config
        self.model = service_model
        self.t = float(t)
        self.delta = float(delta)
        self.epsilon = float(epsilon)
        self.m = int(m)
        self.g = int(g)
        self.healthy_n_max = int(healthy_n_max)
        #: Precomputed failure-proof limit the watchdog drops to
        #: without waiting for a solve.
        self.fallback_n_max = int(fallback_n_max)
        self.n_cap = int(n_cap or max(4 * healthy_n_max, 64))
        self.watchdog = Watchdog(config.watchdog_factor,
                                 config.watchdog_min_rounds)

        self.state = "calibrating"
        self.cooldown_left = 0
        self.retunes = 0
        #: Steady-state observed/model service ratio; drift scales are
        #: measured relative to it.  ``None`` until calibrated.
        self.calibration: float | None = None
        self.last_decision: Decision | None = None
        #: Admission-shard epoch at the last applied decision (None
        #: until one is applied).  Observability only -- the epoch
        #: counts shard-limit redistributions, which depend on the
        #: shard layout, so it is surfaced in :meth:`summary` but kept
        #: out of :meth:`to_dict` (snapshots stay shard-independent).
        self.applied_epoch: int | None = None
        #: Current operating point as applied by the daemon.
        self.n_max = int(healthy_n_max)
        self.t_mult = 1.0

    # -- plan helpers --------------------------------------------------
    def estimate_scale(self, window) -> float:
        """Quantised drift-scale estimate from the calibrated window
        service ratio, inflated by the safety factor."""
        baseline = self.calibration if self.calibration else 1.0
        raw = window.service_ratio / max(baseline, 1e-9)
        return quantise_scale(raw * self.config.safety,
                              self.config.max_scale)

    def solve(self, scale: float) -> _Plan:
        """Re-solve the admission point for drift scale ``scale``.

        Walks the round-length ladder: ``t_mult = 1`` unless the
        effective budget ``t/scale`` is too tight to admit even one
        stream, in which case the round is lengthened until it can
        (longer rounds amortise the sweep overhead -- eq. 3.1.6 grows
        ``N_max`` superlinearly near the collapse point).  All bound
        evaluations flow through the persistent cache keyed on
        ``(fingerprint, n, t_eff)``.
        """
        for t_mult in self.config.t_ladder:
            t_eff = self.t * float(t_mult) / float(scale)
            glitch = GlitchModel(self.model, t_eff)
            n = n_max_perror(glitch, self.m, self.g, self.epsilon,
                             self.n_cap)
            n = min(n, self.healthy_n_max)
            if n >= 1:
                return _Plan(n, float(t_mult),
                             float(glitch.p_error(n, self.m, self.g)))
        return _Plan(0, float(self.config.t_ladder[-1]), None)

    # -- the cycle -----------------------------------------------------
    def step(self, window) -> Decision | None:
        """One observe/plan/verify pass; returns a verified
        :class:`Decision` for the daemon to apply, or ``None``."""
        cfg = self.config
        if self.cooldown_left > 0:
            self.cooldown_left -= 1
            if self.cooldown_left == 0 and self.state == "cooldown":
                self.state = "steady"

        point = window.observed_p_late
        lower, upper = window.p_late_interval(cfg.confidence)
        if window.late_disk_rounds == 0:
            # A zero-late window is zero evidence: the Wilson centre
            # leaves ~1e-18 of floating-point residue in the lower
            # bound, which would clear the (possibly ~1e-20) guard at
            # tight operating points and trigger phantom tightens.
            lower = 0.0
        reference = window.bound
        guard = (1.0 - cfg.guard_band) * reference

        # Watchdog first: it outranks calibration and cooldown.
        if (self.watchdog.breached(window)
                and self.n_max > self.fallback_n_max):
            self.watchdog.trips += 1
            self.state = "escalated"
            if self.calibration is None:
                self.calibration = 1.0
            return Decision(
                kind="watchdog",
                n_max=min(self.n_max, self.fallback_n_max),
                t_mult=self.t_mult,
                scale=self.estimate_scale(window),
                predicted_p_error=None,
                reason=f"observed p_late {point:.4f} > "
                       f"{cfg.watchdog_factor:g} x bound "
                       f"{reference:.4f}")

        if self.state == "calibrating":
            if window.disk_rounds < cfg.calibration_rounds:
                return None
            if point <= guard or reference <= 0.0:
                # Comfortable steady evidence: freeze the baseline.
                # (Point estimate, not the Wilson upper bound: at
                # calibration sample sizes the upper bound sits near
                # 0.2 regardless of the data and would never clear.)
                self.calibration = window.service_ratio
                self.state = "steady"
                return None
            # Already drifting at startup: assume the model mean is the
            # baseline and let the planner act on this same window.
            self.calibration = 1.0
            self.state = "steady"

        if self.cooldown_left > 0:
            return None
        if window.disk_rounds < cfg.min_disk_rounds:
            return None

        if reference > 0.0 and lower > guard:
            # Confident violation of the guard band: tighten.
            scale = self.estimate_scale(window)
            plan = self.solve(scale)
            if plan.n_max >= self.n_max and plan.t_mult == self.t_mult:
                # The solver believes the current point is fine but the
                # observations disagree (drift the service ratio cannot
                # see, e.g. contention): step down geometrically.
                plan = _Plan(max(self.fallback_n_max,
                                 self.n_max - max(1, self.n_max // 8)),
                             self.t_mult, None)
            if (plan.n_max == self.n_max
                    and plan.t_mult == self.t_mult):
                return None  # already at the planned point (or pinned
                # to the fallback floor): nothing to apply
            if (plan.predicted_p_error is not None
                    and plan.predicted_p_error > self.epsilon):
                return None  # verify failed; keep observing
            return Decision(
                kind="tighten", n_max=plan.n_max, t_mult=plan.t_mult,
                scale=scale, predicted_p_error=plan.predicted_p_error,
                reason=f"p_late lower bound {lower:.4f} > guard "
                       f"{guard:.4f} (scale ~{scale:g})")

        relaxable = (self.n_max < self.healthy_n_max
                     or self.t_mult != 1.0)
        # Comfortable = the upper bound sits well inside the guard, or
        # the window shows zero overruns at all (the only satisfiable
        # form of comfort when the stamped bound is ~1e-20 and no
        # finite sample can push the Wilson upper bound below it).
        comfortable = (window.late_disk_rounds == 0
                       or upper < cfg.relax_margin * guard)
        if relaxable and comfortable:
            scale = self.estimate_scale(window)
            plan = self.solve(scale)
            better = (plan.n_max > self.n_max
                      or (plan.n_max >= self.n_max
                          and plan.t_mult < self.t_mult))
            if better and (plan.predicted_p_error is None
                           or plan.predicted_p_error <= self.epsilon):
                why = ("zero overruns in window"
                       if window.late_disk_rounds == 0 else
                       f"p_late upper bound {upper:.4f} well inside "
                       f"guard {guard:.4f}")
                return Decision(
                    kind="relax", n_max=plan.n_max,
                    t_mult=plan.t_mult, scale=scale,
                    predicted_p_error=plan.predicted_p_error,
                    reason=f"{why} (scale ~{scale:g})")
        return None

    def evidence(self, window) -> dict:
        """The decision audit of one plan pass -- the same window
        aggregates, Wilson interval, stamped bound and guard line
        :meth:`step` reasons over, packaged as flat span attributes so
        every ``control.plan`` span carries *why* the controller did
        (or did not) act."""
        cfg = self.config
        point = window.observed_p_late
        lower, upper = window.p_late_interval(cfg.confidence)
        if window.late_disk_rounds == 0:
            lower = 0.0  # zero-late window: zero evidence (see step)
        reference = window.bound
        return {
            "rounds": window.rounds,
            "disk_rounds": window.disk_rounds,
            "late_disk_rounds": window.late_disk_rounds,
            "p_late": point,
            "p_late_lower": lower,
            "p_late_upper": upper,
            "bound": reference,
            "guard": (1.0 - cfg.guard_band) * reference,
            "guard_band": cfg.guard_band,
            "service_ratio": window.service_ratio,
            "state": self.state,
            "n_max": self.n_max,
            "t_mult": self.t_mult,
        }

    def committed(self, decision: Decision, *,
                  epoch: int | None = None) -> None:
        """The daemon applied ``decision``; start the cooldown.

        ``epoch`` is the admission controller's shard epoch after the
        retarget, recorded for the ``/control`` view.
        """
        if epoch is not None:
            self.applied_epoch = int(epoch)
        self.n_max = int(decision.n_max)
        self.t_mult = float(decision.t_mult)
        self.retunes += 1
        self.last_decision = decision
        self.cooldown_left = self.config.cooldown_rounds
        if decision.kind != "watchdog":
            self.state = ("cooldown" if self.cooldown_left
                          else "steady")
            if (decision.kind == "relax"
                    and decision.n_max >= self.healthy_n_max
                    and decision.t_mult == 1.0):
                self.state = "steady" if not self.cooldown_left \
                    else "cooldown"

    # -- persistence ---------------------------------------------------
    def to_dict(self) -> dict:
        """State-machine position as JSON (``restore_dict`` inverse)."""
        return {
            "state": self.state,
            "cooldown_left": self.cooldown_left,
            "retunes": self.retunes,
            "watchdog_trips": self.watchdog.trips,
            "calibration": self.calibration,
            "n_max": self.n_max,
            "t_mult": self.t_mult,
            "last_decision": (self.last_decision.to_dict()
                              if self.last_decision else None),
        }

    def restore_dict(self, data: dict) -> None:
        """Re-adopt a snapshotted state machine; unknown states are
        refused rather than guessed at."""
        state = str(data.get("state", "calibrating"))
        if state not in _STATES:
            raise ConfigurationError(
                f"snapshot has unknown controller state {state!r}")
        self.state = state
        self.cooldown_left = int(data.get("cooldown_left", 0))
        self.retunes = int(data.get("retunes", 0))
        self.watchdog.trips = int(data.get("watchdog_trips", 0))
        calibration = data.get("calibration")
        self.calibration = (float(calibration)
                            if calibration is not None else None)
        self.n_max = int(data.get("n_max", self.healthy_n_max))
        self.t_mult = float(data.get("t_mult", 1.0))
        last = data.get("last_decision")
        if last:
            self.last_decision = Decision(
                kind=str(last["kind"]), n_max=int(last["n_max"]),
                t_mult=float(last["t_mult"]),
                scale=float(last["scale"]),
                predicted_p_error=(
                    float(last["predicted_p_error"])
                    if last.get("predicted_p_error") is not None
                    else None),
                reason=str(last.get("reason", "")))

    def summary(self) -> dict:
        """JSON view for ``/control``."""
        out = self.to_dict()
        out["config"] = self.config.to_dict()
        out["healthy_n_max"] = self.healthy_n_max
        out["fallback_n_max"] = self.fallback_n_max
        out["applied_epoch"] = self.applied_epoch
        return out

    def __repr__(self) -> str:
        return (f"Controller(state={self.state!r}, n_max={self.n_max}, "
                f"t_mult={self.t_mult:g}, retunes={self.retunes})")
