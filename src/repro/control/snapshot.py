"""Crash-safe snapshot/restore of the daemon ledger + controller.

The admitted-stream guarantee must survive a ``kill -9``: a restarted
daemon may never hand out a ticket that an unreachable client already
holds, and may never resurrect capacity the controller had already
shed.  The format here is deliberately boring -- one versioned JSON
document -- with two non-negotiable mechanics:

**Atomic replace.**  :func:`write_snapshot` writes to a same-directory
temp file, ``fsync``\\ s it, ``os.replace``\\ s it over the target and
then ``fsync``\\ s the directory.  A crash at any instant leaves either
the complete old snapshot or the complete new one, never a torn file.

**Ticket watermark.**  The snapshot records ``next_stream`` and
whether it was written *clean* (daemon quiesced, no requests in
flight).  Restoring a clean snapshot resumes ticket numbering exactly
(the bit-for-bit round-trip the test suite pins).  Restoring an
*unclean* snapshot -- the ``kill -9`` case, where admissions may have
raced the last write -- advances ``next_stream`` by
:data:`TICKET_RESERVE` before the first admission, so even tickets
granted after the snapshot was written can never be re-issued.  The
reserve burns at most 4096 integers per unclean restart against an
unbounded ticket space: zero duplicate admissions, no write on the
admit hot path.

Snapshots embed the daemon's config fingerprint
(:func:`repro.cache.fingerprint` over the admission-relevant
parameters); restoring under a different configuration is refused
rather than silently re-interpreting ledger entries admitted under
other bounds.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.errors import ConfigurationError

__all__ = ["SNAPSHOT_VERSION", "TICKET_RESERVE", "write_snapshot",
           "read_snapshot"]

SNAPSHOT_VERSION = 1

#: Ticket numbers skipped when restoring an unclean snapshot.
TICKET_RESERVE = 4096

_KIND = "repro-serve-snapshot"


def write_snapshot(path: str | Path, payload: dict) -> Path:
    """Atomically persist ``payload`` (adding version/kind headers)."""
    path = Path(path)
    document = {"kind": _KIND, "version": SNAPSHOT_VERSION}
    document.update(payload)
    data = (json.dumps(document, sort_keys=True) + "\n").encode("utf-8")
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}")
    fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        os.write(fd, data)
        os.fsync(fd)
    finally:
        os.close(fd)
    try:
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        finally:
            raise
    # Durable rename: fsync the containing directory (best effort on
    # filesystems that refuse O_RDONLY directory fsync).
    try:
        dir_fd = os.open(path.parent, os.O_RDONLY)
    except OSError:
        return path
    try:
        os.fsync(dir_fd)
    except OSError:
        pass
    finally:
        os.close(dir_fd)
    return path


def read_snapshot(path: str | Path,
                  expected_fingerprint: str | None = None) -> dict:
    """Load and validate a snapshot document.

    Raises :class:`~repro.errors.ConfigurationError` on a torn/foreign
    file, an unsupported version, or (when ``expected_fingerprint`` is
    given) a config mismatch -- a ledger admitted under different
    bounds must not be restored silently.
    """
    path = Path(path)
    try:
        raw = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ConfigurationError(
            f"cannot read snapshot {path}: {exc}") from exc
    try:
        document = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"snapshot {path} is not valid JSON: {exc}") from exc
    if not isinstance(document, dict) or document.get("kind") != _KIND:
        raise ConfigurationError(
            f"{path} is not a repro serve snapshot")
    version = document.get("version")
    if version != SNAPSHOT_VERSION:
        raise ConfigurationError(
            f"snapshot {path} has version {version!r}; this build "
            f"reads version {SNAPSHOT_VERSION}")
    if (expected_fingerprint is not None
            and document.get("config_fingerprint")
            != expected_fingerprint):
        raise ConfigurationError(
            f"snapshot {path} was written under a different daemon "
            f"configuration (fingerprint "
            f"{document.get('config_fingerprint')!r} != "
            f"{expected_fingerprint!r}); refusing to restore")
    return document
