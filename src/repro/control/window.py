"""Windowed bound-vs-observed telemetry for the closed control loop.

The controller never looks at raw probe samples: every round the
daemon folds one :class:`RoundObservation` into a bounded
:class:`TelemetryWindow`, and the plan step reads only the window's
aggregates -- observed ``p_late`` with Wilson score bounds, the
disk-round-weighted analytic reference bound stamped for the rounds in
the window, the stream-slot glitch rate, and the observed/expected
service-time ratio used to estimate the drift scale.  Keeping the
statistics windowed (rather than cumulative) is what lets the loop
*forget*: after a retune the window is cleared so stale pre-retune
lateness cannot keep triggering, and after a drift passes the ratio
decays back within one window length.

Everything here is plain arithmetic over a deque -- no locks (the
daemon serialises access under its own lock) and no clocks, so windows
round-trip exactly through the crash-safe snapshot
(:mod:`repro.control.snapshot`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.analysis.stats import wilson_interval
from repro.distributions import binomial_tail
from repro.errors import ConfigurationError

__all__ = ["RoundObservation", "TelemetryWindow", "LATENCY_EDGES"]

#: Relative service-time histogram edges, as fractions of the round
#: budget ``t``; one overflow bucket beyond 1.0 counts late sweeps.
LATENCY_EDGES = (0.5, 0.75, 0.9, 1.0)


@dataclass(frozen=True)
class RoundObservation:
    """Aggregate of one probed round across every alive disk.

    ``bound`` is the analytic reference stamped for this round: the
    disk-weighted mean of ``b_late(n_disk, t_budget)`` over the alive
    disks, evaluated at *nominal* disk speed -- the whole point of the
    loop is that observed lateness under drift exceeds this stamp.
    """

    round_index: int
    disk_rounds: int          # alive disks probed this round
    late_disk_rounds: int     # of those, sweeps that overran t_budget
    requests: int             # stream slots served across the disks
    glitched: int             # slots whose fragment missed its round
    observed_service: float   # summed sweep seconds (drifted)
    expected_service: float   # summed model mean(n) seconds (nominal)
    bound: float              # stamped b_late reference for this round
    latency_counts: tuple[int, ...] = ()  # histogram over LATENCY_EDGES

    def to_dict(self) -> dict:
        """JSON-serialisable form (snapshot payload)."""
        return {
            "round_index": self.round_index,
            "disk_rounds": self.disk_rounds,
            "late_disk_rounds": self.late_disk_rounds,
            "requests": self.requests,
            "glitched": self.glitched,
            "observed_service": self.observed_service,
            "expected_service": self.expected_service,
            "bound": self.bound,
            "latency_counts": list(self.latency_counts),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RoundObservation":
        return cls(
            round_index=int(data["round_index"]),
            disk_rounds=int(data["disk_rounds"]),
            late_disk_rounds=int(data["late_disk_rounds"]),
            requests=int(data["requests"]),
            glitched=int(data["glitched"]),
            observed_service=float(data["observed_service"]),
            expected_service=float(data["expected_service"]),
            bound=float(data["bound"]),
            latency_counts=tuple(
                int(c) for c in data.get("latency_counts", ())))


class TelemetryWindow:
    """Sliding window of the most recent :class:`RoundObservation`."""

    def __init__(self, maxlen: int = 64) -> None:
        if maxlen < 1:
            raise ConfigurationError(
                f"window maxlen must be >= 1, got {maxlen!r}")
        self.maxlen = int(maxlen)
        self._obs: deque[RoundObservation] = deque(maxlen=self.maxlen)

    # -- mutation ------------------------------------------------------
    def add(self, obs: RoundObservation) -> None:
        """Fold one round's probe into the window (oldest evicted at
        ``maxlen``)."""
        self._obs.append(obs)

    def clear(self) -> None:
        """Forget everything (called after every retune, so the next
        plan step runs on post-retune evidence only)."""
        self._obs.clear()

    # -- aggregates ----------------------------------------------------
    def __len__(self) -> int:
        return len(self._obs)

    @property
    def rounds(self) -> int:
        return len(self._obs)

    @property
    def disk_rounds(self) -> int:
        return sum(o.disk_rounds for o in self._obs)

    @property
    def late_disk_rounds(self) -> int:
        return sum(o.late_disk_rounds for o in self._obs)

    @property
    def requests(self) -> int:
        return sum(o.requests for o in self._obs)

    @property
    def glitched(self) -> int:
        return sum(o.glitched for o in self._obs)

    @property
    def observed_p_late(self) -> float:
        """Point estimate of the per-sweep overrun rate."""
        total = self.disk_rounds
        return self.late_disk_rounds / total if total else 0.0

    def p_late_interval(self, confidence: float = 0.95
                        ) -> tuple[float, float]:
        """Wilson score interval for the overrun rate -- the tighten
        trigger reads the *lower* bound (confident violation only) and
        the relax trigger the *upper* (comfortable margin only)."""
        total = self.disk_rounds
        if total < 1:
            return (0.0, 1.0)
        return wilson_interval(self.late_disk_rounds, total,
                               confidence=confidence)

    @property
    def bound(self) -> float:
        """Disk-round-weighted mean of the stamped per-round bounds."""
        total = self.disk_rounds
        if not total:
            return 0.0
        return sum(o.bound * o.disk_rounds for o in self._obs) / total

    @property
    def glitch_rate(self) -> float:
        """Fraction of stream slots that glitched in the window."""
        total = self.requests
        return self.glitched / total if total else 0.0

    def observed_p_error(self, m: int, g: int) -> float:
        """Stream-level ``P[> g glitches in m rounds]`` implied by the
        window's empirical slot glitch rate (exact binomial tail,
        eq. 3.3.5 with the observed rate in place of ``b_glitch``)."""
        rate = self.glitch_rate
        if rate <= 0.0:
            return 0.0
        return float(binomial_tail(m, min(rate, 1.0), g))

    @property
    def service_ratio(self) -> float:
        """Observed / nominal-model service seconds; the drift-scale
        estimator divides this by its calibrated steady-state value."""
        expected = sum(o.expected_service for o in self._obs)
        if expected <= 0.0:
            return 1.0
        return sum(o.observed_service for o in self._obs) / expected

    def latency_histogram(self) -> dict:
        """Summed sweep-service histogram over :data:`LATENCY_EDGES`
        (relative to the round budget), one overflow bucket last."""
        counts = [0] * (len(LATENCY_EDGES) + 1)
        for obs in self._obs:
            for index, count in enumerate(obs.latency_counts):
                if index < len(counts):
                    counts[index] += count
        return {"edges": list(LATENCY_EDGES), "counts": counts}

    # -- persistence ---------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serialisable form: ``from_dict`` round-trips exactly."""
        return {"maxlen": self.maxlen,
                "observations": [o.to_dict() for o in self._obs]}

    @classmethod
    def from_dict(cls, data: dict) -> "TelemetryWindow":
        window = cls(maxlen=int(data.get("maxlen", 64)))
        for entry in data.get("observations", ()):
            window.add(RoundObservation.from_dict(entry))
        return window

    def summary(self, m: int | None = None, g: int | None = None,
                confidence: float = 0.95) -> dict:
        """JSON view for ``/control`` and the CLI."""
        lower, upper = self.p_late_interval(confidence)
        out = {
            "rounds": self.rounds,
            "disk_rounds": self.disk_rounds,
            "late_disk_rounds": self.late_disk_rounds,
            "observed_p_late": self.observed_p_late,
            "p_late_lower": lower,
            "p_late_upper": upper,
            "bound": self.bound,
            "glitch_rate": self.glitch_rate,
            "service_ratio": self.service_ratio,
            "latency_histogram": self.latency_histogram(),
        }
        if m is not None and g is not None:
            out["observed_p_error"] = self.observed_p_error(m, g)
        return out

    def __repr__(self) -> str:
        return (f"TelemetryWindow(rounds={self.rounds}, "
                f"p_late={self.observed_p_late:.4f}, "
                f"bound={self.bound:.4f})")
