"""Synthetic MPEG VBR traces with GoP structure.

The statistical studies the paper cites ([Ros95] on MPEG traffic,
[KH95]'s GoP-based model) characterise compressed video as

- a periodic Group-of-Pictures frame-type pattern (e.g. ``IBBPBBPBBPBB``)
  with very different mean sizes per frame type (I >> P > B),
- lognormally distributed frame sizes within a type, and
- slowly varying scene-level activity modulating all sizes, well
  captured by a log-scale AR(1) process.

:class:`MpegGopModel` implements exactly that; its traces feed the
fragmentation step (§2.1) to produce realistic, *autocorrelated*
fragment-size samples for the trace-driven ablation (A6).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["MpegGopModel"]

_VALID_TYPES = frozenset("IPB")


@dataclass(frozen=True)
class MpegGopModel:
    """Generator of synthetic MPEG frame-size traces.

    Parameters
    ----------
    frame_rate:
        Display frames per second.
    gop_pattern:
        Frame-type string starting with ``I`` (e.g. ``"IBBPBBPBBPBB"``).
    mean_sizes:
        Mean frame size in bytes per type.
    cv:
        Coefficient of variation of the per-type lognormal sizes.
    scene_correlation:
        AR(1) coefficient of the log-scale scene activity (0 = none,
        close to 1 = long scenes).
    scene_sigma:
        Standard deviation of the stationary scene log-modulation.
    """

    frame_rate: float = 25.0
    gop_pattern: str = "IBBPBBPBBPBB"
    mean_sizes: dict[str, float] = field(default_factory=lambda: {
        "I": 40_000.0, "P": 16_000.0, "B": 8_000.0})
    cv: float = 0.30
    scene_correlation: float = 0.98
    scene_sigma: float = 0.25

    def __post_init__(self) -> None:
        if self.frame_rate <= 0:
            raise ConfigurationError(
                f"frame_rate must be positive, got {self.frame_rate!r}")
        if not self.gop_pattern or self.gop_pattern[0] != "I":
            raise ConfigurationError(
                "gop_pattern must be non-empty and start with 'I'")
        if not set(self.gop_pattern) <= _VALID_TYPES:
            raise ConfigurationError(
                f"gop_pattern may only contain I/P/B, "
                f"got {self.gop_pattern!r}")
        missing = set(self.gop_pattern) - set(self.mean_sizes)
        if missing:
            raise ConfigurationError(
                f"mean_sizes missing frame types: {sorted(missing)}")
        if any(v <= 0 for v in self.mean_sizes.values()):
            raise ConfigurationError("mean frame sizes must be positive")
        if not (0.0 < self.cv < 2.0):
            raise ConfigurationError(f"cv must be in (0, 2), got {self.cv!r}")
        if not (0.0 <= self.scene_correlation < 1.0):
            raise ConfigurationError(
                "scene_correlation must be in [0, 1), "
                f"got {self.scene_correlation!r}")
        if self.scene_sigma < 0.0:
            raise ConfigurationError(
                f"scene_sigma must be >= 0, got {self.scene_sigma!r}")

    # ------------------------------------------------------------------
    def mean_bandwidth(self) -> float:
        """Long-run display bandwidth in bytes/second.

        Scene modulation has mean ``exp(sigma^2/2)`` in linear scale (a
        lognormal factor), which is included.
        """
        pattern_mean = float(np.mean(
            [self.mean_sizes[c] for c in self.gop_pattern]))
        scene_factor = math.exp(0.5 * self.scene_sigma ** 2)
        return pattern_mean * self.frame_rate * scene_factor

    def generate_frames(self, rng: np.random.Generator,
                        n_frames: int) -> np.ndarray:
        """A frame-size trace of ``n_frames`` frames (bytes)."""
        if n_frames < 1:
            raise ConfigurationError(
                f"n_frames must be >= 1, got {n_frames!r}")
        pattern = np.array(list(self.gop_pattern))
        types = pattern[np.arange(n_frames) % len(pattern)]
        means = np.array([self.mean_sizes[t] for t in types])

        # Per-type lognormal with the requested cv.
        sigma2 = math.log1p(self.cv ** 2)
        sigma = math.sqrt(sigma2)
        mu = np.log(means) - 0.5 * sigma2
        frame_noise = rng.normal(0.0, sigma, size=n_frames)

        # AR(1) scene activity in log scale, stationary marginal
        # N(0, scene_sigma^2).
        if self.scene_sigma > 0.0 and self.scene_correlation > 0.0:
            phi = self.scene_correlation
            innovation_sd = self.scene_sigma * math.sqrt(1.0 - phi * phi)
            shocks = rng.normal(0.0, innovation_sd, size=n_frames)
            scene = np.empty(n_frames)
            scene[0] = rng.normal(0.0, self.scene_sigma)
            for i in range(1, n_frames):
                scene[i] = phi * scene[i - 1] + shocks[i]
        elif self.scene_sigma > 0.0:
            scene = rng.normal(0.0, self.scene_sigma, size=n_frames)
        else:
            scene = np.zeros(n_frames)

        return np.exp(mu + frame_noise + scene)

    def generate_seconds(self, rng: np.random.Generator,
                         seconds: float) -> np.ndarray:
        """A trace covering ``seconds`` of display time."""
        frames = int(round(seconds * self.frame_rate))
        return self.generate_frames(rng, max(frames, 1))
