"""Session arrival processes.

Server-level experiments need a stream of client arrivals.  Two models
cover the paper's application domains (news-on-demand, teleteaching):

- :class:`PoissonArrivals` -- memoryless arrivals at a constant rate.
- :class:`DiurnalArrivals` -- a 24-hour sinusoidal rate profile
  (evening peak for news-on-demand), realised as a per-round
  inhomogeneous Poisson process.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["PoissonArrivals", "DiurnalArrivals"]


class PoissonArrivals:
    """Homogeneous Poisson arrivals.

    ``rate`` is in arrivals per round; :meth:`draw` returns the number
    of sessions opening in one round.
    """

    def __init__(self, rate: float) -> None:
        if rate < 0:
            raise ConfigurationError(f"rate must be >= 0, got {rate!r}")
        self.rate = float(rate)

    def rate_at(self, round_index: int) -> float:
        """Arrival rate during the given round (constant here)."""
        return self.rate

    def draw(self, rng: np.random.Generator, round_index: int) -> int:
        """Number of arrivals in the given round."""
        return int(rng.poisson(self.rate_at(round_index)))

    def expected_arrivals(self, rounds: int) -> float:
        """Expected total arrivals over ``rounds`` rounds."""
        if rounds < 0:
            raise ConfigurationError(
                f"rounds must be >= 0, got {rounds!r}")
        return self.rate * rounds

    def __repr__(self) -> str:
        return f"PoissonArrivals(rate={self.rate:g})"


class DiurnalArrivals(PoissonArrivals):
    """Sinusoidal 24-hour arrival profile.

    ``rate_at(r) = base * (1 + amplitude * sin(2*pi*(r*t/86400 -
    phase)))``, clipped at zero.  ``phase`` in fractional days places
    the peak (0.25 puts it a quarter-day after midnight plus the sine's
    own quarter-period, i.e. evening for phase ~0.54).
    """

    def __init__(self, base_rate: float, amplitude: float,
                 round_length: float, phase: float = 0.0) -> None:
        super().__init__(base_rate)
        if not (0.0 <= amplitude <= 1.0):
            raise ConfigurationError(
                f"amplitude must be in [0, 1], got {amplitude!r}")
        if round_length <= 0:
            raise ConfigurationError(
                f"round_length must be positive, got {round_length!r}")
        self.amplitude = float(amplitude)
        self.round_length = float(round_length)
        self.phase = float(phase)

    def rate_at(self, round_index: int) -> float:
        day_fraction = (round_index * self.round_length) / 86_400.0
        factor = 1.0 + self.amplitude * math.sin(
            2.0 * math.pi * (day_fraction - self.phase))
        return max(self.rate * factor, 0.0)

    def expected_arrivals(self, rounds: int) -> float:
        if rounds < 0:
            raise ConfigurationError(
                f"rounds must be >= 0, got {rounds!r}")
        return float(sum(self.rate_at(r) for r in range(rounds)))

    def __repr__(self) -> str:
        return (f"DiurnalArrivals(base={self.rate:g}, "
                f"amplitude={self.amplitude:g}, "
                f"round={self.round_length:g}s)")
