"""Trace and catalog persistence.

Ingestion is expensive (§2.1: objects are parsed into constant-time
fragments once); these helpers save and reload fragment traces and
whole catalogs as portable CSV so experiments can share workloads.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.errors import ConfigurationError
from repro.workload.catalog import Catalog, VideoObject

__all__ = [
    "save_trace",
    "load_trace",
    "save_catalog",
    "load_catalog",
]


def save_trace(path: Path | str, sizes) -> Path:
    """Write a fragment/frame-size trace (bytes) as one-column CSV."""
    data = np.asarray(sizes, dtype=float).ravel()
    if data.size == 0:
        raise ConfigurationError("trace is empty")
    if np.any(data <= 0):
        raise ConfigurationError("trace sizes must be positive")
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["size_bytes"])
        writer.writerows([f"{v:.6f}"] for v in data)
    return path


def load_trace(path: Path | str) -> np.ndarray:
    """Read a trace written by :func:`save_trace`."""
    path = Path(path)
    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != ["size_bytes"]:
            raise ConfigurationError(
                f"{path} is not a trace file (header {header!r})")
        try:
            values = [float(row[0]) for row in reader if row]
        except (ValueError, IndexError) as exc:
            raise ConfigurationError(
                f"{path} contains malformed rows") from exc
    if not values:
        raise ConfigurationError(f"{path} holds no samples")
    data = np.asarray(values)
    if np.any(data <= 0):
        raise ConfigurationError(f"{path} contains non-positive sizes")
    return data


def save_catalog(path: Path | str, catalog: Catalog) -> Path:
    """Write a catalog as long-form CSV (object, fragment index, size)."""
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["object", "fragment", "size_bytes"])
        for obj in catalog.objects:
            for idx, size in enumerate(obj.fragment_sizes):
                writer.writerow([obj.name, idx, f"{float(size):.6f}"])
    return path


def load_catalog(path: Path | str, zipf_exponent: float = 0.8) -> Catalog:
    """Read a catalog written by :func:`save_catalog`.

    Fragment rows may appear in any order; they are reassembled by
    index per object.  Objects keep file order of first appearance.
    """
    path = Path(path)
    per_object: dict[str, dict[int, float]] = {}
    order: list[str] = []
    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != ["object", "fragment", "size_bytes"]:
            raise ConfigurationError(
                f"{path} is not a catalog file (header {header!r})")
        for row in reader:
            if not row:
                continue
            try:
                name, idx, size = row[0], int(row[1]), float(row[2])
            except (ValueError, IndexError) as exc:
                raise ConfigurationError(
                    f"{path} contains malformed rows") from exc
            if name not in per_object:
                per_object[name] = {}
                order.append(name)
            if idx in per_object[name]:
                raise ConfigurationError(
                    f"duplicate fragment {idx} of object {name!r}")
            per_object[name][idx] = size
    if not per_object:
        raise ConfigurationError(f"{path} holds no objects")

    objects = []
    for name in order:
        fragments = per_object[name]
        expected = set(range(len(fragments)))
        if set(fragments) != expected:
            raise ConfigurationError(
                f"object {name!r} has gaps in its fragment indices")
        sizes = np.array([fragments[i] for i in range(len(fragments))])
        objects.append(VideoObject(name=name, fragment_sizes=sizes))
    return Catalog(objects, zipf_exponent=zipf_exponent)
