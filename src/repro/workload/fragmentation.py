"""Constant-display-time fragmentation (§2.1).

"All data fragments stored by the server have the same display time
... As a consequence, fragments vary in size."  Given a frame-size trace
and a round length, the fragmenter groups the frames displayed within
each round into one fragment whose size is the sum of its frames --
exactly the parsing step the paper describes for object ingestion.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["fragment_trace"]


def fragment_trace(frame_sizes, frame_rate: float,
                   round_length: float) -> np.ndarray:
    """Fragment a frame-size trace into constant-display-time fragments.

    Parameters
    ----------
    frame_sizes:
        Per-frame sizes in bytes, display order.
    frame_rate:
        Frames per second of the object.
    round_length:
        The server's round length ``t`` in seconds (= fragment display
        time).

    Returns
    -------
    numpy.ndarray
        Fragment sizes in bytes.  A trailing partial window becomes a
        final (smaller) fragment, as a real object's tail would.
    """
    sizes = np.asarray(frame_sizes, dtype=float).ravel()
    if sizes.size == 0:
        raise ConfigurationError("frame trace is empty")
    if np.any(sizes <= 0):
        raise ConfigurationError("frame sizes must be positive")
    if frame_rate <= 0:
        raise ConfigurationError(
            f"frame_rate must be positive, got {frame_rate!r}")
    if round_length <= 0:
        raise ConfigurationError(
            f"round_length must be positive, got {round_length!r}")
    frames_per_fragment = int(round(frame_rate * round_length))
    if frames_per_fragment < 1:
        raise ConfigurationError(
            "round shorter than one frame; increase round_length")
    n_full = sizes.size // frames_per_fragment
    fragments = []
    if n_full:
        fragments.append(
            sizes[:n_full * frames_per_fragment]
            .reshape(n_full, frames_per_fragment).sum(axis=1))
    tail = sizes[n_full * frames_per_fragment:]
    if tail.size:
        fragments.append(np.array([tail.sum()]))
    return np.concatenate(fragments)
