"""Object catalog and session workload for full-server experiments.

A :class:`Catalog` holds :class:`VideoObject` entries (name + fragment
sizes) and draws display sessions with Zipf-like popularity -- the
news-on-demand access pattern of the paper's motivating applications.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.workload.fragmentation import fragment_trace
from repro.workload.vbr import MpegGopModel

__all__ = ["VideoObject", "Catalog"]


@dataclass(frozen=True)
class VideoObject:
    """One ingested continuous object."""

    name: str
    fragment_sizes: np.ndarray

    def __post_init__(self) -> None:
        sizes = np.asarray(self.fragment_sizes, dtype=float)
        if sizes.size == 0:
            raise ConfigurationError(
                f"object {self.name!r} has no fragments")
        if np.any(sizes <= 0):
            raise ConfigurationError(
                f"object {self.name!r} has non-positive fragment sizes")
        object.__setattr__(self, "fragment_sizes", sizes)

    @property
    def rounds(self) -> int:
        """Playback length in rounds."""
        return int(self.fragment_sizes.size)

    @property
    def total_bytes(self) -> float:
        """Total stored size in bytes."""
        return float(np.sum(self.fragment_sizes))

    def mean_fragment(self) -> float:
        """Mean fragment size in bytes."""
        return float(np.mean(self.fragment_sizes))


class Catalog:
    """A set of objects plus a Zipf popularity law over them."""

    def __init__(self, objects: list[VideoObject],
                 zipf_exponent: float = 0.8) -> None:
        if not objects:
            raise ConfigurationError("catalog must hold >= 1 object")
        names = [obj.name for obj in objects]
        if len(set(names)) != len(names):
            raise ConfigurationError("object names must be unique")
        if zipf_exponent < 0:
            raise ConfigurationError(
                f"zipf_exponent must be >= 0, got {zipf_exponent!r}")
        self.objects = list(objects)
        ranks = np.arange(1, len(objects) + 1, dtype=float)
        weights = ranks ** (-zipf_exponent)
        self._probs = weights / np.sum(weights)

    # ------------------------------------------------------------------
    @classmethod
    def synthetic(cls, rng: np.random.Generator, n_objects: int = 10,
                  duration_s: float = 120.0, round_length: float = 1.0,
                  model: MpegGopModel | None = None,
                  zipf_exponent: float = 0.8) -> "Catalog":
        """Generate a catalog of VBR objects from the MPEG GoP model."""
        if n_objects < 1:
            raise ConfigurationError(
                f"n_objects must be >= 1, got {n_objects!r}")
        model = model or MpegGopModel()
        objects = []
        for i in range(n_objects):
            frames = model.generate_seconds(rng, duration_s)
            fragments = fragment_trace(frames, model.frame_rate,
                                       round_length)
            objects.append(VideoObject(name=f"video-{i:03d}",
                                       fragment_sizes=fragments))
        return cls(objects, zipf_exponent=zipf_exponent)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.objects)

    def get(self, name: str) -> VideoObject:
        """Object by name."""
        for obj in self.objects:
            if obj.name == name:
                return obj
        raise ConfigurationError(f"unknown object {name!r}")

    def pick(self, rng: np.random.Generator) -> VideoObject:
        """Draw an object according to the popularity law."""
        idx = int(rng.choice(len(self.objects), p=self._probs))
        return self.objects[idx]

    def all_fragment_sizes(self) -> np.ndarray:
        """Pooled fragment sizes of the whole catalog (feeds the
        empirical size law and the admission model's workload
        statistics, §2.3)."""
        return np.concatenate([obj.fragment_sizes for obj in self.objects])

    def __repr__(self) -> str:
        return (f"Catalog(objects={len(self.objects)}, "
                f"fragments={self.all_fragment_sizes().size})")
