"""Parametric fragment-size laws.

All sizes are in bytes.  The paper's Table 1 uses decimal KBytes
(1000 bytes): mean 200 KBytes, standard deviation 100 KBytes -- the
convention under which the eq. (4.1) worst-case numbers reproduce.
"""

from __future__ import annotations

from repro.distributions import (
    Distribution,
    Gamma,
    LogNormal,
    Pareto,
    Truncated,
)
from repro.errors import ConfigurationError

__all__ = [
    "paper_fragment_sizes",
    "gamma_fragment_sizes",
    "lognormal_fragment_sizes",
    "truncated_pareto_fragment_sizes",
]

#: Table 1: E[S] = 200 KBytes.
PAPER_MEAN_BYTES = 200_000.0

#: Table 1: Var[S] = (100 KBytes)^2.
PAPER_STD_BYTES = 100_000.0


def paper_fragment_sizes() -> Gamma:
    """The exact Table-1 law: Gamma with mean 200 KB and sd 100 KB
    (shape 4, i.e. moderately skewed -- cv = 0.5)."""
    return Gamma.from_mean_std(PAPER_MEAN_BYTES, PAPER_STD_BYTES)


def gamma_fragment_sizes(mean: float, std: float) -> Gamma:
    """Gamma fragment sizes with the given moments (bytes)."""
    return Gamma.from_mean_std(mean, std)


def lognormal_fragment_sizes(mean: float, std: float,
                             cap: float | None = None) -> Distribution:
    """Lognormal fragment sizes, optionally truncated at ``cap`` bytes.

    Untruncated lognormals have no MGF; pass ``cap`` (e.g. one round of
    the innermost-zone bandwidth) to obtain a law the Chernoff machinery
    accepts.
    """
    base = LogNormal.from_mean_std(mean, std)
    if cap is None:
        return base
    if cap <= mean:
        raise ConfigurationError(
            f"cap ({cap}) must exceed the mean ({mean})")
    return Truncated(base, low=0.0, high=cap)


def truncated_pareto_fragment_sizes(mean: float, std: float,
                                    cap: float) -> Truncated:
    """Pareto fragment sizes truncated at ``cap`` bytes.

    The Pareto is moment-matched *before* truncation; the truncated
    law's realised moments are therefore slightly below the targets (the
    ablation A1 reports both).  ``cap`` is physically the largest
    fragment a round can display (§2.2: display bandwidth below the
    innermost-zone rate).
    """
    if cap <= mean:
        raise ConfigurationError(
            f"cap ({cap}) must exceed the mean ({mean})")
    base = Pareto.from_mean_std(mean, std)
    return Truncated(base, low=base.xm, high=cap)
