"""Workload substrate: fragment-size laws and VBR video traces.

The paper's experiments draw fragment sizes from a Gamma law whose
moments come from "statistical studies of the size distribution of
compressed-video data fragments [Ros95, KH95]".  This package provides

- the parametric laws (:mod:`repro.workload.fragmentsize`), including
  the exact Table-1 parameter set,
- a synthetic MPEG GoP-structured VBR *trace* generator
  (:mod:`repro.workload.vbr`) in the spirit of those studies,
- constant-display-time fragmentation of traces (§2.1,
  :mod:`repro.workload.fragmentation`), and
- an object catalog / session generator (:mod:`repro.workload.catalog`)
  for full-server experiments.
"""

from repro.workload.fragmentsize import (
    paper_fragment_sizes,
    gamma_fragment_sizes,
    lognormal_fragment_sizes,
    truncated_pareto_fragment_sizes,
)
from repro.workload.vbr import MpegGopModel
from repro.workload.fragmentation import fragment_trace
from repro.workload.catalog import VideoObject, Catalog
from repro.workload.arrivals import PoissonArrivals, DiurnalArrivals
from repro.workload.trace_io import (
    save_trace,
    load_trace,
    save_catalog,
    load_catalog,
)

__all__ = [
    "paper_fragment_sizes",
    "gamma_fragment_sizes",
    "lognormal_fragment_sizes",
    "truncated_pareto_fragment_sizes",
    "MpegGopModel",
    "fragment_trace",
    "VideoObject",
    "Catalog",
    "PoissonArrivals",
    "DiurnalArrivals",
    "save_trace",
    "load_trace",
    "save_catalog",
    "load_catalog",
]
