"""Deterministic process-parallel execution of the Monte-Carlo hot paths.

The validation experiments (Figure 1, Table 2, the A-series ablations)
burn almost all of their wall-clock in :func:`simulate_rounds` and
:func:`simulate_stream_glitches`.  Both are embarrassingly parallel at
the right granularity -- independent blocks of rounds, independent
stream lifetimes -- so this module fans them out over a
:class:`~concurrent.futures.ProcessPoolExecutor`.

Two parallelism axes are exposed:

- **within one estimate** -- :func:`simulate_rounds_parallel` splits one
  long run into fixed chunks, :func:`simulate_stream_glitches_parallel`
  one task per stream lifetime;
- **across an estimate sweep** -- :func:`sweep_p_late_parallel` /
  :func:`sweep_p_error_parallel` flatten the per-``N`` points of a
  Figure-1 / Table-2 grid into one global task list, so a full sweep
  saturates all cores even when a single point has too few chunks to.

Transport
---------
Workers write their result arrays directly into
:mod:`multiprocessing.shared_memory` blocks sized up front from the
fixed decomposition and return only scalars, so nothing heavier than a
chunk index crosses the process boundary (``transport="shm"``, the
default).  ``transport="pickle"`` keeps the historical path in which
each worker pickles its :class:`RoundBatch` back through the pool --
retained for the A20 before/after measurement and as a fallback.
``transport="threads"`` (or ``REPRO_PARALLEL_TRANSPORT=threads``) runs
the same chunk workers on a :class:`~concurrent.futures.
ThreadPoolExecutor` instead -- results are shared by address space, so
there is neither fork nor pickling; a real win on free-threaded
builds and the only option where fork is unavailable.  All transports
produce bit-identical arrays; the shared-memory blocks are unlinked on
every exit path, including worker exceptions (see
``docs/PERFORMANCE.md``).

Determinism contract
--------------------
Results are **bit-identical for the same seed regardless of the worker
count and transport**.  The work decomposition is fixed up front
(``rounds`` split into ``chunk_rounds``-sized blocks; one task per
stream-glitch run) and each task draws from its own
:class:`numpy.random.SeedSequence` child stream
(``SeedSequence(seed).spawn(...)``), so the random numbers a task
consumes depend only on ``(seed, task index)`` -- never on which
process ran it or in what order tasks finished.  ``jobs=1`` executes
the identical decomposition in-process, which is what the equivalence
tests assert against.

The chunked round decomposition is *statistically* equivalent to one
long serial simulation but not bit-equal to it: the disk arm's
carry-over position resets at chunk boundaries (each chunk starts at
``initial_arm``), perturbing one repositioning seek per
``chunk_rounds`` rounds -- the same order of approximation the serial
path already accepts at its internal block boundaries (see
``docs/SIMULATOR.md``).
"""

from __future__ import annotations

import math
import os
import secrets
import time
from concurrent.futures import (
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.analysis.stats import wilson_interval
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer
from repro.disk.presets import DiskSpec
from repro.distributions import Distribution
from repro.errors import ConfigurationError, ParallelExecutionError, ReproError
from repro.server.simulation import (
    PErrorEstimate,
    PLateEstimate,
    RoundBatch,
    simulate_rounds,
)

__all__ = [
    "resolve_jobs",
    "resolve_worker_retries",
    "resolve_transport",
    "fan_out",
    "simulate_rounds_parallel",
    "estimate_p_late_parallel",
    "simulate_stream_glitches_parallel",
    "simulate_farm_disks_parallel",
    "estimate_p_error_parallel",
    "sweep_p_late_parallel",
    "sweep_p_error_parallel",
]

#: Rounds per fan-out task.  Small enough that typical workloads
#: (20k-100k rounds) split into tens of tasks and load-balance well,
#: large enough that per-task IPC overhead stays negligible.
DEFAULT_CHUNK_ROUNDS = 2048

#: Environment override for the all-cores default of :func:`resolve_jobs`
#: (used by the CI ``jobs=2`` matrix leg to exercise the pool on shared
#: runners without oversubscribing them).
JOBS_ENV = "REPRO_JOBS"

_TRANSPORTS = ("shm", "pickle", "threads")

#: Environment override for the default result transport.  An explicit
#: ``transport=`` argument always wins; ``REPRO_PARALLEL_TRANSPORT``
#: retargets every ``transport=None`` fan-out in the process --
#: ``threads`` runs chunk workers on a :class:`ThreadPoolExecutor`
#: instead of a process pool (a real win on free-threaded builds and a
#: zero-fork fallback), with the same fail-fast and bit-identical
#: determinism contracts.
TRANSPORT_ENV = "REPRO_PARALLEL_TRANSPORT"

#: Environment override for how often :func:`fan_out` replaces a broken
#: worker pool before giving up (``0`` restores strict fail-fast).
WORKER_RETRIES_ENV = "REPRO_WORKER_RETRIES"

#: Pool replacements tolerated per fan-out: one transient worker death
#: (OOM kill, node preemption) is absorbed; a second failure surfaces.
DEFAULT_WORKER_RETRIES = 1

#: Prefix of every shared-memory block this module creates; tests sweep
#: ``/dev/shm`` for it to prove nothing leaks.
SHM_PREFIX = "repro_mc"


def resolve_jobs(jobs: int | None) -> int:
    """Normalise a ``--jobs`` value: ``None``/``0`` means all cores.

    The all-cores default can be overridden with the ``REPRO_JOBS``
    environment variable (an explicit ``jobs`` argument always wins).
    """
    if jobs is None or jobs == 0:
        env = os.environ.get(JOBS_ENV)
        if env is not None and env.strip():
            try:
                value = int(env)
            except ValueError:
                raise ConfigurationError(
                    f"{JOBS_ENV} must be an integer >= 1, got {env!r}"
                ) from None
            if value < 1:
                raise ConfigurationError(
                    f"{JOBS_ENV} must be >= 1, got {env!r}")
            return value
        return os.cpu_count() or 1
    if not isinstance(jobs, int) or jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs!r}")
    return jobs


def _chunk_sizes(total: int, chunk: int) -> list[int]:
    """Split ``total`` rounds into fixed-size blocks (last one ragged).

    The decomposition depends only on ``(total, chunk)`` -- never on the
    worker count -- which is what makes results worker-invariant.
    """
    if chunk < 1:
        raise ConfigurationError(f"chunk_rounds must be >= 1, got {chunk!r}")
    full, rem = divmod(total, chunk)
    return [chunk] * full + ([rem] if rem else [])


def resolve_transport(transport: str | None = None) -> str:
    """Normalise a result-transport choice.

    An explicit ``transport`` argument wins; ``None`` falls back to the
    ``REPRO_PARALLEL_TRANSPORT`` environment variable and then to the
    ``"shm"`` default.  Valid values: ``"shm"`` (process pool, results
    written into shared memory), ``"pickle"`` (process pool, results
    pickled back), ``"threads"`` (thread pool, results shared by
    address space).  All three are bit-identical for the same seed.
    """
    if transport is None:
        env = os.environ.get(TRANSPORT_ENV)
        transport = env.strip() if env is not None and env.strip() else "shm"
    if transport not in _TRANSPORTS:
        raise ConfigurationError(
            f"transport must be one of {_TRANSPORTS}, got {transport!r}")
    return transport


# ----------------------------------------------------------------------
# Fail-fast fan-out (with bounded recovery from worker death)
# ----------------------------------------------------------------------

def resolve_worker_retries() -> int:
    """Pool replacements tolerated per fan-out: ``REPRO_WORKER_RETRIES``
    (an integer >= 0) or :data:`DEFAULT_WORKER_RETRIES`."""
    raw = os.environ.get(WORKER_RETRIES_ENV)
    if raw is None or not raw.strip():
        return DEFAULT_WORKER_RETRIES
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{WORKER_RETRIES_ENV} must be an integer >= 0, got {raw!r}"
        ) from None
    if value < 0:
        raise ConfigurationError(
            f"{WORKER_RETRIES_ENV} must be >= 0, got {raw!r}")
    return value


def _timed_call(payload):
    """Pool entry point wrapping every worker: returns ``(pid, seconds,
    result)`` so the parent can account per-task runtime and worker
    spread without the task payloads changing shape.  Module-level so
    it pickles; the timing never feeds back into the computation, so
    the determinism contract is untouched.
    """
    worker, task = payload
    start = time.perf_counter()
    result = worker(task)
    return os.getpid(), time.perf_counter() - start, result


def _record_task(index: int, pid: int, seconds: float) -> None:
    """Account one finished task in the process registry and trace."""
    registry = get_registry()
    registry.counter("parallel_tasks_total").inc()
    registry.histogram("parallel_task_seconds").observe(seconds)
    tracer = get_tracer()
    if tracer.enabled:
        tracer.emit("worker_task", phase="done", task=index, pid=pid,
                    seconds=seconds)


def _pool_pass(worker, tasks, pending, results, done, jobs: int,
               executor_cls=ProcessPoolExecutor) -> None:
    """One pool's attempt at the ``pending`` task indices.

    Fills ``results``/``done`` in place as futures land, so a pool that
    breaks mid-pass leaves completed work recorded and only the
    unfinished indices are retried.  ``executor_cls`` selects the pool
    flavour: the ``threads`` transport substitutes a
    :class:`ThreadPoolExecutor` (which cannot raise
    :class:`BrokenProcessPool`, so its pass is always final).
    """
    workers = min(jobs, len(pending))
    with executor_cls(max_workers=workers) as pool:
        indexed = {pool.submit(_timed_call, (worker, tasks[i])): i
                   for i in pending}
        for future in as_completed(indexed):
            index = indexed[future]
            try:
                pid, seconds, results[index] = future.result()
            except (ReproError, BrokenProcessPool):
                for other in indexed:
                    other.cancel()
                raise
            except Exception as exc:
                for other in indexed:
                    other.cancel()
                raise ParallelExecutionError(
                    f"parallel worker failed on task {index + 1} of "
                    f"{len(tasks)}: {type(exc).__name__}: {exc}") from exc
            done[index] = True
            _record_task(index, pid, seconds)


def fan_out(worker, tasks, jobs: int,
            transport: str | None = None) -> list:
    """Run ``worker`` over ``tasks``, in-process or on a pool.

    Results come back in task order either way, so callers can
    concatenate without bookkeeping.  A worker *exception* fails fast:
    the first one cancels every outstanding task, the pool is shut down,
    and a :class:`ParallelExecutionError` naming the failed task
    surfaces (library :class:`ReproError` subclasses -- validation
    errors raised inside a worker -- propagate unchanged).

    ``transport`` picks the pool flavour (``None`` defers to
    :func:`resolve_transport`, i.e. ``REPRO_PARALLEL_TRANSPORT``):
    ``"shm"``/``"pickle"`` fan out over worker processes, ``"threads"``
    over a thread pool in this process -- no fork, no pickling, same
    fail-fast semantics and, because every task carries its own
    ``SeedSequence`` substream, bit-identical results.

    Worker *death* (SIGKILL by the OOM killer, node preemption -- the
    pool raises :class:`BrokenProcessPool`) is transient, not a bug in
    the task: the broken pool is replaced and only the unfinished tasks
    are resubmitted, up to :func:`resolve_worker_retries` times.  Every
    task carries its own ``SeedSequence`` substream, so a rerun draws
    exactly the random numbers the killed attempt would have -- results
    stay bit-identical to an undisturbed run (asserted against
    ``jobs=1`` in the test suite).  After the retry budget a
    :class:`ParallelExecutionError` surfaces.  (Threads cannot die this
    way; their single pass is always final.)
    """
    tasks = list(tasks)
    registry = get_registry()
    registry.counter("parallel_fanouts_total").inc()
    tracer = get_tracer()
    if tracer.enabled:
        tracer.emit("worker_task", phase="submit", task=len(tasks),
                    jobs=jobs)
    if jobs == 1 or len(tasks) <= 1:
        results = []
        pid = os.getpid()
        for index, task in enumerate(tasks):
            start = time.perf_counter()
            results.append(worker(task))
            _record_task(index, pid, time.perf_counter() - start)
        return results
    executor_cls = (ThreadPoolExecutor
                    if resolve_transport(transport) == "threads"
                    else ProcessPoolExecutor)
    retries = resolve_worker_retries()
    results: list = [None] * len(tasks)
    done = [False] * len(tasks)
    failures = 0
    while True:
        pending = [i for i, finished in enumerate(done) if not finished]
        try:
            _pool_pass(worker, tasks, pending, results, done, jobs,
                       executor_cls)
            return results
        except BrokenProcessPool as exc:
            failures += 1
            registry.counter("parallel_pool_failures_total").inc()
            if failures > retries:
                remaining = sum(1 for finished in done if not finished)
                raise ParallelExecutionError(
                    f"worker pool broke {failures} time(s) with "
                    f"{remaining} of {len(tasks)} task(s) unfinished; "
                    f"retry budget exhausted "
                    f"({WORKER_RETRIES_ENV}={retries})") from exc


# ----------------------------------------------------------------------
# Shared-memory plumbing
# ----------------------------------------------------------------------

def _create_block(nbytes: int) -> shared_memory.SharedMemory:
    """Create a named block; the name carries :data:`SHM_PREFIX` so leak
    checks can find strays."""
    name = f"{SHM_PREFIX}_{os.getpid()}_{secrets.token_hex(4)}"
    size = max(1, int(nbytes))
    registry = get_registry()
    registry.counter("parallel_shm_blocks_total").inc()
    registry.counter("parallel_shm_bytes_total").inc(size)
    return shared_memory.SharedMemory(name=name, create=True, size=size)


def _attach_block(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing block without adopting ownership.

    Python < 3.13 registers *attaching* processes with the resource
    tracker too; with several workers attaching the same block the
    set-based tracker cache then underflows on unregister (KeyError
    noise) or, worse, tears blocks down while the creating parent still
    needs them.  ``track=False`` opts out where available; otherwise the
    registration call is suppressed for the duration of the attach (the
    parent owns every block and unregisters via ``unlink``).  Workers
    are single-threaded, so the brief patch cannot race.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no ``track`` parameter
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def _close_quietly(shm: shared_memory.SharedMemory) -> None:
    """Close a block, tolerating live exported views on error paths
    (the mapping dies with the process; the owner still unlinks)."""
    try:
        shm.close()
    except BufferError:  # pragma: no cover - only on exception paths
        pass


def _destroy_block(shm: shared_memory.SharedMemory) -> None:
    """Close and unlink; tolerates double-unlink on error paths."""
    _close_quietly(shm)
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - already gone
        pass


@dataclass(frozen=True)
class _BatchLayout:
    """Names and shape of the shared output arrays of one round fan-out.

    The four blocks hold the :class:`RoundBatch` fields for the *whole*
    run; worker ``i`` writes rows ``[offset_i, offset_i + block_i)``.
    Sized up front from the fixed chunk decomposition, so no worker ever
    resizes or reallocates.
    """

    rounds: int
    n: int
    service: str
    seeks: str
    first: str
    glitches: str

    def views(self, blocks) -> tuple[np.ndarray, ...]:
        """Array views over attached blocks (same order as fields)."""
        service = np.ndarray((self.rounds,), dtype=np.float64,
                             buffer=blocks[0].buf)
        seeks = np.ndarray((self.rounds,), dtype=np.float64,
                           buffer=blocks[1].buf)
        first = np.ndarray((self.rounds,), dtype=np.float64,
                           buffer=blocks[2].buf)
        glitches = np.ndarray((self.rounds, self.n), dtype=np.bool_,
                              buffer=blocks[3].buf)
        return service, seeks, first, glitches


def _create_batch_blocks(rounds: int, n: int):
    """Allocate the four output blocks; returns (layout, blocks)."""
    blocks = (_create_block(rounds * 8), _create_block(rounds * 8),
              _create_block(rounds * 8), _create_block(rounds * n))
    layout = _BatchLayout(rounds=rounds, n=n, service=blocks[0].name,
                          seeks=blocks[1].name, first=blocks[2].name,
                          glitches=blocks[3].name)
    return layout, blocks


# ----------------------------------------------------------------------
# Worker entry points (module-level so they pickle)
# ----------------------------------------------------------------------

def _run_round_chunk(task) -> RoundBatch:
    """Pickle-transport worker: simulate one block, return the batch."""
    (spec, size_dist, n, t, rounds, seed_seq, initial_arm, placement,
     recal_prob, recal_duration) = task
    rng = np.random.default_rng(seed_seq)
    return simulate_rounds(spec, size_dist, n, t, rounds, rng,
                           initial_arm=initial_arm, placement=placement,
                           recal_prob=recal_prob,
                           recal_duration=recal_duration)


def _run_round_chunk_shm(task) -> int:
    """Shared-memory worker: simulate one block, write it in place.

    Returns only the chunk offset -- the arrays never cross the process
    boundary.
    """
    (layout, offset, spec, size_dist, n, t, rounds, seed_seq,
     initial_arm, placement, recal_prob, recal_duration) = task
    rng = np.random.default_rng(seed_seq)
    batch = simulate_rounds(spec, size_dist, n, t, rounds, rng,
                            initial_arm=initial_arm, placement=placement,
                            recal_prob=recal_prob,
                            recal_duration=recal_duration)
    blocks = tuple(_attach_block(name) for name in
                   (layout.service, layout.seeks, layout.first,
                    layout.glitches))
    try:
        arrays = layout.views(blocks)
        stop = offset + rounds
        arrays[0][offset:stop] = batch.service_times
        arrays[1][offset:stop] = batch.seek_times
        arrays[2][offset:stop] = batch.first_seek_times
        arrays[3][offset:stop] = batch.glitches
        del arrays  # views must die before close
    finally:
        for shm in blocks:
            _close_quietly(shm)
    return offset


def _run_glitch_run(task) -> np.ndarray:
    """Pickle-transport worker: one stream lifetime of ``m`` rounds;
    returns per-stream glitch counts, shape ``(n,)``."""
    spec, size_dist, n, t, m, seed_seq = task
    rng = np.random.default_rng(seed_seq)
    batch = simulate_rounds(spec, size_dist, n, t, m, rng)
    return np.sum(batch.glitches, axis=0)


def _run_glitch_run_shm(task) -> int:
    """Shared-memory worker: write one run's glitch-count row in place."""
    block_name, runs, run_idx, spec, size_dist, n, t, m, seed_seq = task
    row = _run_glitch_run((spec, size_dist, n, t, m, seed_seq))
    shm = _attach_block(block_name)
    try:
        counts = np.ndarray((runs, n), dtype=np.int64, buffer=shm.buf)
        counts[run_idx] = row
        del counts  # view must die before close
    finally:
        _close_quietly(shm)
    return run_idx


def _run_sweep_late_chunk(task) -> tuple[int, int]:
    """Sweep worker: one chunk of one grid point; returns scalars only
    (point index, late-round count)."""
    point, spec, size_dist, n, t, rounds, seed_seq = task
    rng = np.random.default_rng(seed_seq)
    batch = simulate_rounds(spec, size_dist, n, t, rounds, rng)
    return point, int(np.sum(batch.service_times > t))


def _run_sweep_glitch_run(task) -> tuple[int, np.ndarray]:
    """Sweep worker: one stream lifetime of one grid point."""
    point, spec, size_dist, n, t, m, seed_seq = task
    return point, _run_glitch_run((spec, size_dist, n, t, m, seed_seq))


# ----------------------------------------------------------------------
# Public fan-outs
# ----------------------------------------------------------------------

def simulate_rounds_parallel(spec: DiskSpec, size_dist: Distribution,
                             n: int, t: float, rounds: int, seed: int = 0,
                             jobs: int | None = None,
                             chunk_rounds: int = DEFAULT_CHUNK_ROUNDS,
                             initial_arm: int = 0, placement=None,
                             recal_prob: float = 0.0,
                             recal_duration: float = 0.0,
                             transport: str | None = None) -> RoundBatch:
    """Chunk-parallel :func:`repro.server.simulation.simulate_rounds`.

    ``rounds`` is split into ``chunk_rounds`` blocks; block ``i`` draws
    from ``SeedSequence(seed).spawn(...)[i]`` and starts its sweep at
    ``initial_arm``.  Bit-identical output for any ``jobs`` value and
    every ``transport`` (``"shm"`` writes results into pre-sized
    shared-memory blocks and returns scalars; ``"pickle"`` ships each
    chunk's :class:`RoundBatch` back through the pool; ``"threads"``
    runs the chunks on a thread pool in this process; ``None`` defers
    to ``REPRO_PARALLEL_TRANSPORT``).
    """
    jobs = resolve_jobs(jobs)
    transport = resolve_transport(transport)
    sizes = _chunk_sizes(rounds, chunk_rounds)
    if not sizes:
        raise ConfigurationError(f"rounds must be >= 1, got {rounds!r}")
    children = np.random.SeedSequence(seed).spawn(len(sizes))

    if transport in ("pickle", "threads") or jobs == 1 or len(sizes) <= 1:
        tasks = [(spec, size_dist, n, t, block, child, initial_arm,
                  placement, recal_prob, recal_duration)
                 for block, child in zip(sizes, children)]
        return _concat_batches(
            fan_out(_run_round_chunk, tasks, jobs, transport=transport))

    layout, blocks = _create_batch_blocks(rounds, n)
    try:
        offsets = [0]
        for block in sizes[:-1]:
            offsets.append(offsets[-1] + block)
        tasks = [(layout, offset, spec, size_dist, n, t, block, child,
                  initial_arm, placement, recal_prob, recal_duration)
                 for offset, block, child in zip(offsets, sizes, children)]
        fan_out(_run_round_chunk_shm, tasks, jobs, transport="shm")
        service, seeks, first, glitches = layout.views(blocks)
        batch = RoundBatch(service_times=service.copy(),
                           glitches=glitches.copy(),
                           seek_times=seeks.copy(),
                           first_seek_times=first.copy())
        del service, seeks, first, glitches
        return batch
    finally:
        for shm in blocks:
            _destroy_block(shm)


def _concat_batches(batches: list[RoundBatch]) -> RoundBatch:
    return RoundBatch(
        service_times=np.concatenate(
            [b.service_times for b in batches]),
        glitches=np.concatenate([b.glitches for b in batches], axis=0),
        seek_times=np.concatenate([b.seek_times for b in batches]),
        first_seek_times=np.concatenate(
            [b.first_seek_times for b in batches]))


def estimate_p_late_parallel(spec: DiskSpec, size_dist: Distribution,
                             n: int, t: float, rounds: int = 20_000,
                             seed: int = 0, jobs: int | None = None,
                             chunk_rounds: int = DEFAULT_CHUNK_ROUNDS,
                             transport: str | None = None
                             ) -> PLateEstimate:
    """Monte-Carlo ``p_late`` estimate over the chunk-parallel path."""
    batch = simulate_rounds_parallel(spec, size_dist, n, t, rounds,
                                     seed=seed, jobs=jobs,
                                     chunk_rounds=chunk_rounds,
                                     transport=transport)
    late = int(np.sum(batch.service_times > t))
    low, high = wilson_interval(late, rounds)
    return PLateEstimate(n=n, t=t, rounds=rounds, late_rounds=late,
                         p_late=late / rounds, ci_low=low, ci_high=high)


def simulate_stream_glitches_parallel(spec: DiskSpec,
                                      size_dist: Distribution, n: int,
                                      t: float, m: int, runs: int,
                                      seed: int = 0,
                                      jobs: int | None = None,
                                      transport: str | None = None
                                      ) -> np.ndarray:
    """Parallel per-stream glitch counts, shape ``(runs, n)``.

    Uses the same per-run ``SeedSequence.spawn`` scheme as the serial
    :func:`repro.server.simulation.simulate_stream_glitches`, so the
    result is bit-identical to the serial function *and* invariant to
    ``jobs`` and ``transport``.
    """
    if runs < 1:
        raise ConfigurationError(f"runs must be >= 1, got {runs!r}")
    jobs = resolve_jobs(jobs)
    transport = resolve_transport(transport)
    children = np.random.SeedSequence(seed).spawn(runs)

    if transport in ("pickle", "threads") or jobs == 1 or runs <= 1:
        tasks = [(spec, size_dist, n, t, m, child) for child in children]
        rows = fan_out(_run_glitch_run, tasks, jobs, transport=transport)
        return np.stack(rows).astype(np.int64)

    block = _create_block(runs * n * 8)
    try:
        tasks = [(block.name, runs, run_idx, spec, size_dist, n, t, m,
                  child) for run_idx, child in enumerate(children)]
        fan_out(_run_glitch_run_shm, tasks, jobs, transport="shm")
        counts = np.ndarray((runs, n), dtype=np.int64, buffer=block.buf)
        result = counts.copy()
        del counts
        return result
    finally:
        _destroy_block(block)


def simulate_farm_disks_parallel(tasks, jobs: int | None = None,
                                 transport: str | None = None) -> list:
    """Fan one :func:`repro.server.simulation.simulate_farm_rounds`
    task per disk out over the worker pool.

    Each task already carries its own ``SeedSequence`` child, so the
    result is bit-identical to the serial loop for every worker count
    and every transport.  The per-phase tuples are tiny, so ``"shm"``
    degrades to plain pickling (no shared-memory staging to amortise);
    ``"threads"`` keeps the fan-out in this process.
    """
    from repro.server.simulation import _simulate_disk_phases
    return fan_out(_simulate_disk_phases, list(tasks), resolve_jobs(jobs),
                   transport=transport)


def estimate_p_error_parallel(spec: DiskSpec, size_dist: Distribution,
                              n: int, t: float, m: int, g: int,
                              runs: int = 100, seed: int = 0,
                              jobs: int | None = None,
                              transport: str | None = None
                              ) -> PErrorEstimate:
    """Monte-Carlo ``p_error`` estimate over the run-parallel path."""
    if not (0 <= g <= m):
        raise ConfigurationError(f"g must be in [0, m], got {g!r}")
    if not (t > 0.0 and math.isfinite(t)):
        raise ConfigurationError(f"round length must be positive, got {t!r}")
    counts = simulate_stream_glitches_parallel(spec, size_dist, n, t, m,
                                               runs, seed=seed, jobs=jobs,
                                               transport=transport)
    streams = counts.size
    bad = int(np.sum(counts >= g))
    low, high = wilson_interval(bad, streams)
    return PErrorEstimate(n=n, t=t, m=m, g=g, streams=streams,
                          bad_streams=bad, p_error=bad / streams,
                          ci_low=low, ci_high=high,
                          mean_glitches=float(np.mean(counts)))


# ----------------------------------------------------------------------
# Sweep-axis fan-outs (second parallelism axis)
# ----------------------------------------------------------------------

def _point_seed_sequences(ns, seed, seeds):
    """Per-point SeedSequence roots for a sweep.

    With explicit ``seeds`` every point ``i`` draws exactly as a
    standalone estimate with ``seed=seeds[i]`` would -- this is how the
    benches keep their historical per-point numbers.  Without ``seeds``
    the points draw from ``SeedSequence(seed).spawn(len(ns))``
    substreams, deterministic in ``(seed, grid)`` alone.
    """
    if seeds is None:
        return np.random.SeedSequence(seed).spawn(len(ns))
    if len(seeds) != len(ns):
        raise ConfigurationError(
            f"seeds must match the grid: {len(seeds)} seeds for "
            f"{len(ns)} points")
    return [s if isinstance(s, np.random.SeedSequence)
            else np.random.SeedSequence(s) for s in seeds]


def _validated_grid(ns) -> list[int]:
    ns = [int(n) for n in ns]
    if not ns:
        raise ConfigurationError("sweep grid must not be empty")
    if any(n < 1 for n in ns):
        raise ConfigurationError(f"every n must be >= 1, got {ns!r}")
    return ns


def sweep_p_late_parallel(spec: DiskSpec, size_dist: Distribution, ns,
                          t: float, rounds: int = 20_000, *,
                          seed: int = 0, seeds=None,
                          jobs: int | None = None,
                          chunk_rounds: int = DEFAULT_CHUNK_ROUNDS
                          ) -> list[PLateEstimate]:
    """``estimate_p_late`` over a grid of ``N`` values, one shared pool.

    All ``(point, chunk)`` tasks of the whole grid are flattened into a
    single fan-out, so a Figure-1 sweep saturates every core even though
    each individual point only has ``rounds / chunk_rounds`` chunks.
    Point ``i`` is bit-identical to
    ``estimate_p_late_parallel(..., seed=seeds[i])`` for any ``jobs``;
    workers return only ``(point, late_count)`` scalars.
    """
    ns = _validated_grid(ns)
    jobs = resolve_jobs(jobs)
    roots = _point_seed_sequences(ns, seed, seeds)
    sizes = _chunk_sizes(rounds, chunk_rounds)
    if not sizes:
        raise ConfigurationError(f"rounds must be >= 1, got {rounds!r}")
    tasks = []
    for point, (n, root) in enumerate(zip(ns, roots)):
        for block, child in zip(sizes, root.spawn(len(sizes))):
            tasks.append((point, spec, size_dist, n, t, block, child))
    late = [0] * len(ns)
    for point, count in fan_out(_run_sweep_late_chunk, tasks, jobs):
        late[point] += count
    estimates = []
    for n, count in zip(ns, late):
        low, high = wilson_interval(count, rounds)
        estimates.append(PLateEstimate(
            n=n, t=t, rounds=rounds, late_rounds=count,
            p_late=count / rounds, ci_low=low, ci_high=high))
    return estimates


def sweep_p_error_parallel(spec: DiskSpec, size_dist: Distribution, ns,
                           t: float, m: int, g: int, runs: int = 100, *,
                           seed: int = 0, seeds=None,
                           jobs: int | None = None
                           ) -> list[PErrorEstimate]:
    """``estimate_p_error`` over a grid of ``N`` values, one shared pool.

    The ``(point, run)`` stream lifetimes of the whole grid feed one
    fan-out; point ``i`` matches ``estimate_p_error(..., seed=seeds[i])``
    exactly (same per-run ``SeedSequence.spawn`` scheme).  Workers
    return one ``(n,)`` count row per lifetime.
    """
    ns = _validated_grid(ns)
    if not (0 <= g <= m):
        raise ConfigurationError(f"g must be in [0, m], got {g!r}")
    if not (t > 0.0 and math.isfinite(t)):
        raise ConfigurationError(f"round length must be positive, got {t!r}")
    if runs < 1:
        raise ConfigurationError(f"runs must be >= 1, got {runs!r}")
    jobs = resolve_jobs(jobs)
    roots = _point_seed_sequences(ns, seed, seeds)
    tasks = []
    for point, (n, root) in enumerate(zip(ns, roots)):
        for child in root.spawn(runs):
            tasks.append((point, spec, size_dist, n, t, m, child))
    rows: list[list[np.ndarray]] = [[] for _ in ns]
    for point, row in fan_out(_run_sweep_glitch_run, tasks, jobs):
        rows[point].append(row)
    estimates = []
    for n, point_rows in zip(ns, rows):
        counts = np.stack(point_rows).astype(np.int64)
        streams = counts.size
        bad = int(np.sum(counts >= g))
        low, high = wilson_interval(bad, streams)
        estimates.append(PErrorEstimate(
            n=n, t=t, m=m, g=g, streams=streams, bad_streams=bad,
            p_error=bad / streams, ci_low=low, ci_high=high,
            mean_glitches=float(np.mean(counts))))
    return estimates
