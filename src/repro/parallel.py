"""Deterministic process-parallel execution of the Monte-Carlo hot paths.

The validation experiments (Figure 1, Table 2, the A-series ablations)
burn almost all of their wall-clock in :func:`simulate_rounds` and
:func:`simulate_stream_glitches`.  Both are embarrassingly parallel at
the right granularity -- independent blocks of rounds, independent
stream lifetimes -- so this module fans them out over a
:class:`~concurrent.futures.ProcessPoolExecutor`.

Determinism contract
--------------------
Results are **bit-identical for the same seed regardless of the worker
count**.  The work decomposition is fixed up front (``rounds`` split
into ``chunk_rounds``-sized blocks; one task per stream-glitch run) and
each task draws from its own :class:`numpy.random.SeedSequence` child
stream (``SeedSequence(seed).spawn(...)``), so the random numbers a
task consumes depend only on ``(seed, task index)`` -- never on which
process ran it or in what order tasks finished.  ``jobs=1`` executes
the identical decomposition in-process, which is what the equivalence
tests assert against.

The chunked round decomposition is *statistically* equivalent to one
long serial simulation but not bit-equal to it: the disk arm's
carry-over position resets at chunk boundaries (each chunk starts at
``initial_arm``), perturbing one repositioning seek per
``chunk_rounds`` rounds -- the same order of approximation the serial
path already accepts at its internal block boundaries (see
``docs/SIMULATOR.md``).
"""

from __future__ import annotations

import math
import os
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro.analysis.stats import wilson_interval
from repro.disk.presets import DiskSpec
from repro.distributions import Distribution
from repro.errors import ConfigurationError
from repro.server.simulation import (
    PErrorEstimate,
    PLateEstimate,
    RoundBatch,
    simulate_rounds,
)

__all__ = [
    "resolve_jobs",
    "simulate_rounds_parallel",
    "estimate_p_late_parallel",
    "simulate_stream_glitches_parallel",
    "estimate_p_error_parallel",
]

#: Rounds per fan-out task.  Small enough that typical workloads
#: (20k-100k rounds) split into tens of tasks and load-balance well,
#: large enough that per-task pickling/IPC overhead stays negligible.
DEFAULT_CHUNK_ROUNDS = 2048


def resolve_jobs(jobs: int | None) -> int:
    """Normalise a ``--jobs`` value: ``None``/``0`` means all cores."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if not isinstance(jobs, int) or jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs!r}")
    return jobs


def _chunk_sizes(total: int, chunk: int) -> list[int]:
    """Split ``total`` rounds into fixed-size blocks (last one ragged).

    The decomposition depends only on ``(total, chunk)`` -- never on the
    worker count -- which is what makes results worker-invariant.
    """
    if chunk < 1:
        raise ConfigurationError(f"chunk_rounds must be >= 1, got {chunk!r}")
    full, rem = divmod(total, chunk)
    return [chunk] * full + ([rem] if rem else [])


def _run_round_chunk(task) -> RoundBatch:
    """Worker entry point: simulate one independent block of rounds.

    Module-level (picklable) on purpose; receives a single tuple so
    ``ProcessPoolExecutor.map`` can stream tasks.
    """
    (spec, size_dist, n, t, rounds, seed_seq, initial_arm, placement,
     recal_prob, recal_duration) = task
    rng = np.random.default_rng(seed_seq)
    return simulate_rounds(spec, size_dist, n, t, rounds, rng,
                           initial_arm=initial_arm, placement=placement,
                           recal_prob=recal_prob,
                           recal_duration=recal_duration)


def _run_glitch_run(task) -> np.ndarray:
    """Worker entry point: one stream lifetime of ``m`` rounds; returns
    per-stream glitch counts, shape ``(n,)``."""
    spec, size_dist, n, t, m, seed_seq = task
    rng = np.random.default_rng(seed_seq)
    batch = simulate_rounds(spec, size_dist, n, t, m, rng)
    return np.sum(batch.glitches, axis=0)


def _fan_out(worker, tasks, jobs: int) -> list:
    """Run ``worker`` over ``tasks``, in-process or on a pool.

    Results come back in task order either way, so callers can
    concatenate without bookkeeping.
    """
    if jobs == 1 or len(tasks) <= 1:
        return [worker(task) for task in tasks]
    workers = min(jobs, len(tasks))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(worker, tasks))


def _concat_batches(batches: list[RoundBatch]) -> RoundBatch:
    return RoundBatch(
        service_times=np.concatenate(
            [b.service_times for b in batches]),
        glitches=np.concatenate([b.glitches for b in batches], axis=0),
        seek_times=np.concatenate([b.seek_times for b in batches]),
        first_seek_times=np.concatenate(
            [b.first_seek_times for b in batches]))


# ----------------------------------------------------------------------
# Public fan-outs
# ----------------------------------------------------------------------

def simulate_rounds_parallel(spec: DiskSpec, size_dist: Distribution,
                             n: int, t: float, rounds: int, seed: int = 0,
                             jobs: int | None = None,
                             chunk_rounds: int = DEFAULT_CHUNK_ROUNDS,
                             initial_arm: int = 0, placement=None,
                             recal_prob: float = 0.0,
                             recal_duration: float = 0.0) -> RoundBatch:
    """Chunk-parallel :func:`repro.server.simulation.simulate_rounds`.

    ``rounds`` is split into ``chunk_rounds`` blocks; block ``i`` draws
    from ``SeedSequence(seed).spawn(...)[i]`` and starts its sweep at
    ``initial_arm``.  Bit-identical output for any ``jobs`` value.
    """
    jobs = resolve_jobs(jobs)
    sizes = _chunk_sizes(rounds, chunk_rounds)
    if not sizes:
        raise ConfigurationError(f"rounds must be >= 1, got {rounds!r}")
    children = np.random.SeedSequence(seed).spawn(len(sizes))
    tasks = [(spec, size_dist, n, t, block, child, initial_arm,
              placement, recal_prob, recal_duration)
             for block, child in zip(sizes, children)]
    return _concat_batches(_fan_out(_run_round_chunk, tasks, jobs))


def estimate_p_late_parallel(spec: DiskSpec, size_dist: Distribution,
                             n: int, t: float, rounds: int = 20_000,
                             seed: int = 0, jobs: int | None = None,
                             chunk_rounds: int = DEFAULT_CHUNK_ROUNDS
                             ) -> PLateEstimate:
    """Monte-Carlo ``p_late`` estimate over the chunk-parallel path."""
    batch = simulate_rounds_parallel(spec, size_dist, n, t, rounds,
                                     seed=seed, jobs=jobs,
                                     chunk_rounds=chunk_rounds)
    late = int(np.sum(batch.service_times > t))
    low, high = wilson_interval(late, rounds)
    return PLateEstimate(n=n, t=t, rounds=rounds, late_rounds=late,
                         p_late=late / rounds, ci_low=low, ci_high=high)


def simulate_stream_glitches_parallel(spec: DiskSpec,
                                      size_dist: Distribution, n: int,
                                      t: float, m: int, runs: int,
                                      seed: int = 0,
                                      jobs: int | None = None
                                      ) -> np.ndarray:
    """Parallel per-stream glitch counts, shape ``(runs, n)``.

    Uses the same per-run ``SeedSequence.spawn`` scheme as the serial
    :func:`repro.server.simulation.simulate_stream_glitches`, so the
    result is bit-identical to the serial function *and* invariant to
    ``jobs``.
    """
    if runs < 1:
        raise ConfigurationError(f"runs must be >= 1, got {runs!r}")
    jobs = resolve_jobs(jobs)
    children = np.random.SeedSequence(seed).spawn(runs)
    tasks = [(spec, size_dist, n, t, m, child) for child in children]
    rows = _fan_out(_run_glitch_run, tasks, jobs)
    return np.stack(rows).astype(np.int64)


def estimate_p_error_parallel(spec: DiskSpec, size_dist: Distribution,
                              n: int, t: float, m: int, g: int,
                              runs: int = 100, seed: int = 0,
                              jobs: int | None = None) -> PErrorEstimate:
    """Monte-Carlo ``p_error`` estimate over the run-parallel path."""
    if not (0 <= g <= m):
        raise ConfigurationError(f"g must be in [0, m], got {g!r}")
    if not (t > 0.0 and math.isfinite(t)):
        raise ConfigurationError(f"round length must be positive, got {t!r}")
    counts = simulate_stream_glitches_parallel(spec, size_dist, n, t, m,
                                               runs, seed=seed, jobs=jobs)
    streams = counts.size
    bad = int(np.sum(counts >= g))
    low, high = wilson_interval(bad, streams)
    return PErrorEstimate(n=n, t=t, m=m, g=g, streams=streams,
                          bad_streams=bad, p_error=bad / streams,
                          ci_low=low, ci_high=high,
                          mean_glitches=float(np.mean(counts)))
