"""Distributed spans over the :mod:`repro.obs.trace` event stream.

A *span* is one timed operation with a name, attributes, and a place in
a tree: ``client.admit`` covers one logical admission from the client's
point of view, its ``client.request`` children cover each wire attempt,
and on the daemon side ``http.admit`` ->
``admission.admit`` / ``ledger.append`` descend through the layers
that serve it.  Spans are *not* a second telemetry channel: each one
emits ordinary ``span_start``/``span_end`` records through a
:class:`~repro.obs.trace.Tracer`, so a single JSONL trace file carries
rounds, faults *and* the full causal tree of every admission, and
``repro observe --spans`` rebuilds the trees offline with
:func:`build_span_trees`.

Identity and propagation follow the usual tracing model:

- a :class:`SpanContext` is ``(trace_id, span_id, parent_id)``; every
  span in one logical operation shares the ``trace_id``;
- within a process the active span is kept on a thread-local stack, so
  :func:`start_span` parents new spans automatically (the HTTP handler
  opens ``http.admit``, and ``admission.admit`` started on the same
  thread becomes its child without any signature changes);
- across the wire the context travels in the :data:`TRACE_HEADER`
  (``X-Repro-Trace``) HTTP header as ``trace_id/span_id/attempt`` --
  the client stamps the *attempt number* so retries share the parent
  trace-id and the daemon can tell a retried request from a fresh one
  (and keep its request counters honest).

Durations are monotonic (``time.perf_counter``), never wall-clock
differences.  With a disabled tracer :func:`start_span` returns the
shared :data:`NOOP_SPAN`, costing one branch and no allocation -- the
same cost contract the rest of :mod:`repro.obs.trace` keeps.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from dataclasses import dataclass, field
from typing import NamedTuple

from repro.obs.trace import Tracer, get_tracer

__all__ = [
    "TRACE_HEADER",
    "SpanContext",
    "Span",
    "NOOP_SPAN",
    "new_id",
    "start_span",
    "current_span",
    "format_trace_header",
    "parse_trace_header",
    "SpanNode",
    "build_span_trees",
    "critical_path",
    "render_span_tree",
]

#: HTTP header carrying ``trace_id/parent_span_id/attempt`` across the
#: client -> daemon hop.
TRACE_HEADER = "X-Repro-Trace"

#: Process-unique id prefix + atomic counter: cheaper than a UUID per
#: span on the admission hot path, still unique across processes.
_ID_PREFIX = os.urandom(4).hex()
_IDS = itertools.count(1)


def new_id() -> str:
    """A fresh process-unique span/trace id (8 hex chars + counter)."""
    return f"{_ID_PREFIX}{next(_IDS):06x}"


class SpanContext(NamedTuple):
    """Identity of one span: where it belongs and who started it.

    A ``NamedTuple`` rather than a frozen dataclass: one is built per
    span on the admission hot path and tuple construction is several
    times cheaper than ``object.__setattr__`` per field.
    """

    trace_id: str
    span_id: str
    parent_id: str | None = None

    def child(self) -> "SpanContext":
        """A fresh context parented on this one (same trace)."""
        return SpanContext(self.trace_id, new_id(), self.span_id)


def format_trace_header(context: SpanContext, attempt: int = 1) -> str:
    """Serialise ``context`` (+ attempt number) for the wire."""
    return f"{context.trace_id}/{context.span_id}/{int(attempt)}"


def parse_trace_header(value) -> tuple[SpanContext | None, int]:
    """Parse an ``X-Repro-Trace`` value into ``(context, attempt)``.

    Anything malformed -- absent header, wrong arity, empty ids, junk
    attempt -- degrades to ``(None, 1)``: a broken header must never
    turn into a 4xx for an otherwise-valid admission.
    """
    if not value or not isinstance(value, str):
        return None, 1
    parts = value.strip().split("/")
    if len(parts) < 2:
        return None, 1
    trace_id, span_id = parts[0].strip(), parts[1].strip()
    if not trace_id or not span_id or len(value) > 256:
        return None, 1
    attempt = 1
    if len(parts) >= 3:
        try:
            attempt = max(1, int(parts[2]))
        except ValueError:
            attempt = 1
    return SpanContext(trace_id, span_id), attempt


# ----------------------------------------------------------------------
# Live spans
# ----------------------------------------------------------------------

_ACTIVE = threading.local()


def _stack() -> list:
    stack = getattr(_ACTIVE, "stack", None)
    if stack is None:
        stack = _ACTIVE.stack = []
    return stack


def current_span():
    """The innermost active :class:`Span` on this thread (or None)."""
    stack = getattr(_ACTIVE, "stack", None)
    return stack[-1] if stack else None


class Span:
    """One live timed operation, emitted as ``span_start`` now and
    ``span_end`` on :meth:`finish` (duration from
    ``time.perf_counter``).  Use as a context manager: entering pushes
    it on the thread-local stack so nested :func:`start_span` calls
    parent on it automatically; exiting pops and finishes (stamping
    ``error`` when the body raised)."""

    __slots__ = ("tracer", "context", "name", "attrs", "_t0",
                 "_finished", "_pushed")

    def __init__(self, tracer: Tracer, context: SpanContext, name: str,
                 attrs: dict | None = None) -> None:
        self.tracer = tracer
        self.context = context
        self.name = name
        self.attrs: dict = {}
        self._finished = False
        self._pushed = False
        record = {"kind": "span_start", "seq": 0, "wall": 0.0,
                  "trace": context.trace_id, "span": context.span_id,
                  "name": name}
        if context.parent_id is not None:
            record["parent"] = context.parent_id
        if attrs:
            # start_span hands over a fresh kwargs dict; no copy needed.
            record["attrs"] = attrs
        self._t0 = time.perf_counter()
        tracer.emit_record(record)

    def set(self, **attrs) -> "Span":
        """Attach attributes, carried on the ``span_end`` record."""
        self.attrs.update(attrs)
        return self

    def finish(self, **attrs) -> None:
        """Emit ``span_end`` with the monotonic duration (idempotent)."""
        if self._finished:
            return
        self._finished = True
        seconds = time.perf_counter() - self._t0
        if attrs:
            self.attrs.update(attrs)
        record = {"kind": "span_end", "seq": 0, "wall": 0.0,
                  "trace": self.context.trace_id,
                  "span": self.context.span_id,
                  "name": self.name, "seconds": seconds}
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        self.tracer.emit_record(record)

    def __enter__(self) -> "Span":
        _stack().append(self)
        self._pushed = True
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._pushed:
            stack = _stack()
            if stack and stack[-1] is self:
                stack.pop()
            elif self in stack:  # defensive: out-of-order exits
                stack.remove(self)
            self._pushed = False
        if exc_type is not None and "error" not in self.attrs:
            self.attrs["error"] = exc_type.__name__
        self.finish()
        return False

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, trace={self.context.trace_id}, "
                f"span={self.context.span_id})")


class _NoopSpan:
    """The do-nothing span a disabled tracer hands out: no context, no
    records, no thread-local traffic -- one shared instance."""

    __slots__ = ()
    context = None
    name = ""
    attrs: dict = {}

    def set(self, **attrs) -> "_NoopSpan":
        return self

    def finish(self, **attrs) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def __repr__(self) -> str:
        return "NOOP_SPAN"


NOOP_SPAN = _NoopSpan()


def start_span(name: str, *, tracer: Tracer | None = None,
               parent=None, trace_id: str | None = None,
               **attrs):
    """Open a span (emit ``span_start``) and return it.

    ``tracer`` defaults to the process-wide one; when it is disabled
    the shared :data:`NOOP_SPAN` comes back and nothing is recorded.
    ``parent`` may be a :class:`Span` or :class:`SpanContext`;
    unspecified, the innermost active span on this thread is the
    parent, else the span starts a new trace (``trace_id`` lets a
    caller pin the trace of a parentless span -- the client does this
    so every retry attempt shares one trace)."""
    if tracer is None:
        tracer = get_tracer()
    if not tracer.enabled:
        return NOOP_SPAN
    if parent is None:
        parent = current_span()
    context = getattr(parent, "context", parent)
    if isinstance(context, SpanContext):
        span_context = context.child()
    else:
        span_context = SpanContext(trace_id or new_id(), new_id())
    return Span(tracer, span_context, name, attrs or None)


# ----------------------------------------------------------------------
# Offline reconstruction
# ----------------------------------------------------------------------

@dataclass
class SpanNode:
    """One span rebuilt from ``span_start``/``span_end`` records."""

    trace_id: str
    span_id: str
    parent_id: str | None = None
    name: str = "?"
    wall: float = 0.0
    seconds: float | None = None
    attrs: dict = field(default_factory=dict)
    children: list = field(default_factory=list)
    #: Both the start and the end record were present.
    complete: bool = False

    def walk(self):
        """This node then every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()


def build_span_trees(records) -> list[SpanNode]:
    """Rebuild span trees from trace records (other kinds ignored).

    Spans whose parent never appears in the trace become roots of
    their own tree -- the normal shape for a daemon-side trace whose
    client ran untraced in another process: the ``http.*`` span still
    carries the client's trace-id, it just has nobody above it here.
    A ``span_start`` without its ``span_end`` (request in flight when
    the sink closed, daemon SIGKILLed) yields an incomplete node with
    ``seconds=None`` rather than being dropped.
    """
    nodes: dict[str, SpanNode] = {}
    order: list[str] = []

    def node(trace_id: str, span_id: str) -> SpanNode:
        entry = nodes.get(span_id)
        if entry is None:
            entry = nodes[span_id] = SpanNode(trace_id, span_id)
            order.append(span_id)
        return entry

    for record in records:
        kind = record.get("kind")
        if kind not in ("span_start", "span_end"):
            continue
        span_id = str(record.get("span", ""))
        if not span_id:
            continue
        entry = node(str(record.get("trace", "")), span_id)
        entry.name = str(record.get("name", entry.name))
        attrs = record.get("attrs")
        if isinstance(attrs, dict):
            entry.attrs.update(attrs)
        if kind == "span_start":
            entry.wall = float(record.get("wall", 0.0))
            parent = record.get("parent")
            if parent is not None:
                entry.parent_id = str(parent)
        else:
            seconds = record.get("seconds")
            if isinstance(seconds, (int, float)):
                entry.seconds = float(seconds)
            if not entry.wall:
                entry.wall = float(record.get("wall", 0.0))
            entry.complete = True
    # A start-only span is incomplete; a node first seen via span_end
    # (ring overflow ate the start) keeps complete=True but has no
    # parent edge unless the end record names one.
    for span_id in order:
        entry = nodes[span_id]
        if entry.seconds is None:
            entry.complete = False
    roots: list[SpanNode] = []
    for span_id in order:
        entry = nodes[span_id]
        parent = (nodes.get(entry.parent_id)
                  if entry.parent_id is not None else None)
        if parent is not None and parent is not entry:
            parent.children.append(entry)
        else:
            roots.append(entry)
    for entry in nodes.values():
        entry.children.sort(key=lambda child: child.wall)
    roots.sort(key=lambda root: root.wall)
    return roots


def critical_path(root: SpanNode) -> list[SpanNode]:
    """Root-to-leaf chain following the slowest child at each level --
    the spans an admission's latency actually waited on."""
    path = [root]
    current = root
    while current.children:
        current = max(current.children,
                      key=lambda child: child.seconds or 0.0)
        path.append(current)
    return path


def _format_attrs(attrs: dict, limit: int = 4) -> str:
    parts = []
    for key, value in attrs.items():
        if isinstance(value, float):
            parts.append(f"{key}={value:g}")
        elif isinstance(value, (str, int, bool)):
            parts.append(f"{key}={value}")
        if len(parts) >= limit:
            break
    return "  ".join(parts)


def render_span_tree(root: SpanNode, indent: str = "") -> list[str]:
    """ASCII lines for one span tree (``repro observe --spans``)."""
    duration = (f"{root.seconds * 1e3:.2f} ms"
                if root.seconds is not None else "(no end record)")
    line = f"{indent}{root.name}  {duration}"
    attrs = _format_attrs(root.attrs)
    if attrs:
        line += f"  [{attrs}]"
    lines = [line]
    for child in root.children:
        lines.extend(render_span_tree(child, indent + "  "))
    return lines
