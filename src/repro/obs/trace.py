"""Structured event tracing with a ring buffer and JSONL sink.

A :class:`Tracer` records typed event dicts: every record carries the
event ``kind``, a monotone sequence number ``seq``, a wall-clock stamp
``wall`` and (when the event happened inside a simulation) the
simulation time ``t``; kind-specific fields ride along flat.  Records
land in a bounded in-memory ring buffer and, when a sink is
configured, are appended to a JSONL file one object per line -- the
format :func:`read_trace` and ``repro observe`` consume.

Cost contract: instrumented code guards every emission with
``if tracer.enabled:`` so that a disabled tracer costs exactly one
attribute load and branch per event -- no argument tuples, no field
dicts, no record allocation.  :data:`NULL_TRACER` is the shared
disabled instance the instrumentation layers default to.

The record schema is versioned (:data:`TRACE_SCHEMA_VERSION`) and
validated by :func:`validate_record` / :func:`validate_trace`; the CI
smoke leg runs the validator over a freshly recorded fault-injection
trace.  See ``docs/OBSERVABILITY.md`` for the catalogue.
"""

from __future__ import annotations

import json
import time
from collections import deque
from pathlib import Path

from repro.errors import ConfigurationError

__all__ = [
    "EVENT_KINDS",
    "TRACE_SCHEMA_VERSION",
    "Tracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "read_trace",
    "validate_record",
    "validate_trace",
]

#: Bump when record fields change incompatibly; ``run_start`` records
#: carry it so readers can refuse traces they do not understand.
TRACE_SCHEMA_VERSION = 1

#: Event kinds and the extra fields each one requires (beyond the
#: common ``kind``/``seq``/``wall``).  ``t`` is required where the
#: event is anchored in simulation time.
EVENT_KINDS: dict[str, tuple[str, ...]] = {
    # run lifecycle
    "run_start": ("seed", "schema"),
    "run_end": (),
    # server / scheduler
    "round_dispatch": ("t", "round", "active_streams", "failed_disks"),
    "sweep_start": ("t", "round", "disk", "batch"),
    "sweep": ("t", "round", "disk", "service", "late", "served",
              "glitched"),
    "fragment_glitch": ("t", "round", "disk", "stream"),
    # One record per (disk, round) with the on-time fragments'
    # completion latencies (seconds past the round boundary), aligned
    # lists streams/latencies/classes -- the per-stream latency
    # telemetry input, batched to keep tracing off the per-request path.
    "latency_batch": ("t", "round", "disk", "streams", "latencies",
                      "classes"),
    "stream_admit": ("stream", "object", "start_round"),
    "stream_shed": ("round", "stream", "action"),
    "stream_resume": ("round", "stream"),
    "fault": ("t", "desc"),
    # analytic / cache layer
    "cache_hit": ("layer",),
    "cache_miss": ("layer",),
    "bound_solve": ("seconds",),
    # parallel fan-out
    "worker_task": ("phase", "task"),
}


class Tracer:
    """Bounded structured event recorder.

    Parameters
    ----------
    capacity:
        Ring-buffer size; the oldest records are dropped (and counted
        in :attr:`dropped`) once it fills.  The JSONL sink is
        unaffected by the ring -- every emitted record is written.
    sink:
        ``None``, a path (opened lazily, closed by :meth:`close`), or a
        file-like object with ``write`` (left open).
    enabled:
        Start disabled to pre-wire instrumentation at zero cost.
    clock:
        Wall-clock source (injectable for tests); defaults to
        :func:`time.time`.
    """

    __slots__ = ("enabled", "capacity", "emitted", "dropped", "_records",
                 "_seq", "_sink", "_sink_path", "_owns_sink", "_clock")

    def __init__(self, capacity: int = 65536, sink=None,
                 enabled: bool = True, clock=time.time) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"tracer capacity must be >= 1, got {capacity!r}")
        self.enabled = bool(enabled)
        self.capacity = int(capacity)
        self.emitted = 0
        self.dropped = 0
        self._records: deque = deque(maxlen=self.capacity)
        self._seq = 0
        self._sink = None
        self._sink_path: Path | None = None
        self._owns_sink = False
        self._clock = clock
        if sink is not None:
            if hasattr(sink, "write"):
                self._sink = sink
            else:
                self._sink_path = Path(sink)

    # ------------------------------------------------------------------
    def emit(self, kind: str, t: float | None = None, **fields) -> dict:
        """Record one event; returns the record (or ``{}`` if disabled).

        Hot paths must guard with ``if tracer.enabled:`` -- calling
        ``emit`` already costs the keyword-dict allocation.
        """
        if not self.enabled:
            return {}
        record = {"kind": kind, "seq": self._seq,
                  "wall": float(self._clock())}
        if t is not None:
            record["t"] = float(t)
        record.update(fields)
        self._seq += 1
        self.emitted += 1
        if len(self._records) == self.capacity:
            self.dropped += 1
        self._records.append(record)
        sink = self._resolve_sink()
        if sink is not None:
            sink.write(json.dumps(record, default=_jsonable) + "\n")
        return record

    def start_run(self, seed: int | None = None, **config) -> dict:
        """Emit the ``run_start`` header record (seed- and schema-
        stamped); free-form ``config`` fields ride along."""
        return self.emit("run_start", seed=seed,
                         schema=TRACE_SCHEMA_VERSION, **config)

    def end_run(self, **fields) -> dict:
        """Emit the closing ``run_end`` record."""
        return self.emit("run_end", **fields)

    # ------------------------------------------------------------------
    def records(self) -> list[dict]:
        """Copy of the ring buffer, oldest first."""
        return list(self._records)

    def clear(self) -> None:
        """Drop buffered records (the sink file is untouched)."""
        self._records.clear()

    def _resolve_sink(self):
        if self._sink is None and self._sink_path is not None:
            self._sink_path.parent.mkdir(parents=True, exist_ok=True)
            self._sink = self._sink_path.open("w", encoding="utf-8")
            self._owns_sink = True
        return self._sink

    def flush(self) -> None:
        """Flush the sink, if one is open."""
        if self._sink is not None and hasattr(self._sink, "flush"):
            self._sink.flush()

    def close(self) -> None:
        """Close a tracer-owned sink file (idempotent)."""
        if self._sink is not None and self._owns_sink:
            self._sink.close()
        self._sink = None
        self._owns_sink = False

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self._records)

    def __repr__(self) -> str:
        state = "on" if self.enabled else "off"
        return (f"Tracer({state}, emitted={self.emitted}, "
                f"buffered={len(self._records)})")


def _jsonable(value):
    """JSON fallback for numpy scalars and sets in event fields."""
    if hasattr(value, "item"):
        return value.item()
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    return str(value)


#: The shared disabled tracer; instrumentation layers default to it so
#: a server without tracing pays one ``tracer.enabled`` check per event.
NULL_TRACER = Tracer(capacity=1, enabled=False)

_CURRENT: Tracer = NULL_TRACER


def get_tracer() -> Tracer:
    """The process-wide tracer (``NULL_TRACER`` unless one was set)."""
    return _CURRENT


def set_tracer(tracer: Tracer | None) -> Tracer:
    """Install ``tracer`` as the process-wide default (``None``
    restores :data:`NULL_TRACER`); returns the installed tracer."""
    global _CURRENT
    if tracer is None:
        tracer = NULL_TRACER
    if not isinstance(tracer, Tracer):
        raise ConfigurationError(f"expected a Tracer, got {tracer!r}")
    _CURRENT = tracer
    return tracer


# ----------------------------------------------------------------------
# Reading and validating recorded traces
# ----------------------------------------------------------------------

def read_trace(path) -> list[dict]:
    """Parse a JSONL trace file into a list of record dicts."""
    records = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ConfigurationError(
                    f"{path}:{lineno}: not valid JSON: {exc}") from exc
            if not isinstance(record, dict):
                raise ConfigurationError(
                    f"{path}:{lineno}: trace records must be objects, "
                    f"got {type(record).__name__}")
            records.append(record)
    return records


def validate_record(record: dict, index: int | None = None) -> list[str]:
    """Schema problems of one record (empty list = valid).

    Checks the common envelope (``kind``/``seq``/``wall``), that the
    kind is in the catalogue, and that the kind's required fields are
    present.  Unknown extra fields are allowed (forward compatible).
    """
    where = f"record {index}" if index is not None else "record"
    problems = []
    kind = record.get("kind")
    if not isinstance(kind, str):
        return [f"{where}: missing or non-string 'kind'"]
    if kind not in EVENT_KINDS:
        return [f"{where}: unknown kind {kind!r}"]
    if not isinstance(record.get("seq"), int):
        problems.append(f"{where} ({kind}): missing integer 'seq'")
    if not isinstance(record.get("wall"), (int, float)):
        problems.append(f"{where} ({kind}): missing numeric 'wall'")
    for field in EVENT_KINDS[kind]:
        if field == "t":
            if not isinstance(record.get("t"), (int, float)):
                problems.append(f"{where} ({kind}): missing numeric 't'")
        elif field not in record:
            problems.append(f"{where} ({kind}): missing field {field!r}")
    return problems


def validate_trace(records) -> list[str]:
    """Schema problems across a whole trace (empty list = valid).

    Beyond per-record checks: the trace must open with ``run_start``,
    declare a schema version this reader understands, and keep ``seq``
    strictly increasing.
    """
    records = list(records)
    problems = []
    if not records:
        return ["trace is empty"]
    head = records[0]
    if head.get("kind") != "run_start":
        problems.append("trace does not start with a run_start record")
    elif head.get("schema") != TRACE_SCHEMA_VERSION:
        problems.append(
            f"trace schema {head.get('schema')!r} != supported "
            f"{TRACE_SCHEMA_VERSION}")
    last_seq = None
    for index, record in enumerate(records):
        problems.extend(validate_record(record, index))
        seq = record.get("seq")
        if isinstance(seq, int):
            if last_seq is not None and seq <= last_seq:
                problems.append(
                    f"record {index}: seq {seq} not increasing "
                    f"(previous {last_seq})")
            last_seq = seq
    return problems
