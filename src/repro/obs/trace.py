"""Structured event tracing with a ring buffer and JSONL sink.

A :class:`Tracer` records typed event dicts: every record carries the
event ``kind``, a monotone sequence number ``seq``, a wall-clock stamp
``wall`` and (when the event happened inside a simulation) the
simulation time ``t``; kind-specific fields ride along flat.  Records
land in a bounded in-memory ring buffer and, when a sink is
configured, are appended to a JSONL file one object per line -- the
format :func:`read_trace` and ``repro observe`` consume.

Cost contract: instrumented code guards every emission with
``if tracer.enabled:`` so that a disabled tracer costs exactly one
attribute load and branch per event -- no argument tuples, no field
dicts, no record allocation.  :data:`NULL_TRACER` is the shared
disabled instance the instrumentation layers default to.

The record schema is versioned (:data:`TRACE_SCHEMA_VERSION`) and
validated by :func:`validate_record` / :func:`validate_trace`; the CI
smoke leg runs the validator over a freshly recorded fault-injection
trace.  See ``docs/OBSERVABILITY.md`` for the catalogue.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from pathlib import Path

from repro.errors import ConfigurationError

__all__ = [
    "EVENT_KINDS",
    "TRACE_SCHEMA_VERSION",
    "Tracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "read_trace",
    "read_trace_lenient",
    "publish_trace_metrics",
    "validate_record",
    "validate_trace",
]

#: Bump when record fields change incompatibly; ``run_start`` records
#: carry it so readers can refuse traces they do not understand.
TRACE_SCHEMA_VERSION = 1

#: Event kinds and the extra fields each one requires (beyond the
#: common ``kind``/``seq``/``wall``).  ``t`` is required where the
#: event is anchored in simulation time.
EVENT_KINDS: dict[str, tuple[str, ...]] = {
    # run lifecycle
    "run_start": ("seed", "schema"),
    "run_end": (),
    # server / scheduler
    "round_dispatch": ("t", "round", "active_streams", "failed_disks"),
    "sweep_start": ("t", "round", "disk", "batch"),
    "sweep": ("t", "round", "disk", "service", "late", "served",
              "glitched"),
    "fragment_glitch": ("t", "round", "disk", "stream"),
    # One record per (disk, round) with the on-time fragments'
    # completion latencies (seconds past the round boundary), aligned
    # lists streams/latencies/classes -- the per-stream latency
    # telemetry input, batched to keep tracing off the per-request path.
    "latency_batch": ("t", "round", "disk", "streams", "latencies",
                      "classes"),
    "stream_admit": ("stream", "object", "start_round"),
    "stream_shed": ("round", "stream", "action"),
    "stream_resume": ("round", "stream"),
    "fault": ("t", "desc"),
    # distributed spans (repro.obs.spans): one timed operation each,
    # trace/span/parent ids tie them into per-admission trees.
    "span_start": ("trace", "span", "name"),
    "span_end": ("trace", "span", "name", "seconds"),
    # serve measurement plane: one record per probed daemon round --
    # the offline SLO burn-rate replay input (``repro slo``).
    "round_observe": ("round", "disk_rounds", "late_disk_rounds",
                      "requests", "glitched", "degraded", "bound"),
    # analytic / cache layer
    "cache_hit": ("layer",),
    "cache_miss": ("layer",),
    "bound_solve": ("seconds",),
    # parallel fan-out
    "worker_task": ("phase", "task"),
}


class Tracer:
    """Bounded structured event recorder.

    Parameters
    ----------
    capacity:
        Ring-buffer size; the oldest records are dropped (and counted
        in :attr:`dropped`) once it fills.  The JSONL sink is
        unaffected by the ring -- every emitted record is written.
        The default is deliberately modest: the ring is a live
        debugging aid, and tens of thousands of retained record dicts
        are a measurable garbage-collector burden on the admission
        hot path (every full collection walks them).
    sink:
        ``None``, a path (opened lazily, closed by :meth:`close`), or a
        file-like object with ``write`` (left open).
    enabled:
        Start disabled to pre-wire instrumentation at zero cost.
    clock:
        Wall-clock source (injectable for tests); defaults to
        :func:`time.time`.
    """

    __slots__ = ("enabled", "capacity", "emitted", "dropped", "_records",
                 "_seq", "_sink", "_sink_path", "_owns_sink", "_clock",
                 "_emit_lock", "_pending", "_write_lock", "_has_sink")

    def __init__(self, capacity: int = 4096, sink=None,
                 enabled: bool = True, clock=time.time) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"tracer capacity must be >= 1, got {capacity!r}")
        self.enabled = bool(enabled)
        self.capacity = int(capacity)
        self.emitted = 0
        self.dropped = 0
        self._records: deque = deque(maxlen=self.capacity)
        self._seq = 0
        self._sink = None
        self._sink_path: Path | None = None
        self._owns_sink = False
        self._clock = clock
        # The serve daemon emits from many HTTP worker threads plus the
        # round ticker at once; seq must stay strictly increasing and a
        # JSONL line must never interleave.  Disabled tracers return
        # before ever touching the lock.
        self._emit_lock = threading.Lock()
        # Sink writes are deferred: emit() only appends the record to
        # ``_pending`` (no JSON encoding on the hot path) and the
        # serialisation happens in :meth:`flush` -- per control round
        # in the serve daemon, at ``_PENDING_FLUSH`` records otherwise,
        # always on :meth:`close`.  ``_write_lock`` orders concurrent
        # drains so the JSONL stays in seq order.
        self._pending: list = []
        self._write_lock = threading.Lock()
        if sink is not None:
            if hasattr(sink, "write"):
                self._sink = sink
            else:
                self._sink_path = Path(sink)
        self._has_sink = sink is not None

    # ------------------------------------------------------------------
    def emit(self, kind: str, t: float | None = None, **fields) -> dict:
        """Record one event; returns the record (or ``{}`` if disabled).

        Hot paths must guard with ``if tracer.enabled:`` -- calling
        ``emit`` already costs the keyword-dict allocation.
        """
        if not self.enabled:
            return {}
        if t is not None:
            fields["t"] = float(t)
        return self.emit_fields(kind, fields)

    def emit_fields(self, kind: str, fields: dict) -> dict:
        """:meth:`emit` without the kwargs repack: ``fields`` is taken
        over by the record (the span layer builds its payload dict once
        and hands it straight here -- one less dict per record on the
        admission hot path).  The caller must not reuse ``fields``."""
        if not self.enabled:
            return {}
        record = {"kind": kind, "seq": 0, "wall": 0.0}
        record.update(fields)
        return self.emit_record(record)

    def emit_record(self, record: dict) -> dict:
        """The zero-copy emit core: ``record`` already carries
        ``kind`` (plus placeholder ``seq``/``wall`` slots so the JSONL
        keeps its envelope-first key order) and is stamped and filed
        in place -- no second dict per record.  The caller hands over
        ownership and must not mutate ``record`` afterwards."""
        if not self.enabled:
            return {}
        with self._emit_lock:
            record["seq"] = self._seq
            record["wall"] = self._clock()
            self._seq += 1
            self.emitted += 1
            if len(self._records) == self.capacity:
                self.dropped += 1
            self._records.append(record)
            if self._has_sink:
                self._pending.append(record)
        if len(self._pending) >= _PENDING_FLUSH:
            self._drain()
        return record

    def start_run(self, seed: int | None = None, **config) -> dict:
        """Emit the ``run_start`` header record (seed- and schema-
        stamped); free-form ``config`` fields ride along."""
        return self.emit("run_start", seed=seed,
                         schema=TRACE_SCHEMA_VERSION, **config)

    def end_run(self, **fields) -> dict:
        """Emit the closing ``run_end`` record."""
        return self.emit("run_end", **fields)

    # ------------------------------------------------------------------
    def records(self) -> list[dict]:
        """Copy of the ring buffer, oldest first."""
        return list(self._records)

    def clear(self) -> None:
        """Drop buffered records (the sink file is untouched)."""
        self._records.clear()

    def _resolve_sink(self):
        if self._sink is None and self._sink_path is not None:
            self._sink_path.parent.mkdir(parents=True, exist_ok=True)
            self._sink = self._sink_path.open("w", encoding="utf-8")
            self._owns_sink = True
        return self._sink

    def _drain(self) -> None:
        """Serialise and write the pending records (order-preserving:
        the swap happens under the emit lock while the write lock is
        held, so concurrent drains cannot reorder batches)."""
        with self._write_lock:
            with self._emit_lock:
                if not self._pending:
                    return
                pending, self._pending = self._pending, []
                sink = self._resolve_sink()
            if sink is not None:
                if _C_ENCODE is not None:
                    chunks: list = []
                    for record in pending:
                        chunks += _C_ENCODE(record, 0)
                        chunks.append("\n")
                else:  # pragma: no cover
                    chunks = [_JSON_ENCODER.encode(record) + "\n"
                              for record in pending]
                sink.write("".join(chunks))

    def flush(self) -> None:
        """Drain deferred records to the sink and flush it."""
        self._drain()
        if self._sink is not None and hasattr(self._sink, "flush"):
            self._sink.flush()

    def close(self) -> None:
        """Drain and close a tracer-owned sink file (idempotent)."""
        self._drain()
        if self._sink is not None and self._owns_sink:
            self._sink.close()
        self._sink = None
        self._owns_sink = False

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self._records)

    def __repr__(self) -> str:
        state = "on" if self.enabled else "off"
        return (f"Tracer({state}, emitted={self.emitted}, "
                f"buffered={len(self._records)})")


def _jsonable(value):
    """JSON fallback for numpy scalars and sets in event fields."""
    if hasattr(value, "item"):
        return value.item()
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    return str(value)


#: One shared encoder (building one per record is measurable on the
#: admission hot path) and the backstop drain threshold for tracers
#: nobody flushes periodically -- small enough that a backstop drain
#: is a ~1ms blip rather than a multi-ms stall of whichever emitter
#: crosses the threshold.
_JSON_ENCODER = json.JSONEncoder(separators=(",", ":"),
                                 default=_jsonable)
_PENDING_FLUSH = 1024

# The stdlib pays a fixed per-call cost rebuilding its C encoder in
# every ``encode()``; caching the C callable once roughly halves the
# per-record serialisation cost of a drain.  Falls back to the plain
# encoder on interpreters without the accelerator.
try:
    import json.encoder as _json_encoder_mod
    _C_ENCODE = _json_encoder_mod.c_make_encoder(
        None, _jsonable, _json_encoder_mod.encode_basestring_ascii,
        None, ":", ",", False, False, True)
except (ImportError, AttributeError, TypeError):  # pragma: no cover
    _C_ENCODE = None


#: The shared disabled tracer; instrumentation layers default to it so
#: a server without tracing pays one ``tracer.enabled`` check per event.
NULL_TRACER = Tracer(capacity=1, enabled=False)

_CURRENT: Tracer = NULL_TRACER


def get_tracer() -> Tracer:
    """The process-wide tracer (``NULL_TRACER`` unless one was set)."""
    return _CURRENT


def set_tracer(tracer: Tracer | None) -> Tracer:
    """Install ``tracer`` as the process-wide default (``None``
    restores :data:`NULL_TRACER`); returns the installed tracer."""
    global _CURRENT
    if tracer is None:
        tracer = NULL_TRACER
    if not isinstance(tracer, Tracer):
        raise ConfigurationError(f"expected a Tracer, got {tracer!r}")
    _CURRENT = tracer
    return tracer


# ----------------------------------------------------------------------
# Reading and validating recorded traces
# ----------------------------------------------------------------------

def read_trace(path) -> list[dict]:
    """Parse a JSONL trace file into a list of record dicts."""
    records = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ConfigurationError(
                    f"{path}:{lineno}: not valid JSON: {exc}") from exc
            if not isinstance(record, dict):
                raise ConfigurationError(
                    f"{path}:{lineno}: trace records must be objects, "
                    f"got {type(record).__name__}")
            records.append(record)
    return records


def read_trace_lenient(path) -> tuple[list[dict], list[str]]:
    """Parse a JSONL trace, tolerating damage; returns
    ``(records, problems)``.

    :func:`read_trace` is strict -- right for validation, wrong for a
    post-mortem: the trace of a SIGKILLed daemon usually ends in a
    half-written line, and an operator reading the wreckage wants the
    intact prefix plus a one-line diagnosis, not a parser traceback.
    Rules: blank lines are skipped; an unparseable *final* line is
    reported as truncation (the SIGKILL signature) and the prefix kept;
    unparseable or non-object lines elsewhere are reported and skipped.
    An empty file yields ``([], [])`` -- the caller decides what an
    empty trace means.
    """
    records: list[dict] = []
    problems: list[str] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        lines = handle.readlines()
    numbered = [(lineno, line.strip())
                for lineno, line in enumerate(lines, start=1)]
    numbered = [(lineno, line) for lineno, line in numbered if line]
    for position, (lineno, line) in enumerate(numbered):
        last = position == len(numbered) - 1
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if last:
                problems.append(
                    f"line {lineno}: truncated final record "
                    f"(half-written line -- daemon killed mid-write?)")
            else:
                problems.append(
                    f"line {lineno}: unparseable record skipped")
            continue
        if not isinstance(record, dict):
            problems.append(
                f"line {lineno}: non-object record skipped "
                f"({type(record).__name__})")
            continue
        records.append(record)
    return records, problems


def publish_trace_metrics(registry, tracer: Tracer | None = None) -> None:
    """Mirror a tracer's loss/volume counters into a metrics registry.

    Follows the ``publish_cache_metrics`` idiom: safe to call on every
    scrape.  ``trace_emitted_total``/``trace_dropped_total`` are real
    Prometheus counters advanced by the delta since the last publish,
    so silent ring-buffer loss is visible to operators instead of only
    living on the Tracer instance.
    """
    if tracer is None:
        tracer = get_tracer()
    emitted = registry.counter(
        "trace_emitted_total",
        help="Trace records emitted by the tracer")
    emitted.inc(max(0.0, tracer.emitted - emitted.value))
    dropped = registry.counter(
        "trace_dropped_total",
        help="Trace records evicted from the ring buffer (sink files "
        "are unaffected)")
    dropped.inc(max(0.0, tracer.dropped - dropped.value))
    registry.gauge(
        "trace_buffered_records",
        help="Trace records currently held in the ring buffer"
        ).set(len(tracer))
    registry.gauge(
        "trace_ring_capacity",
        help="Ring buffer capacity of the tracer"
        ).set(tracer.capacity)
    registry.gauge(
        "trace_enabled",
        help="1 while the tracer is recording"
        ).set(1 if tracer.enabled else 0)


def validate_record(record: dict, index: int | None = None) -> list[str]:
    """Schema problems of one record (empty list = valid).

    Checks the common envelope (``kind``/``seq``/``wall``), that the
    kind is in the catalogue, and that the kind's required fields are
    present.  Unknown extra fields are allowed (forward compatible).
    """
    where = f"record {index}" if index is not None else "record"
    problems = []
    kind = record.get("kind")
    if not isinstance(kind, str):
        return [f"{where}: missing or non-string 'kind'"]
    if kind not in EVENT_KINDS:
        return [f"{where}: unknown kind {kind!r}"]
    if not isinstance(record.get("seq"), int):
        problems.append(f"{where} ({kind}): missing integer 'seq'")
    if not isinstance(record.get("wall"), (int, float)):
        problems.append(f"{where} ({kind}): missing numeric 'wall'")
    for field in EVENT_KINDS[kind]:
        if field == "t":
            if not isinstance(record.get("t"), (int, float)):
                problems.append(f"{where} ({kind}): missing numeric 't'")
        elif field not in record:
            problems.append(f"{where} ({kind}): missing field {field!r}")
    return problems


def validate_trace(records) -> list[str]:
    """Schema problems across a whole trace (empty list = valid).

    Beyond per-record checks: the trace must open with ``run_start``,
    declare a schema version this reader understands, and keep ``seq``
    strictly increasing.
    """
    records = list(records)
    problems = []
    if not records:
        return ["trace is empty"]
    head = records[0]
    if head.get("kind") != "run_start":
        problems.append("trace does not start with a run_start record")
    elif head.get("schema") != TRACE_SCHEMA_VERSION:
        problems.append(
            f"trace schema {head.get('schema')!r} != supported "
            f"{TRACE_SCHEMA_VERSION}")
    last_seq = None
    for index, record in enumerate(records):
        problems.extend(validate_record(record, index))
        seq = record.get("seq")
        if isinstance(seq, int):
            if last_seq is not None and seq <= last_seq:
                problems.append(
                    f"record {index}: seq {seq} not increasing "
                    f"(previous {last_seq})")
            last_seq = seq
    return problems
