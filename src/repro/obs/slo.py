"""The paper's ε as an operational error budget with burn-rate alerts.

The guarantee ``p_error <= epsilon`` (eq. 3.3.6) is statistical: over a
stream's ``m`` rounds, more than ``g`` glitches happen with probability
at most ε.  That maps exactly onto the SRE error-budget model -- the
admission solver chooses ``N_max`` so the per-slot glitch probability
stays below the rate ``b`` with ``P[Binomial(m, b) > g] = epsilon``,
so ``b`` *is* the sustainable per-slot budget: a daemon glitching
slots faster than ``b`` is spending ε faster than the proof allows.
:func:`slot_glitch_budget` recovers ``b`` from ``(m, g, epsilon)`` by
inverting the same exact binomial tail the solver bounds.

:class:`SLOTracker` consumes one observation per probed round (glitched
slots out of served slots, from the daemon's
:class:`~repro.control.window.TelemetryWindow` probe) and keeps the
classic multi-window burn rates, with windows measured in *rounds*
because rounds are the paper's unit of time:

- ``burn = glitched / (slots * budget)`` over a window: 1.0 means the
  budget is being consumed exactly as fast as ε allows; 2.0 means the
  budget for the window was spent twice over;
- the **fast window** (default 32 rounds) catches storms: burn at or
  above ``page_burn`` there means the guarantee is being torn through
  right now -> state ``page``;
- the **slow window** (default 256 rounds) catches leaks: burn at or
  above ``warn_burn`` (default 1.0, the sustainability threshold)
  means the budget will not last the stream -> state ``warn``.

Rounds probed while a disk is failed are charged against the
``degraded_budget`` (the δ round-lateness tolerance of the
failure-proof operating point) instead of the healthy ``b`` -- the
paper's degraded-mode bound is the promise actually in force then.

The tracker is thread-safe (observe on the tick thread, summaries from
HTTP workers), snapshot-friendly (:meth:`to_dict`/:meth:`from_dict`
round-trip exactly), and exports through any
:class:`~repro.obs.metrics.MetricsRegistry` via :meth:`publish`.
:func:`slo_report_from_records` replays a recorded JSONL trace
(``round_observe`` records from ``repro serve --trace``, or per-round
``sweep`` aggregates from ``repro simulate --trace``) through a fresh
tracker -- the offline ``repro slo`` report.
"""

from __future__ import annotations

import math
import threading
from collections import deque

from repro.distributions import binomial_tail
from repro.errors import ConfigurationError

__all__ = ["slot_glitch_budget", "SLOTracker", "slo_report_from_records"]

#: State ladder, worst last; gauges export the index.
STATES = ("ok", "warn", "page")

DEFAULT_FAST_WINDOW = 32
DEFAULT_SLOW_WINDOW = 256
#: Fast-window burn that pages: the budget is being spent this many
#: times faster than sustainable.
DEFAULT_PAGE_BURN = 6.0
#: Slow-window burn that warns; 1.0 = exactly unsustainable.
DEFAULT_WARN_BURN = 1.0


def slot_glitch_budget(m: int, g: int, epsilon: float) -> float:
    """The per-slot glitch rate ``b`` with
    ``P[Binomial(m, b) >= g+1] = epsilon`` -- the budget implied by the
    stream shape.  Solved by bisection on the exact tail (monotone in
    ``b``); the returned rate errs on the tight side, so spending at
    exactly the budget never exceeds ε.
    """
    if not isinstance(m, int) or m < 1:
        raise ConfigurationError(f"m must be a positive int, got {m!r}")
    if not isinstance(g, int) or not (0 <= g < m):
        raise ConfigurationError(f"g must be in [0, m), got {g!r}")
    if not (0.0 < epsilon < 1.0):
        raise ConfigurationError(
            f"epsilon must be in (0, 1), got {epsilon!r}")
    # binomial_tail is P[X >= g]; "more than g glitches" is >= g+1.
    if binomial_tail(m, 1.0, g + 1) <= epsilon:
        return 1.0
    lo, hi = 0.0, 1.0
    for _ in range(80):
        mid = 0.5 * (lo + hi)
        if binomial_tail(m, mid, g + 1) <= epsilon:
            lo = mid
        else:
            hi = mid
    return lo


class SLOTracker:
    """Multi-window burn-rate tracking over per-round glitch counts."""

    def __init__(self, budget: float, *,
                 degraded_budget: float | None = None,
                 fast_window: int = DEFAULT_FAST_WINDOW,
                 slow_window: int = DEFAULT_SLOW_WINDOW,
                 page_burn: float = DEFAULT_PAGE_BURN,
                 warn_burn: float = DEFAULT_WARN_BURN) -> None:
        if not (0.0 < budget <= 1.0):
            raise ConfigurationError(
                f"budget must be in (0, 1], got {budget!r}")
        if degraded_budget is not None and not (0.0 < degraded_budget
                                                <= 1.0):
            raise ConfigurationError(
                f"degraded_budget must be in (0, 1], "
                f"got {degraded_budget!r}")
        if fast_window < 1 or slow_window < fast_window:
            raise ConfigurationError(
                f"need 1 <= fast_window <= slow_window, got "
                f"{fast_window!r}/{slow_window!r}")
        if warn_burn <= 0.0 or page_burn < warn_burn:
            raise ConfigurationError(
                f"need 0 < warn_burn <= page_burn, got "
                f"{warn_burn!r}/{page_burn!r}")
        self.budget = float(budget)
        self.degraded_budget = (float(degraded_budget)
                                if degraded_budget is not None
                                else float(budget))
        self.fast_window = int(fast_window)
        self.slow_window = int(slow_window)
        self.page_burn = float(page_burn)
        self.warn_burn = float(warn_burn)
        #: (bad, total, allowed) per observed round, newest last.
        self._entries: deque = deque(maxlen=self.slow_window)
        self._lock = threading.Lock()
        self.state = "ok"
        self.rounds = 0
        self.total_slots = 0
        self.bad_slots = 0
        self.allowed_budget = 0.0
        self.degraded_rounds = 0
        self.pages = 0
        self.warnings = 0
        self.first_warn_round: int | None = None
        self.first_page_round: int | None = None
        self.last_round: int | None = None

    # -- feeding -------------------------------------------------------
    def observe(self, bad: int, total: int, *, degraded: bool = False,
                round_index: int | None = None) -> str:
        """Fold one probed round in; returns the (possibly new) state.

        ``bad``/``total`` are glitched and served stream slots this
        round; ``degraded`` charges the round against the degraded-mode
        budget instead of the healthy one.
        """
        bad = int(bad)
        total = int(total)
        if bad < 0 or total < 0 or bad > max(total, 0):
            raise ConfigurationError(
                f"need 0 <= bad <= total, got {bad!r}/{total!r}")
        budget = self.degraded_budget if degraded else self.budget
        with self._lock:
            self._entries.append((bad, total, total * budget))
            self.rounds += 1
            self.total_slots += total
            self.bad_slots += bad
            self.allowed_budget += total * budget
            if degraded:
                self.degraded_rounds += 1
            if round_index is not None:
                self.last_round = int(round_index)
            fast = self._burn_locked(self.fast_window)
            slow = self._burn_locked(self.slow_window)
            if fast >= self.page_burn:
                state = "page"
            elif slow >= self.warn_burn:
                state = "warn"
            else:
                state = "ok"
            previous = self.state
            if state == "page" and previous != "page":
                self.pages += 1
                if self.first_page_round is None:
                    self.first_page_round = self.last_round
            elif state == "warn" and previous == "ok":
                self.warnings += 1
            if state == "warn" and self.first_warn_round is None:
                self.first_warn_round = self.last_round
            self.state = state
            return state

    # -- burn rates ----------------------------------------------------
    def _burn_locked(self, window: int) -> float:
        entries = list(self._entries)[-int(window):]
        bad = sum(entry[0] for entry in entries)
        allowed = sum(entry[2] for entry in entries)
        if allowed <= 0.0:
            return math.inf if bad > 0 else 0.0
        return bad / allowed

    def burn_rate(self, window: int) -> float:
        """Budget-consumption speed over the trailing ``window``
        rounds; 1.0 is exactly sustainable."""
        if window < 1:
            raise ConfigurationError(
                f"window must be >= 1, got {window!r}")
        with self._lock:
            return self._burn_locked(window)

    @property
    def fast_burn(self) -> float:
        return self.burn_rate(self.fast_window)

    @property
    def slow_burn(self) -> float:
        return self.burn_rate(self.slow_window)

    # -- cumulative budget accounting ----------------------------------
    def budget_spent_fraction(self) -> float:
        """Lifetime glitches over lifetime allowance (1.0 = the whole
        run's budget is gone)."""
        with self._lock:
            if self.allowed_budget <= 0.0:
                return math.inf if self.bad_slots else 0.0
            return self.bad_slots / self.allowed_budget

    def budget_remaining_fraction(self) -> float:
        """What is left of the lifetime budget (0.0 = spent dry)."""
        return max(0.0, 1.0 - self.budget_spent_fraction())

    # -- views ---------------------------------------------------------
    def summary(self) -> dict:
        """JSON view (``GET /slo`` and the CLI report)."""
        with self._lock:
            fast = self._burn_locked(self.fast_window)
            slow = self._burn_locked(self.slow_window)
            spent = (self.bad_slots / self.allowed_budget
                     if self.allowed_budget > 0.0
                     else (math.inf if self.bad_slots else 0.0))
            return {
                "state": self.state,
                "budget_per_slot": self.budget,
                "degraded_budget_per_slot": self.degraded_budget,
                "fast_window_rounds": self.fast_window,
                "slow_window_rounds": self.slow_window,
                "page_burn": self.page_burn,
                "warn_burn": self.warn_burn,
                "fast_burn": fast if math.isfinite(fast) else None,
                "slow_burn": slow if math.isfinite(slow) else None,
                "rounds": self.rounds,
                "degraded_rounds": self.degraded_rounds,
                "slots": self.total_slots,
                "glitched_slots": self.bad_slots,
                "budget_spent": (spent if math.isfinite(spent)
                                 else None),
                "budget_remaining": (max(0.0, 1.0 - spent)
                                     if math.isfinite(spent) else 0.0),
                "pages": self.pages,
                "warnings": self.warnings,
                "first_warn_round": self.first_warn_round,
                "first_page_round": self.first_page_round,
                "last_round": self.last_round,
            }

    def publish(self, registry) -> None:
        """Mirror the tracker into Prometheus metrics (idempotent, the
        ``publish_cache_metrics`` pattern -- safe on every scrape)."""
        with self._lock:
            fast = self._burn_locked(self.fast_window)
            slow = self._burn_locked(self.slow_window)
            state_index = STATES.index(self.state)
            pages = self.pages
            warnings = self.warnings
            rounds = self.rounds
            spent = (self.bad_slots / self.allowed_budget
                     if self.allowed_budget > 0.0 else 0.0)
        registry.gauge(
            "slo_burn_rate_fast",
            help="Error-budget burn rate over the fast window "
            "(1 = exactly sustainable)").set(
                fast if math.isfinite(fast) else -1.0)
        registry.gauge(
            "slo_burn_rate_slow",
            help="Error-budget burn rate over the slow window"
            ).set(slow if math.isfinite(slow) else -1.0)
        registry.gauge(
            "slo_state",
            help="Burn-rate alert state (0 ok, 1 warn, 2 page)"
            ).set(state_index)
        registry.gauge(
            "slo_budget_per_slot",
            help="Per-slot glitch budget implied by (m, g, epsilon)"
            ).set(self.budget)
        registry.gauge(
            "slo_budget_remaining",
            help="Fraction of the lifetime error budget left"
            ).set(max(0.0, 1.0 - spent))
        registry.gauge(
            "slo_rounds_observed",
            help="Rounds folded into the SLO tracker").set(rounds)
        page_counter = registry.counter(
            "slo_pages_total",
            help="Transitions into the page state")
        page_counter.inc(max(0.0, pages - page_counter.value))
        warn_counter = registry.counter(
            "slo_warnings_total",
            help="Transitions from ok into the warn state")
        warn_counter.inc(max(0.0, warnings - warn_counter.value))

    # -- persistence ---------------------------------------------------
    def to_dict(self) -> dict:
        """Snapshot payload; :meth:`from_dict` round-trips exactly."""
        with self._lock:
            return {
                "budget": self.budget,
                "degraded_budget": self.degraded_budget,
                "fast_window": self.fast_window,
                "slow_window": self.slow_window,
                "page_burn": self.page_burn,
                "warn_burn": self.warn_burn,
                "entries": [list(entry) for entry in self._entries],
                "state": self.state,
                "rounds": self.rounds,
                "total_slots": self.total_slots,
                "bad_slots": self.bad_slots,
                "allowed_budget": self.allowed_budget,
                "degraded_rounds": self.degraded_rounds,
                "pages": self.pages,
                "warnings": self.warnings,
                "first_warn_round": self.first_warn_round,
                "first_page_round": self.first_page_round,
                "last_round": self.last_round,
            }

    @classmethod
    def from_dict(cls, data: dict) -> "SLOTracker":
        tracker = cls(
            float(data["budget"]),
            degraded_budget=float(data.get("degraded_budget",
                                           data["budget"])),
            fast_window=int(data.get("fast_window",
                                     DEFAULT_FAST_WINDOW)),
            slow_window=int(data.get("slow_window",
                                     DEFAULT_SLOW_WINDOW)),
            page_burn=float(data.get("page_burn", DEFAULT_PAGE_BURN)),
            warn_burn=float(data.get("warn_burn", DEFAULT_WARN_BURN)))
        state = str(data.get("state", "ok"))
        if state not in STATES:
            raise ConfigurationError(
                f"snapshot has unknown SLO state {state!r}")
        for entry in data.get("entries", ()):
            bad, total, allowed = entry
            tracker._entries.append(
                (int(bad), int(total), float(allowed)))
        tracker.state = state
        tracker.rounds = int(data.get("rounds", 0))
        tracker.total_slots = int(data.get("total_slots", 0))
        tracker.bad_slots = int(data.get("bad_slots", 0))
        tracker.allowed_budget = float(data.get("allowed_budget", 0.0))
        tracker.degraded_rounds = int(data.get("degraded_rounds", 0))
        tracker.pages = int(data.get("pages", 0))
        tracker.warnings = int(data.get("warnings", 0))
        for key in ("first_warn_round", "first_page_round",
                    "last_round"):
            value = data.get(key)
            setattr(tracker, key,
                    int(value) if value is not None else None)
        return tracker

    def __repr__(self) -> str:
        return (f"SLOTracker(state={self.state!r}, "
                f"rounds={self.rounds}, "
                f"budget={self.budget:.4g})")


# ----------------------------------------------------------------------
# Offline replay (``repro slo TRACE.jsonl``)
# ----------------------------------------------------------------------

def _rounds_from_records(records) -> list[tuple[int, int, int, bool]]:
    """Per-round ``(round, bad, total, degraded)`` aggregates from a
    trace: ``round_observe`` records (daemon traces) take precedence;
    otherwise ``sweep`` records are summed per round with the degraded
    flag from ``round_dispatch``'s failed-disk list."""
    observed: dict[int, tuple[int, int, bool]] = {}
    swept: dict[int, tuple[int, int]] = {}
    degraded_rounds: set[int] = set()
    for record in records:
        kind = record.get("kind")
        if kind == "round_observe":
            index = int(record["round"])
            observed[index] = (int(record["glitched"]),
                               int(record["requests"]),
                               bool(record["degraded"]))
        elif kind == "sweep":
            index = int(record["round"])
            bad, total = swept.get(index, (0, 0))
            swept[index] = (bad + int(record.get("glitched", 0)),
                            total + int(record.get("served", 0)))
        elif kind == "round_dispatch":
            if record.get("failed_disks"):
                degraded_rounds.add(int(record["round"]))
    if observed:
        return [(index, bad, total, degraded)
                for index, (bad, total, degraded)
                in sorted(observed.items())]
    return [(index, bad, total, index in degraded_rounds)
            for index, (bad, total) in sorted(swept.items())]


def slo_report_from_records(
        records, *, epsilon: float | None = None,
        delta: float | None = None, m: int | None = None,
        g: int | None = None,
        fast_window: int = DEFAULT_FAST_WINDOW,
        slow_window: int = DEFAULT_SLOW_WINDOW,
        page_burn: float = DEFAULT_PAGE_BURN,
        warn_burn: float = DEFAULT_WARN_BURN) -> dict:
    """Replay a recorded trace through a fresh :class:`SLOTracker`.

    Stream-shape parameters fall back to whatever the ``run_start``
    header stamped, then to the paper's defaults -- explicit arguments
    always win.  Returns the report dict the ``repro slo`` command
    renders: totals, worst burns, alert transitions, and the detection
    round of the first page/warn.
    """
    header: dict = {}
    for record in records:
        if record.get("kind") == "run_start":
            header = record
            break

    def resolve(value, key, default):
        if value is not None:
            return value
        stamped = header.get(key)
        return stamped if stamped is not None else default

    epsilon = float(resolve(epsilon, "epsilon", 0.01))
    delta = float(resolve(delta, "delta", 0.01))
    m = int(resolve(m, "m", 1200))
    g = int(resolve(g, "g", 12))
    budget = slot_glitch_budget(m, g, epsilon)
    tracker = SLOTracker(budget, degraded_budget=delta,
                         fast_window=fast_window,
                         slow_window=slow_window,
                         page_burn=page_burn, warn_burn=warn_burn)
    rounds = _rounds_from_records(records)
    transitions: list[dict] = []
    max_fast = 0.0
    max_fast_round: int | None = None
    previous = tracker.state
    for index, bad, total, degraded in rounds:
        state = tracker.observe(bad, total, degraded=degraded,
                                round_index=index)
        fast = tracker.fast_burn
        if math.isfinite(fast) and fast > max_fast:
            max_fast, max_fast_round = fast, index
        if state != previous:
            transitions.append({
                "round": index, "from": previous, "to": state,
                "fast_burn": fast if math.isfinite(fast) else None,
                "slow_burn": (tracker.slow_burn
                              if math.isfinite(tracker.slow_burn)
                              else None)})
            previous = state
    report = tracker.summary()
    report.update({
        "epsilon": epsilon,
        "delta": delta,
        "m": m,
        "g": g,
        "observed_rounds": len(rounds),
        "max_fast_burn": max_fast,
        "max_fast_burn_round": max_fast_round,
        "transitions": transitions,
    })
    return report
