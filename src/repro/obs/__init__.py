"""Zero-dependency observability: metrics, tracing, run telemetry.

The analytic layer promises a *quantitative* guarantee -- the Chernoff
bound on ``p_late(N, t)`` -- and this package supplies the measurement
substrate to hold a live run against it:

- :mod:`repro.obs.metrics` -- a process-wide registry of named
  counters, gauges and fixed-bucket histograms with snapshot/reset,
  Prometheus-style text exposition and JSON export;
- :mod:`repro.obs.trace` -- a structured tracer recording typed event
  records (round dispatched, sweep served, fragment glitched, stream
  admitted/shed, fault fired, bound solved, worker task ran) to an
  in-memory ring buffer with an optional JSONL sink.  A disabled
  tracer costs its callers one attribute check per event;
- :mod:`repro.obs.telemetry` -- :class:`RunTelemetry`, which joins a
  recorded trace's observed per-round service times and glitch counts
  against the model's predicted ``p_late`` and flags the phases whose
  empirical tail exceeds the bound.

Everything here imports only the standard library plus
:mod:`repro.errors`, so every other layer (``core``, ``sim``,
``server``, ``cache``, ``parallel``) can depend on it without cycles.
See ``docs/OBSERVABILITY.md`` for the metric-name catalogue and the
trace record schema.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    reset_registry,
)
from repro.obs.telemetry import (
    BoundComparison,
    ClassLatency,
    RunTelemetry,
    SweepRecord,
)
from repro.obs.trace import (
    EVENT_KINDS,
    NULL_TRACER,
    TRACE_SCHEMA_VERSION,
    Tracer,
    get_tracer,
    read_trace,
    set_tracer,
    validate_record,
    validate_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "reset_registry",
    "EVENT_KINDS",
    "NULL_TRACER",
    "TRACE_SCHEMA_VERSION",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "read_trace",
    "validate_record",
    "validate_trace",
    "BoundComparison",
    "ClassLatency",
    "RunTelemetry",
    "SweepRecord",
]
