"""Zero-dependency observability: metrics, tracing, run telemetry.

The analytic layer promises a *quantitative* guarantee -- the Chernoff
bound on ``p_late(N, t)`` -- and this package supplies the measurement
substrate to hold a live run against it:

- :mod:`repro.obs.metrics` -- a process-wide registry of named
  counters, gauges and fixed-bucket histograms with snapshot/reset,
  Prometheus-style text exposition and JSON export;
- :mod:`repro.obs.trace` -- a structured tracer recording typed event
  records (round dispatched, sweep served, fragment glitched, stream
  admitted/shed, fault fired, bound solved, worker task ran) to an
  in-memory ring buffer with an optional JSONL sink.  A disabled
  tracer costs its callers one attribute check per event;
- :mod:`repro.obs.telemetry` -- :class:`RunTelemetry`, which joins a
  recorded trace's observed per-round service times and glitch counts
  against the model's predicted ``p_late`` and flags the phases whose
  empirical tail exceeds the bound;
- :mod:`repro.obs.spans` -- causally-linked spans (trace-id /
  parent-id, monotonic durations, attributes) emitted through the same
  tracer, with ``X-Repro-Trace`` header propagation so one JSONL file
  reconstructs a full client -> HTTP -> admission -> ledger tree;
- :mod:`repro.obs.slo` -- the paper's ε re-cast as a per-round error
  budget: :func:`slot_glitch_budget` inverts the exact binomial tail
  and :class:`SLOTracker` raises multi-window burn-rate alerts.

Everything here imports only the standard library plus
:mod:`repro.errors`, so every other layer (``core``, ``sim``,
``server``, ``cache``, ``parallel``) can depend on it without cycles.
See ``docs/OBSERVABILITY.md`` for the metric-name catalogue and the
trace record schema.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    reset_registry,
)
from repro.obs.slo import (
    SLOTracker,
    slo_report_from_records,
    slot_glitch_budget,
)
from repro.obs.spans import (
    NOOP_SPAN,
    TRACE_HEADER,
    Span,
    SpanContext,
    SpanNode,
    build_span_trees,
    critical_path,
    current_span,
    format_trace_header,
    new_id,
    parse_trace_header,
    render_span_tree,
    start_span,
)
from repro.obs.telemetry import (
    BoundComparison,
    ClassLatency,
    RunTelemetry,
    SweepRecord,
)
from repro.obs.trace import (
    EVENT_KINDS,
    NULL_TRACER,
    TRACE_SCHEMA_VERSION,
    Tracer,
    get_tracer,
    publish_trace_metrics,
    read_trace,
    read_trace_lenient,
    set_tracer,
    validate_record,
    validate_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "reset_registry",
    "EVENT_KINDS",
    "NULL_TRACER",
    "TRACE_SCHEMA_VERSION",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "read_trace",
    "read_trace_lenient",
    "publish_trace_metrics",
    "validate_record",
    "validate_trace",
    "NOOP_SPAN",
    "TRACE_HEADER",
    "Span",
    "SpanContext",
    "SpanNode",
    "build_span_trees",
    "critical_path",
    "current_span",
    "format_trace_header",
    "new_id",
    "parse_trace_header",
    "render_span_tree",
    "start_span",
    "SLOTracker",
    "slo_report_from_records",
    "slot_glitch_budget",
    "BoundComparison",
    "ClassLatency",
    "RunTelemetry",
    "SweepRecord",
]
