"""Named counters, gauges and fixed-bucket histograms.

A :class:`MetricsRegistry` is a flat namespace of metrics keyed by
``(name, labels)``.  Metrics are created on first access and returned
by identity afterwards, so instrumented code can call
``registry.counter("requests_total").inc()`` on the hot path without
holding references.  The registry snapshots to a plain dict, exports
Prometheus-style text exposition and JSON, and resets in place.

Updates are plain attribute arithmetic (no locks): the simulator and
server are single-threaded, and the CPython GIL makes the individual
``+=`` on a float safe enough for the cross-thread cases that exist
(cache counters under a pool).  The registry's *creation* path is
locked so two threads asking for the same metric get the same object.
"""

from __future__ import annotations

import bisect
import json
import math
import re
import threading
from pathlib import Path

from repro.errors import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
    "get_registry",
    "set_registry",
    "reset_registry",
]

_NAME_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")
_LABEL_NAME_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")

#: Default histogram buckets for durations in seconds: microseconds up
#: to minutes, roughly logarithmic.  Chosen once so that every timing
#: histogram in the repo is comparable.
DEFAULT_TIME_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


def _check_name(name: str) -> str:
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise ConfigurationError(
            f"metric name must match [a-zA-Z_][a-zA-Z0-9_]*, got {name!r}")
    return name


def _label_key(labels: dict | None) -> tuple:
    if not labels:
        return ()
    pairs = tuple(sorted((str(k), str(v)) for k, v in labels.items()))
    for key, _value in pairs:
        if not _LABEL_NAME_RE.match(key):
            raise ConfigurationError(
                f"label name must match [a-zA-Z_][a-zA-Z0-9_]*, "
                f"got {key!r}")
    return pairs


def _escape_label_value(value: str) -> str:
    """Prometheus exposition-format escaping for quoted label values:
    backslash, double quote and newline (in that order)."""
    return (value.replace("\\", "\\\\")
                 .replace('"', '\\"')
                 .replace("\n", "\\n"))


def _escape_help(text: str) -> str:
    """Escaping for ``# HELP`` text: backslash and newline only (the
    exposition format leaves quotes alone outside label values)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _render_labels(labels: tuple, extra: tuple = ()) -> str:
    pairs = labels + extra
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in pairs)
    return "{" + inner + "}"


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: tuple = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc {amount!r})")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value:g})"


class Gauge:
    """A value that can go up and down (queue depth, active streams)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: tuple = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the gauge by ``amount`` (may be negative)."""
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Shorthand for ``inc(-amount)``."""
        self.value -= amount

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value:g})"


class Histogram:
    """Fixed-bucket histogram (cumulative on export, like Prometheus).

    ``bounds`` are the *upper* bucket edges; an implicit ``+Inf`` bucket
    catches the tail.  ``observe`` is O(log buckets) via bisect.
    """

    __slots__ = ("name", "labels", "bounds", "counts", "sum", "count",
                 "min", "max")

    def __init__(self, name: str, bounds=DEFAULT_TIME_BUCKETS,
                 labels: tuple = ()) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds or any(not math.isfinite(b) for b in bounds):
            raise ConfigurationError(
                f"histogram {name!r} needs finite bucket bounds, "
                f"got {bounds!r}")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ConfigurationError(
                f"histogram {name!r} bounds must be strictly increasing, "
                f"got {bounds!r}")
        self.name = name
        self.labels = labels
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1 for the +Inf bucket
        self.sum = 0.0
        self.count = 0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Mean of all observations (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper edge of the bucket
        containing the ``q``-quantile; the exact max for ``q = 1``)."""
        if not (0.0 <= q <= 1.0):
            raise ConfigurationError(f"quantile must be in [0, 1], got {q!r}")
        if self.count == 0:
            return math.nan
        if q == 1.0:
            return self.max
        target = q * self.count
        running = 0
        for bound, n in zip(self.bounds, self.counts):
            running += n
            if running >= target:
                return bound
        return self.max

    def __repr__(self) -> str:
        return (f"Histogram({self.name!r}, n={self.count}, "
                f"mean={self.mean:.6g})")


class MetricsRegistry:
    """A flat, process-local namespace of metrics.

    The same ``(name, labels)`` pair always returns the same metric
    object; asking for an existing name with a different metric type is
    a configuration error (it would silently fork the series).
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, tuple], object] = {}
        self._types: dict[str, type] = {}
        self._help: dict[str, str] = {}
        self._lock = threading.Lock()

    # -- creation ------------------------------------------------------
    def _get(self, cls, name: str, labels: dict | None, help: str | None,
             **kwargs):
        _check_name(name)
        key = (name, _label_key(labels))
        if help and name not in self._help:
            with self._lock:
                self._help.setdefault(name, str(help))
        metric = self._metrics.get(key)
        if metric is not None:
            if type(metric) is not cls:
                raise ConfigurationError(
                    f"metric {name!r} is already registered as "
                    f"{type(metric).__name__}, not {cls.__name__}")
            return metric
        with self._lock:
            metric = self._metrics.get(key)
            if metric is not None:
                return metric
            existing = self._types.get(name)
            if existing is not None and existing is not cls:
                raise ConfigurationError(
                    f"metric {name!r} is already registered as "
                    f"{existing.__name__}, not {cls.__name__}")
            metric = cls(name, labels=key[1], **kwargs)
            self._metrics[key] = metric
            self._types[name] = cls
            return metric

    def counter(self, name: str, labels: dict | None = None,
                help: str | None = None) -> Counter:
        """The counter ``name`` (created on first access); ``help``
        becomes the series' ``# HELP`` text on first use."""
        return self._get(Counter, name, labels, help)

    def gauge(self, name: str, labels: dict | None = None,
              help: str | None = None) -> Gauge:
        """The gauge ``name`` (created on first access)."""
        return self._get(Gauge, name, labels, help)

    def histogram(self, name: str, labels: dict | None = None,
                  bounds=DEFAULT_TIME_BUCKETS,
                  help: str | None = None) -> Histogram:
        """The histogram ``name`` (created on first access; ``bounds``
        only applies at creation)."""
        return self._get(Histogram, name, labels, help, bounds=bounds)

    # -- introspection -------------------------------------------------
    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self):
        return iter(sorted(self._metrics.values(),
                           key=lambda m: (m.name, m.labels)))

    def snapshot(self) -> dict:
        """Plain-dict copy of every metric at this instant."""
        out: dict = {}
        for metric in self:
            entry: dict = {"type": type(metric).__name__.lower()}
            if metric.labels:
                entry["labels"] = dict(metric.labels)
            if isinstance(metric, Histogram):
                entry.update(
                    count=metric.count, sum=metric.sum, mean=metric.mean,
                    min=metric.min if metric.count else None,
                    max=metric.max if metric.count else None,
                    buckets={f"{b:g}": c for b, c in
                             zip(metric.bounds + (math.inf,),
                                 metric.counts)})
            else:
                entry["value"] = metric.value
            key = metric.name
            if metric.labels:
                key += _render_labels(metric.labels)
            out[key] = entry
        return out

    def reset(self) -> None:
        """Drop every metric (names become free again)."""
        with self._lock:
            self._metrics.clear()
            self._types.clear()
            self._help.clear()

    # -- export --------------------------------------------------------
    def to_prometheus(self) -> str:
        """Prometheus text exposition (one line per sample), with
        ``# HELP``/``# TYPE`` headers and label-value escaping per the
        text-format spec -- the daemon serves this to real scrapers."""
        lines: list[str] = []
        seen_types: set[str] = set()
        for metric in self:
            kind = type(metric).__name__.lower()
            if metric.name not in seen_types:
                help_text = self._help.get(metric.name)
                if help_text:
                    lines.append(f"# HELP {metric.name} "
                                 f"{_escape_help(help_text)}")
                lines.append(f"# TYPE {metric.name} {kind}")
                seen_types.add(metric.name)
            if isinstance(metric, Histogram):
                running = 0
                for bound, count in zip(metric.bounds, metric.counts):
                    running += count
                    lines.append(
                        f"{metric.name}_bucket"
                        f"{_render_labels(metric.labels, (('le', f'{bound:g}'),))}"
                        f" {running}")
                lines.append(
                    f"{metric.name}_bucket"
                    f"{_render_labels(metric.labels, (('le', '+Inf'),))}"
                    f" {metric.count}")
                lines.append(f"{metric.name}_sum"
                             f"{_render_labels(metric.labels)}"
                             f" {metric.sum:g}")
                lines.append(f"{metric.name}_count"
                             f"{_render_labels(metric.labels)}"
                             f" {metric.count}")
            else:
                lines.append(f"{metric.name}"
                             f"{_render_labels(metric.labels)}"
                             f" {metric.value:g}")
        return "\n".join(lines) + ("\n" if lines else "")

    def to_json(self) -> str:
        """JSON document of :meth:`snapshot`."""
        return json.dumps(self.snapshot(), indent=2, sort_keys=True,
                          default=str)

    def write_json(self, path) -> Path:
        """Write :meth:`to_json` to ``path``; returns the path."""
        target = Path(path)
        target.write_text(self.to_json() + "\n", encoding="utf-8")
        return target


_REGISTRY = MetricsRegistry()
_REGISTRY_LOCK = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the process-wide registry (test isolation); returns it."""
    global _REGISTRY
    if not isinstance(registry, MetricsRegistry):
        raise ConfigurationError(
            f"expected a MetricsRegistry, got {registry!r}")
    with _REGISTRY_LOCK:
        _REGISTRY = registry
    return registry


def reset_registry() -> None:
    """Drop every metric in the process-wide registry."""
    _REGISTRY.reset()
