"""Run telemetry: observed behaviour vs the analytic guarantee.

:class:`RunTelemetry` reconstructs, from a recorded trace (see
:mod:`repro.obs.trace`), the quantities the paper's guarantee speaks
about -- per-(disk, round) sweep service times, round overruns,
per-round glitch counts -- and joins them against the analytic
``b_late`` bounds the run was admitted under.  The producing side
stamps those bounds into the ``run_start`` header (the CLI's
``simulate --faults --trace`` path does), so a trace file is
self-contained: ``repro observe trace.jsonl`` needs no model rebuild.

Rounds are classified into *phases* by the fault state recorded at
dispatch time: a round is ``degraded`` when any disk was failed when
its batches were built, ``healthy`` otherwise.  The guarantee is
checked per phase -- healthy rounds against the healthy ``b_late``
bound, degraded rounds against the degraded-mode (shed doubled-batch)
bound -- and phases whose empirical overrun rate exceeds their bound
are flagged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SweepRecord", "RoundInfo", "BoundComparison",
           "ClassLatency", "RunTelemetry", "bound_table_from_estimate"]


@dataclass(frozen=True)
class SweepRecord:
    """One disk's SCAN sweep of one round, as recorded in the trace."""

    round_index: int
    disk: int
    service: float          # sweep service time in seconds
    late: bool              # True when the sweep overran its deadline
    served: int             # physical requests served on time
    glitched: int           # physical requests late or abandoned

    @property
    def requests(self) -> int:
        """Physical requests in the sweep's batch."""
        return self.served + self.glitched


@dataclass
class RoundInfo:
    """Per-round state joined from dispatch and sweep records."""

    round_index: int
    degraded: bool = False
    active_streams: int = 0
    failed_disks: tuple[int, ...] = ()
    glitches: int = 0
    sweeps: list[SweepRecord] = field(default_factory=list)

    @property
    def max_service(self) -> float:
        """Slowest sweep of the round (0.0 when no disk had work)."""
        return max((s.service for s in self.sweeps), default=0.0)

    @property
    def late(self) -> bool:
        """Whether any disk's sweep overran in this round."""
        return any(s.late for s in self.sweeps)


@dataclass
class ClassLatency:
    """Fragment-completion latencies of one stream class.

    Latency is measured from the round boundary the fragment's batch
    was dispatched at to the simulation instant the transfer finished
    (the server's ``latency_batch`` records carry it per delivered
    fragment).  Kept as raw samples -- traces are ring-bounded -- so
    any quantile is exact.
    """

    klass: str
    samples: list[float] = field(default_factory=list)
    streams: set[int] = field(default_factory=set)

    @property
    def count(self) -> int:
        """Delivered fragments observed for this class."""
        return len(self.samples)

    @property
    def mean(self) -> float:
        """Mean completion latency in seconds (0.0 when empty)."""
        if not self.samples:
            return 0.0
        return sum(self.samples) / len(self.samples)

    @property
    def max(self) -> float:
        """Slowest completion in seconds (0.0 when empty)."""
        return max(self.samples, default=0.0)

    def quantile(self, q: float) -> float:
        """Exact sample quantile (nearest-rank with interpolation)."""
        if not (0.0 <= q <= 1.0):
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        position = q * (len(ordered) - 1)
        lower = int(position)
        upper = min(lower + 1, len(ordered) - 1)
        fraction = position - lower
        return ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction

    def histogram(self, bounds) -> list[int]:
        """Counts per bucket: ``counts[i]`` holds samples <=
        ``bounds[i]``, with one overflow bucket appended."""
        edges = sorted(float(b) for b in bounds)
        counts = [0] * (len(edges) + 1)
        for sample in self.samples:
            for index, edge in enumerate(edges):
                if sample <= edge:
                    counts[index] += 1
                    break
            else:
                counts[-1] += 1
        return counts


@dataclass(frozen=True)
class BoundComparison:
    """Observed overrun rate of one phase against its analytic bound."""

    phase: str              # "healthy" | "degraded"
    rounds: int             # rounds in the phase
    disk_rounds: int        # (disk, round) sweeps observed
    late_disk_rounds: int   # sweeps that overran
    observed_p_late: float
    bound: float | None     # analytic b_late; None when not recorded

    @property
    def within_bound(self) -> bool | None:
        """True/False against the bound; None when no bound is known
        or the phase is empty."""
        if self.bound is None or self.disk_rounds == 0:
            return None
        return self.observed_p_late <= self.bound


def bound_table_from_estimate(estimate, bounds) -> list[BoundComparison]:
    """Observed vs analytic ``p_late`` for a kernel-path estimate.

    The statistical engine produces a
    :class:`~repro.server.simulation.FarmRoundsEstimate` rather than a
    trace, but its per-phase records carry exactly the counts a
    :class:`BoundComparison` needs; ``bounds`` maps phase names to
    analytic ``b_late`` values (``None`` entries -- e.g. slow-disk
    phases with no analytic transform -- yield undecided comparisons,
    mirroring a trace with no recorded bound).  One row per estimate
    phase, in timeline order, so the compiled-scenario CLI path and
    ``repro observe`` render the same table shape.
    """
    table = []
    for phase in estimate.phases:
        bound = bounds.get(phase.name) if bounds else None
        table.append(BoundComparison(
            phase=phase.name, rounds=phase.rounds,
            disk_rounds=phase.disk_rounds,
            late_disk_rounds=phase.late_disk_rounds,
            observed_p_late=phase.p_late,
            bound=float(bound) if bound is not None else None))
    return table


class RunTelemetry:
    """Joined view over one recorded run.

    Build with :meth:`from_records` (a list of trace record dicts, e.g.
    from :func:`repro.obs.trace.read_trace`).  All accessors are cheap;
    the join happens once at construction.
    """

    def __init__(self, header: dict, rounds: dict[int, RoundInfo],
                 faults: list[dict], sheds: list[dict],
                 latencies: dict[str, ClassLatency] | None = None
                 ) -> None:
        self.header = header
        self.rounds = rounds
        self.faults = faults
        self.sheds = sheds
        #: Per-stream-class fragment-completion latency accumulators,
        #: keyed by class label (from ``latency_batch`` records).
        self.latencies = latencies if latencies is not None else {}

    # ------------------------------------------------------------------
    @classmethod
    def from_records(cls, records) -> "RunTelemetry":
        """Join a trace into per-round telemetry.

        Tolerates traces without a header (all bounds then unknown) so
        partial ring-buffer dumps still summarise.
        """
        header: dict = {}
        rounds: dict[int, RoundInfo] = {}
        faults: list[dict] = []
        sheds: list[dict] = []
        latencies: dict[str, ClassLatency] = {}

        def info(round_index: int) -> RoundInfo:
            entry = rounds.get(round_index)
            if entry is None:
                entry = rounds[round_index] = RoundInfo(round_index)
            return entry

        for record in records:
            kind = record.get("kind")
            if kind == "run_start":
                header = dict(record)
            elif kind == "round_dispatch":
                entry = info(int(record["round"]))
                failed = tuple(record.get("failed_disks") or ())
                entry.failed_disks = failed
                entry.degraded = bool(failed)
                entry.active_streams = int(
                    record.get("active_streams", 0))
            elif kind == "sweep":
                entry = info(int(record["round"]))
                entry.sweeps.append(SweepRecord(
                    round_index=int(record["round"]),
                    disk=int(record["disk"]),
                    service=float(record["service"]),
                    late=bool(record["late"]),
                    served=int(record["served"]),
                    glitched=int(record["glitched"])))
            elif kind == "fragment_glitch":
                info(int(record["round"])).glitches += 1
            elif kind == "latency_batch":
                streams = record.get("streams") or ()
                values = record.get("latencies") or ()
                classes = record.get("classes") or ()
                for position, stream in enumerate(streams):
                    if position >= len(values):
                        break
                    klass = (str(classes[position])
                             if position < len(classes) else "standard")
                    entry = latencies.get(klass)
                    if entry is None:
                        entry = latencies[klass] = ClassLatency(klass)
                    entry.samples.append(float(values[position]))
                    entry.streams.add(int(stream))
            elif kind == "fault":
                faults.append(record)
            elif kind in ("stream_shed", "stream_resume"):
                sheds.append(record)
        return cls(header, rounds, faults, sheds, latencies)

    # ------------------------------------------------------------------
    @property
    def round_count(self) -> int:
        """Rounds with any recorded activity."""
        return len(self.rounds)

    def sweeps(self) -> list[SweepRecord]:
        """Every recorded sweep, in (round, disk) order."""
        out = []
        for round_index in sorted(self.rounds):
            out.extend(sorted(self.rounds[round_index].sweeps,
                              key=lambda s: s.disk))
        return out

    def glitch_timeline(self) -> list[tuple[int, int]]:
        """``(round, glitch count)`` for every round with glitches."""
        return [(r, self.rounds[r].glitches)
                for r in sorted(self.rounds) if self.rounds[r].glitches]

    def top_latency(self, k: int = 10) -> list[SweepRecord]:
        """The ``k`` slowest sweeps -- where the run spent its rounds."""
        return sorted(self.sweeps(), key=lambda s: s.service,
                      reverse=True)[:max(0, int(k))]

    def latency_summary(self) -> list[ClassLatency]:
        """Per-stream-class latency accumulators, largest class first
        (empty when the trace carries no ``latency_batch`` records)."""
        return sorted(self.latencies.values(),
                      key=lambda c: (-c.count, c.klass))

    def phase_rounds(self, degraded: bool) -> list[RoundInfo]:
        """Rounds of one phase, ascending."""
        return [self.rounds[r] for r in sorted(self.rounds)
                if self.rounds[r].degraded == degraded]

    # ------------------------------------------------------------------
    def bound_table(self) -> list[BoundComparison]:
        """Observed vs analytic ``p_late`` per phase.

        The healthy phase compares against the header's
        ``bound_healthy``; the degraded phase against
        ``bound_degraded``.  Missing header fields yield ``None``
        bounds (comparison undecided, not failed).
        """
        table = []
        for phase, degraded, bound_key in (
                ("healthy", False, "bound_healthy"),
                ("degraded", True, "bound_degraded")):
            rounds = self.phase_rounds(degraded)
            sweeps = [s for info in rounds for s in info.sweeps]
            late = sum(1 for s in sweeps if s.late)
            bound = self.header.get(bound_key)
            table.append(BoundComparison(
                phase=phase, rounds=len(rounds), disk_rounds=len(sweeps),
                late_disk_rounds=late,
                observed_p_late=late / len(sweeps) if sweeps else 0.0,
                bound=float(bound) if bound is not None else None))
        return table

    def windowed_bound_table(self, window: int
                             ) -> list[BoundComparison]:
        """Observed vs analytic ``p_late`` over trailing round windows.

        Splits the recorded rounds (in timeline order) into
        consecutive windows of ``window`` rounds and compares each
        against the bound of its dominant phase -- the same gap the
        live controller's :class:`~repro.control.window.
        TelemetryWindow` watches, reconstructed offline from a trace.
        A window mixing healthy and degraded rounds is labelled by
        whichever phase contributes more sweeps and compared against
        that phase's bound, so a drift that only violates *locally*
        (invisible in the whole-run average) shows up in its window's
        row.  Rows are named ``"rounds[a..b]"``.
        """
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window!r}")
        ordered = [self.rounds[r] for r in sorted(self.rounds)]
        table = []
        for start in range(0, len(ordered), window):
            chunk = ordered[start:start + window]
            degraded_sweeps = sum(len(i.sweeps) for i in chunk
                                  if i.degraded)
            healthy_sweeps = sum(len(i.sweeps) for i in chunk
                                 if not i.degraded)
            degraded = degraded_sweeps > healthy_sweeps
            bound = self.header.get(
                "bound_degraded" if degraded else "bound_healthy")
            sweeps = [s for info in chunk for s in info.sweeps]
            late = sum(1 for s in sweeps if s.late)
            first = chunk[0].round_index
            last = chunk[-1].round_index
            table.append(BoundComparison(
                phase=f"rounds[{first}..{last}]",
                rounds=len(chunk), disk_rounds=len(sweeps),
                late_disk_rounds=late,
                observed_p_late=late / len(sweeps) if sweeps else 0.0,
                bound=float(bound) if bound is not None else None))
        return table

    def violations(self) -> list[BoundComparison]:
        """Phases whose empirical overrun rate exceeds their bound."""
        return [row for row in self.bound_table()
                if row.within_bound is False]

    def late_rounds(self) -> list[int]:
        """Rounds in which at least one sweep overran."""
        return [r for r in sorted(self.rounds) if self.rounds[r].late]

    def __repr__(self) -> str:
        return (f"RunTelemetry(rounds={self.round_count}, "
                f"faults={len(self.faults)}, "
                f"glitches={sum(i.glitches for i in self.rounds.values())})")
