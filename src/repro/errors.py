"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch the whole family with a single
``except`` clause while still being able to distinguish configuration
mistakes from numerical-model failures and admission rejections.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "ModelError",
    "DistributionError",
    "ChernoffError",
    "AdmissionError",
    "SimulationError",
    "ParallelExecutionError",
    "GeometryError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError, ValueError):
    """A user-supplied parameter set is inconsistent or out of range.

    Raised eagerly at object-construction time (disks with zero zones,
    negative round lengths, variance of zero where a coefficient of
    variation is required, ...), so that model evaluation code can assume
    validated inputs.
    """


class ModelError(ReproError):
    """The analytic model could not be evaluated.

    This covers structural problems such as requesting the moment
    generating function of a distribution that has none (e.g. an
    untruncated Pareto), or composing transforms with incompatible
    domains.
    """


class DistributionError(ModelError):
    """A probability-distribution operation is undefined or failed."""


class ChernoffError(ModelError):
    """The Chernoff-bound optimisation failed to produce a finite bound."""


class AdmissionError(ReproError):
    """A stream could not be admitted by the admission controller."""

    def __init__(self, message: str, *, active_streams: int | None = None,
                 limit: int | None = None) -> None:
        super().__init__(message)
        #: Number of streams active when the request was rejected.
        self.active_streams = active_streams
        #: The controller's stream limit (``N_max``) at rejection time.
        self.limit = limit


class SimulationError(ReproError):
    """The discrete-event or Monte-Carlo simulator detected an
    inconsistent internal state (e.g. an event scheduled in the past)."""


class ParallelExecutionError(ReproError):
    """A worker of the process-parallel fan-out failed.

    Raised by :mod:`repro.parallel` in place of the raw pool traceback:
    the pool is shut down, outstanding tasks are cancelled and every
    shared-memory block is released before this surfaces.  The original
    worker exception is attached as ``__cause__``.
    """


class GeometryError(ConfigurationError):
    """A disk-geometry lookup was out of range (bad cylinder, sector or
    zone index)."""
