"""Stateful single-disk drive simulator.

The drive tracks its arm position; serving a request costs a seek from
the current cylinder, a rotational latency drawn ``Uniform(0, ROT)``, and
a transfer at the zone's rate.  This is the microscopic model behind the
"detailed simulations" of §4; the vectorised Monte-Carlo path in
:mod:`repro.server.simulation` reproduces the same arithmetic in bulk and
is cross-validated against this class in the tests.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.disk.geometry import DiskGeometry
from repro.disk.request import DiskRequest, ServiceBreakdown
from repro.disk.seek import SeekCurve
from repro.disk.sweepkernel import plan_sweep
from repro.errors import GeometryError

__all__ = ["DiskDrive"]


class DiskDrive:
    """A zoned disk drive with an arm.

    Parameters
    ----------
    geometry:
        The disk's cylinder/zone layout.
    seek_curve:
        The seek-time function.
    initial_cylinder:
        Arm parking position at construction.
    """

    __slots__ = ("geometry", "seek_curve", "arm_cylinder", "busy_time",
                 "served")

    def __init__(self, geometry: DiskGeometry, seek_curve: SeekCurve,
                 initial_cylinder: int = 0) -> None:
        if not (0 <= initial_cylinder < geometry.cylinders):
            raise GeometryError(
                f"initial cylinder {initial_cylinder} out of range "
                f"[0, {geometry.cylinders})")
        self.geometry = geometry
        self.seek_curve = seek_curve
        self.arm_cylinder = int(initial_cylinder)
        #: Cumulative busy time since construction (seconds).
        self.busy_time = 0.0
        #: Number of requests served since construction.
        self.served = 0

    # ------------------------------------------------------------------
    @property
    def rot(self) -> float:
        """Revolution time of the spindle (seconds)."""
        return self.geometry.zone_map.rot

    def seek_time_to(self, cylinder: int) -> float:
        """Seek time from the current arm position to ``cylinder``."""
        if not (0 <= cylinder < self.geometry.cylinders):
            raise GeometryError(
                f"cylinder {cylinder} out of range "
                f"[0, {self.geometry.cylinders})")
        return float(self.seek_curve(abs(cylinder - self.arm_cylinder)))

    def transfer_time(self, size: float, cylinder: int) -> float:
        """Transfer time of ``size`` bytes at ``cylinder``'s zone rate.

        Transfers spanning several tracks of the zone are charged at the
        sustained zone rate; head/track-switch overheads are folded into
        the rotational-latency term, as in the paper's model.
        """
        rate = float(self.geometry.rate_of_cylinder(cylinder))
        return size / rate

    # ------------------------------------------------------------------
    def serve(self, request: DiskRequest,
              rng: np.random.Generator) -> ServiceBreakdown:
        """Serve one request, moving the arm and accumulating busy time.

        Returns the seek/rotation/transfer breakdown.
        """
        seek = self.seek_time_to(request.cylinder)
        rotation = float(rng.uniform(0.0, self.rot))
        transfer = self.transfer_time(request.size, request.cylinder)
        self.arm_cylinder = request.cylinder
        breakdown = ServiceBreakdown(seek=seek, rotation=rotation,
                                     transfer=transfer)
        self.busy_time += breakdown.total
        self.served += 1
        return breakdown

    # ------------------------------------------------------------------
    def plan_round(self, ordered: Sequence[DiskRequest]
                   ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised precompute of one round's deterministic costs.

        ``ordered`` is the round's batch in serve order; the returned
        ``(seeks, transfers)`` arrays are aligned with it and computed
        from the *current* arm position.  Drawing nothing random, the
        plan stays valid for whatever prefix of the batch an aborted
        sweep actually serves; feed its entries to
        :meth:`serve_planned` in order.
        """
        count = len(ordered)
        cylinders = np.fromiter((r.cylinder for r in ordered),
                                dtype=np.int64, count=count)
        sizes = np.fromiter((r.size for r in ordered), dtype=float,
                            count=count)
        return plan_sweep(self.geometry, self.seek_curve,
                          self.arm_cylinder, cylinders, sizes)

    def serve_planned(self, request: DiskRequest, seek: float,
                      transfer: float,
                      rng: np.random.Generator) -> ServiceBreakdown:
        """Serve one request whose seek/transfer were precomputed by
        :meth:`plan_round`.

        Byte-identical to :meth:`serve` -- the planned values match the
        scalar arithmetic bit for bit and the rotational latency is
        drawn here, scalar, in serve order, so abandoned requests never
        consume the RNG.
        """
        rotation = float(rng.uniform(0.0, self.rot))
        self.arm_cylinder = request.cylinder
        breakdown = ServiceBreakdown(seek=seek, rotation=rotation,
                                     transfer=transfer)
        self.busy_time += breakdown.total
        self.served += 1
        return breakdown

    def park(self, cylinder: int = 0) -> None:
        """Move the arm without serving (no time charged)."""
        if not (0 <= cylinder < self.geometry.cylinders):
            raise GeometryError(
                f"cylinder {cylinder} out of range "
                f"[0, {self.geometry.cylinders})")
        self.arm_cylinder = int(cylinder)

    def __repr__(self) -> str:
        return (f"DiskDrive(arm={self.arm_cylinder}, served={self.served}, "
                f"busy={self.busy_time:.3f}s)")
