"""Stateful single-disk drive simulator.

The drive tracks its arm position; serving a request costs a seek from
the current cylinder, a rotational latency drawn ``Uniform(0, ROT)``, and
a transfer at the zone's rate.  This is the microscopic model behind the
"detailed simulations" of §4; the vectorised Monte-Carlo path in
:mod:`repro.server.simulation` reproduces the same arithmetic in bulk and
is cross-validated against this class in the tests.
"""

from __future__ import annotations

import numpy as np

from repro.disk.geometry import DiskGeometry
from repro.disk.request import DiskRequest, ServiceBreakdown
from repro.disk.seek import SeekCurve
from repro.errors import GeometryError

__all__ = ["DiskDrive"]


class DiskDrive:
    """A zoned disk drive with an arm.

    Parameters
    ----------
    geometry:
        The disk's cylinder/zone layout.
    seek_curve:
        The seek-time function.
    initial_cylinder:
        Arm parking position at construction.
    """

    def __init__(self, geometry: DiskGeometry, seek_curve: SeekCurve,
                 initial_cylinder: int = 0) -> None:
        if not (0 <= initial_cylinder < geometry.cylinders):
            raise GeometryError(
                f"initial cylinder {initial_cylinder} out of range "
                f"[0, {geometry.cylinders})")
        self.geometry = geometry
        self.seek_curve = seek_curve
        self.arm_cylinder = int(initial_cylinder)
        #: Cumulative busy time since construction (seconds).
        self.busy_time = 0.0
        #: Number of requests served since construction.
        self.served = 0

    # ------------------------------------------------------------------
    @property
    def rot(self) -> float:
        """Revolution time of the spindle (seconds)."""
        return self.geometry.zone_map.rot

    def seek_time_to(self, cylinder: int) -> float:
        """Seek time from the current arm position to ``cylinder``."""
        if not (0 <= cylinder < self.geometry.cylinders):
            raise GeometryError(
                f"cylinder {cylinder} out of range "
                f"[0, {self.geometry.cylinders})")
        return float(self.seek_curve(abs(cylinder - self.arm_cylinder)))

    def transfer_time(self, size: float, cylinder: int) -> float:
        """Transfer time of ``size`` bytes at ``cylinder``'s zone rate.

        Transfers spanning several tracks of the zone are charged at the
        sustained zone rate; head/track-switch overheads are folded into
        the rotational-latency term, as in the paper's model.
        """
        rate = float(self.geometry.rate_of_cylinder(cylinder))
        return size / rate

    # ------------------------------------------------------------------
    def serve(self, request: DiskRequest,
              rng: np.random.Generator) -> ServiceBreakdown:
        """Serve one request, moving the arm and accumulating busy time.

        Returns the seek/rotation/transfer breakdown.
        """
        seek = self.seek_time_to(request.cylinder)
        rotation = float(rng.uniform(0.0, self.rot))
        transfer = self.transfer_time(request.size, request.cylinder)
        self.arm_cylinder = request.cylinder
        breakdown = ServiceBreakdown(seek=seek, rotation=rotation,
                                     transfer=transfer)
        self.busy_time += breakdown.total
        self.served += 1
        return breakdown

    def park(self, cylinder: int = 0) -> None:
        """Move the arm without serving (no time charged)."""
        if not (0 <= cylinder < self.geometry.cylinders):
            raise GeometryError(
                f"cylinder {cylinder} out of range "
                f"[0, {self.geometry.cylinders})")
        self.arm_cylinder = int(cylinder)

    def __repr__(self) -> str:
        return (f"DiskDrive(arm={self.arm_cylinder}, served={self.served}, "
                f"busy={self.busy_time:.3f}s)")
