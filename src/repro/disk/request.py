"""Request and service-breakdown records."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["DiskRequest", "ServiceBreakdown"]


@dataclass(frozen=True, slots=True)
class DiskRequest:
    """One fragment fetch.

    ``slots=True``: the server materialises one of these per physical
    fetch per round, so the per-instance ``__dict__`` was measurable
    allocation churn on the event-driven hot path.

    Attributes
    ----------
    stream_id:
        Identifier of the owning stream (used for glitch accounting).
    size:
        Fragment size in bytes.
    cylinder:
        Target cylinder (determines both the seek and, through the zone
        map, the transfer rate).
    """

    stream_id: int
    size: float
    cylinder: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ConfigurationError(
                f"request size must be positive, got {self.size!r}")
        if self.cylinder < 0:
            raise ConfigurationError(
                f"cylinder must be >= 0, got {self.cylinder!r}")


@dataclass(frozen=True, slots=True)
class ServiceBreakdown:
    """Timing components of one served request."""

    seek: float
    rotation: float
    transfer: float

    @property
    def total(self) -> float:
        """Total service time in seconds."""
        return self.seek + self.rotation + self.transfer
