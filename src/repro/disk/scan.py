"""SCAN (elevator) batch service.

During each round all requests of one disk are sorted by cylinder and
served in a single sweep of the arm (§2.3).  The sweep direction
alternates between rounds (classic elevator), and the first seek of a
sweep starts from wherever the previous sweep left the arm.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.disk.drive import DiskDrive
from repro.disk.request import DiskRequest, ServiceBreakdown

__all__ = [
    "order_scan",
    "order_fifo",
    "order_sstf",
    "order_cscan",
    "batch_seek_time",
    "sweep_service",
    "lumped_seek_time",
]


def order_scan(requests: Sequence[DiskRequest],
               ascending: bool = True) -> list[DiskRequest]:
    """Return the requests in SCAN order.

    Ties on the same cylinder keep their input order (stable sort), which
    matches a drive that serves co-located requests in rotational order.
    """
    ordered = sorted(requests, key=lambda r: r.cylinder)
    if not ascending:
        ordered.reverse()
    return ordered


def order_fifo(requests: Sequence[DiskRequest]) -> list[DiskRequest]:
    """Arrival order -- the no-scheduling baseline."""
    return list(requests)


def order_sstf(requests: Sequence[DiskRequest],
               start_cylinder: int) -> list[DiskRequest]:
    """Shortest-seek-time-first: greedily pick the nearest pending
    request.  Classic throughput heuristic; can starve edge requests in
    open systems, but inside a fixed round batch it simply reorders."""
    pending = list(requests)
    ordered: list[DiskRequest] = []
    position = start_cylinder
    while pending:
        nearest = min(pending, key=lambda r: abs(r.cylinder - position))
        pending.remove(nearest)
        ordered.append(nearest)
        position = nearest.cylinder
    return ordered


def order_cscan(requests: Sequence[DiskRequest]) -> list[DiskRequest]:
    """Circular SCAN: always sweep in ascending order; the arm flies
    back to the batch's lowest cylinder before each round.  Uniform
    service (no direction-dependent latency skew) at the cost of the
    fly-back seek, which :func:`batch_seek_time` charges."""
    return sorted(requests, key=lambda r: r.cylinder)


def batch_seek_time(drive: DiskDrive, ordered: Sequence[DiskRequest],
                    include_initial: bool = True) -> float:
    """Total seek time of serving ``ordered`` as given, starting from
    the drive's arm position (the drive is not moved)."""
    if not ordered:
        return 0.0
    cylinders = np.array([r.cylinder for r in ordered], dtype=float)
    hops = np.abs(np.diff(cylinders))
    total = float(np.sum(drive.seek_curve(hops))) if hops.size else 0.0
    if include_initial:
        total += float(drive.seek_curve(
            abs(cylinders[0] - drive.arm_cylinder)))
    return total


def lumped_seek_time(drive: DiskDrive, requests: Sequence[DiskRequest],
                     ascending: bool = True,
                     include_initial: bool = True) -> float:
    """Total seek time of one SCAN sweep over ``requests``.

    This is the simulated counterpart of the Oyang bound ``SEEK`` used by
    the analytic model; ablation A5 compares the two.  The drive's arm is
    *not* moved.

    Parameters
    ----------
    include_initial:
        Whether to charge the seek from the arm's current position to the
        first request of the sweep.
    """
    ordered = order_scan(requests, ascending=ascending)
    if not ordered:
        return 0.0
    cylinders = np.array([r.cylinder for r in ordered], dtype=float)
    distances = np.abs(np.diff(cylinders))
    total = float(np.sum(drive.seek_curve(distances))) if distances.size else 0.0
    if include_initial:
        total += float(drive.seek_curve(abs(cylinders[0] - drive.arm_cylinder)))
    return total


def sweep_service(drive: DiskDrive, requests: Sequence[DiskRequest],
                  rng: np.random.Generator, ascending: bool = True
                  ) -> list[tuple[DiskRequest, ServiceBreakdown]]:
    """Serve a batch with one SCAN sweep, mutating the drive state.

    Returns ``(request, breakdown)`` pairs in service order; completion
    times are the running sums of the breakdown totals.
    """
    ordered = order_scan(requests, ascending=ascending)
    return [(request, drive.serve(request, rng)) for request in ordered]
