"""Disk geometry: cylinders, zone boundaries, capacity-weighted placement.

The paper assumes every zone holds the same number of tracks; we map
cylinders to zones by splitting the cylinder range into ``Z`` equal
slices (innermost zone = highest-numbered cylinders or lowest is a
convention; we put zone 0 at the *low* cylinder numbers and let callers
not care, since seek distances only depend on differences).

"Uniform over all sectors" placement (§2.2) means a request's track is
chosen with probability proportional to its capacity; within the
equal-tracks-per-zone assumption this makes the zone law
``P[zone i] = C_i / C`` (eq. 3.2.1) and the cylinder *within* a zone
uniform.
"""

from __future__ import annotations

import numpy as np

from repro.disk.zones import ZoneMap
from repro.errors import ConfigurationError, GeometryError

__all__ = ["DiskGeometry"]


class DiskGeometry:
    """Cylinder layout of a zoned disk.

    Parameters
    ----------
    cylinders:
        Total number of cylinders (``CYL`` in the paper).
    zone_map:
        The zone capacity profile.
    surfaces:
        Number of recording surfaces (tracks per cylinder).  It scales
        total capacity but does not affect the service-time model, whose
        track switches are folded into rotational latency.
    """

    def __init__(self, cylinders: int, zone_map: ZoneMap,
                 surfaces: int = 1) -> None:
        if cylinders < zone_map.zones:
            raise ConfigurationError(
                f"cylinders ({cylinders}) must be >= zones "
                f"({zone_map.zones})")
        if surfaces < 1:
            raise ConfigurationError(
                f"surfaces must be >= 1, got {surfaces!r}")
        self.cylinders = int(cylinders)
        self.zone_map = zone_map
        self.surfaces = int(surfaces)
        # Zone boundaries: zone z covers cylinders
        # [bounds[z], bounds[z+1]).  Equal split, remainder spread over
        # the first zones.
        z = zone_map.zones
        base, extra = divmod(self.cylinders, z)
        counts = np.full(z, base, dtype=int)
        counts[:extra] += 1
        self._bounds = np.concatenate(([0], np.cumsum(counts)))
        self._counts = counts

    # ------------------------------------------------------------------
    @property
    def zones(self) -> int:
        """Number of zones."""
        return self.zone_map.zones

    @property
    def zone_bounds(self) -> np.ndarray:
        """Cylinder boundaries: zone ``z`` covers
        ``[zone_bounds[z], zone_bounds[z+1])`` (read-only)."""
        view = self._bounds.view()
        view.flags.writeable = False
        return view

    @property
    def zone_cylinder_counts(self) -> np.ndarray:
        """Cylinders per zone (read-only)."""
        view = self._counts.view()
        view.flags.writeable = False
        return view

    def zone_of_cylinder(self, cylinder) -> np.ndarray | int:
        """Zone index (0 = innermost profile entry) of a cylinder."""
        cyl = np.asarray(cylinder)
        if np.any((cyl < 0) | (cyl >= self.cylinders)):
            raise GeometryError(
                f"cylinder out of range [0, {self.cylinders})")
        result = np.searchsorted(self._bounds, cyl, side="right") - 1
        if np.ndim(cylinder) == 0:
            return int(result)
        return result

    def cylinder_range_of_zone(self, zone: int) -> tuple[int, int]:
        """Half-open cylinder interval ``[start, stop)`` of a zone."""
        if not (0 <= zone < self.zones):
            raise GeometryError(f"zone {zone} out of range [0, {self.zones})")
        return int(self._bounds[zone]), int(self._bounds[zone + 1])

    def tracks_in_zone(self, zone: int) -> int:
        """Number of tracks (cylinders x surfaces) in a zone."""
        start, stop = self.cylinder_range_of_zone(zone)
        return (stop - start) * self.surfaces

    @property
    def total_capacity(self) -> float:
        """Total formatted capacity in bytes."""
        return float(np.sum(self._counts * self.zone_map.capacities)
                     * self.surfaces)

    # ------------------------------------------------------------------
    def rate_of_cylinder(self, cylinder):
        """Transfer rate (bytes/s) at a cylinder (vectorised)."""
        zone = self.zone_of_cylinder(cylinder)
        return self.zone_map.rates[zone]

    def sample_cylinder(self, rng: np.random.Generator, size=None):
        """Sample cylinders under sector-uniform placement.

        Zone chosen with probability proportional to zone capacity
        (``counts_z * C_z``); cylinder uniform within the zone.  For the
        paper's equal-track zones this reduces to eq. (3.2.1).  The zone
        CDF comes from the cached sweep-kernel tables, so per-fragment
        layout draws no longer rebuild it on every call.
        """
        from repro.disk.sweepkernel import placement_tables

        tables = placement_tables(self)
        u = rng.random(size=size)
        zone = np.searchsorted(tables.cum_probs, u, side="right")
        lo = self._bounds[zone]
        hi = self._bounds[zone + 1]
        frac = rng.random(size=size)
        cyl = (lo + np.floor(frac * (hi - lo))).astype(int)
        if size is None:
            return int(cyl)
        return cyl

    def __repr__(self) -> str:
        return (f"DiskGeometry(cylinders={self.cylinders}, "
                f"zones={self.zones}, surfaces={self.surfaces}, "
                f"capacity={self.total_capacity / 1e9:.2f} GB)")
