"""Zoned-disk model substrate.

This package models the physical behaviour the paper's simulator needs:

- :class:`~repro.disk.seek.SeekCurve` -- the piecewise sqrt/linear seek
  time function of Table 1 (after [RW94]),
- :class:`~repro.disk.zones.ZoneMap` -- the linear multi-zone capacity
  profile of eq. (3.2.2)/(3.2.3),
- :class:`~repro.disk.geometry.DiskGeometry` -- cylinders, zone
  boundaries and capacity-weighted placement,
- :class:`~repro.disk.drive.DiskDrive` -- a stateful drive that serves
  requests (seek + rotational latency + zoned transfer),
- :mod:`~repro.disk.scan` -- SCAN (elevator) batch ordering and sweep
  service, and
- :mod:`~repro.disk.presets` -- ready-made parameter sets, notably the
  Quantum Viking 2.1 of Table 1.
"""

from repro.disk.seek import SeekCurve
from repro.disk.zones import ZoneMap
from repro.disk.geometry import DiskGeometry
from repro.disk.request import DiskRequest, ServiceBreakdown
from repro.disk.drive import DiskDrive
from repro.disk.scan import order_scan, sweep_service, lumped_seek_time
from repro.disk.presets import (
    DiskSpec,
    quantum_viking_2_1,
    single_zone_viking,
    scaled_viking,
    seagate_hawk_1lp,
    modern_av_drive,
)
from repro.disk.placement import (
    PlacementPolicy,
    SectorUniformPlacement,
    OuterZonesPlacement,
    OrganPipePlacement,
)

__all__ = [
    "SeekCurve",
    "ZoneMap",
    "DiskGeometry",
    "DiskRequest",
    "ServiceBreakdown",
    "DiskDrive",
    "order_scan",
    "sweep_service",
    "lumped_seek_time",
    "DiskSpec",
    "quantum_viking_2_1",
    "single_zone_viking",
    "scaled_viking",
    "seagate_hawk_1lp",
    "modern_av_drive",
    "PlacementPolicy",
    "SectorUniformPlacement",
    "OuterZonesPlacement",
    "OrganPipePlacement",
]
