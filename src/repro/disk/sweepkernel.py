"""Shared vectorised sweep kernel.

Both simulation paths of the repo score the same arithmetic -- seek
times along a SCAN sweep, zone transfer rates under sector-uniform
placement -- but until now each recomputed its lookup tables per call
(the Monte-Carlo path) or per *request* (the event-driven path).  This
module is the single home of that arithmetic:

- :class:`PlacementTables` -- per-geometry lookup tables (zone bounds,
  cylinder counts, transfer rates, the capacity-weighted zone CDF of
  eq. 3.2.1), built once and cached on the :class:`DiskGeometry`;
- :func:`sample_cylinders_rates` -- batched cylinder/rate draws, the
  machinery factored out of ``repro.server.simulation`` (RNG
  consumption is **bit-identical** to the historical inline code, so
  seeded Monte-Carlo results are unchanged);
- :func:`plan_sweep` -- the deterministic per-round precompute of the
  event-driven scheduler: given a round's batch in serve order, the
  per-request seek and transfer times as arrays, replacing one Python
  ``searchsorted``/``SeekCurve`` round-trip per request with one
  vectorised evaluation per round.

Determinism contract: :func:`plan_sweep` draws no random numbers, and
its elementwise arithmetic matches the scalar code it replaced bit for
bit (``SeekCurve`` evaluates the same piecewise expression either way;
zone rates come from the same ``searchsorted`` on the same boundary
array).  Rotational latencies stay *outside* this kernel on the event
path -- they are drawn lazily, one scalar ``uniform`` per actually
served request, because an abandoned request (deadline passed, disk
died mid-sweep) must not consume the stream's RNG.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GeometryError

__all__ = [
    "PlacementTables",
    "placement_tables",
    "sample_cylinders_rates",
    "plan_sweep",
]


class PlacementTables:
    """Precomputed per-geometry lookup tables.

    Attributes
    ----------
    zone_bounds:
        Cylinder boundaries; zone ``z`` covers
        ``[zone_bounds[z], zone_bounds[z+1])``.
    zone_counts:
        Cylinders per zone.
    rates:
        Transfer rate (bytes/s) per zone.
    cum_probs:
        CDF of the capacity-weighted zone law (eq. 3.2.1): zone ``z``
        is picked when a uniform draw lands in
        ``(cum_probs[z-1], cum_probs[z]]``.
    """

    __slots__ = ("cylinders", "zones", "zone_bounds", "zone_counts",
                 "rates", "cum_probs")

    def __init__(self, geometry) -> None:
        zone_map = geometry.zone_map
        self.cylinders = int(geometry.cylinders)
        self.zones = int(zone_map.zones)
        # Copies detached from the geometry's private arrays, computed
        # with the exact expressions the per-call code used, so every
        # float matches bit for bit.
        self.zone_bounds = np.array(geometry.zone_bounds)
        self.zone_counts = np.array(geometry.zone_cylinder_counts)
        self.rates = np.array(zone_map.rates)
        weights = self.zone_counts * zone_map.capacities
        probs = weights / np.sum(weights)
        self.cum_probs = np.cumsum(probs)


def placement_tables(geometry) -> PlacementTables:
    """The (cached) lookup tables of ``geometry``.

    Built on first use and memoised on the geometry instance, so every
    round of every drive sharing the geometry reuses one table set.
    """
    tables = getattr(geometry, "_sweep_tables", None)
    if tables is None:
        tables = PlacementTables(geometry)
        geometry._sweep_tables = tables
    return tables


def sample_cylinders_rates(spec, rng: np.random.Generator,
                           shape, placement=None
                           ) -> tuple[np.ndarray, np.ndarray]:
    """Cylinders and their zone transfer rates under a placement policy
    (default: sector-uniform, eq. 3.2.1).

    Factored out of ``repro.server.simulation``; the RNG is consumed
    exactly as the historical inline code consumed it (one
    ``rng.random(shape)`` for the zone pick, one for the within-zone
    position -- or one for the policy-CDF inverse), so seeded results
    are bit-identical before and after the refactor.
    """
    geometry = spec.geometry
    tables = placement_tables(geometry)
    if placement is not None:
        cdf = np.cumsum(placement.cylinder_probabilities(geometry))
        cylinders = np.searchsorted(cdf, rng.random(shape), side="right")
        cylinders = np.minimum(cylinders, tables.cylinders - 1)
        zone = np.searchsorted(tables.zone_bounds, cylinders,
                               side="right") - 1
        return cylinders.astype(np.int64), tables.rates[zone]
    zone = np.searchsorted(tables.cum_probs, rng.random(shape),
                           side="right")
    zone = np.minimum(zone, tables.zones - 1)
    lo = tables.zone_bounds[zone]
    width = tables.zone_counts[zone]
    cylinders = lo + np.floor(rng.random(shape) * width).astype(np.int64)
    return cylinders, tables.rates[zone]


def plan_sweep(geometry, seek_curve, arm_cylinder: int,
               cylinders: np.ndarray, sizes: np.ndarray
               ) -> tuple[np.ndarray, np.ndarray]:
    """Per-request seek and transfer times of one SCAN sweep.

    ``cylinders``/``sizes`` are the round's batch **in serve order**;
    the first seek starts from ``arm_cylinder``.  Returns
    ``(seeks, transfers)`` float arrays aligned with the batch.  The
    plan is valid for any served *prefix* of the batch -- exactly the
    shapes an aborted sweep (deadline passed, disk failed mid-round)
    can take -- because each entry only depends on its predecessor.
    """
    cyl = np.asarray(cylinders, dtype=np.int64)
    if cyl.size == 0:
        return (np.empty(0, dtype=float), np.empty(0, dtype=float))
    if np.any((cyl < 0) | (cyl >= geometry.cylinders)):
        raise GeometryError(
            f"cylinder out of range [0, {geometry.cylinders})")
    tables = placement_tables(geometry)
    previous = np.concatenate(([int(arm_cylinder)], cyl[:-1]))
    seeks = np.asarray(seek_curve(np.abs(cyl - previous)), dtype=float)
    zone = np.searchsorted(tables.zone_bounds, cyl, side="right") - 1
    transfers = np.asarray(sizes, dtype=float) / tables.rates[zone]
    return seeks, transfers
