"""Seek-time curves.

Following [RW94] and [Oya95], the seek time is modelled as proportional
to the square root of the seek distance for short seeks (the arm spends
its time accelerating and decelerating) and linear for long seeks (the
arm coasts at maximum velocity), cf. Table 1 of the paper::

    seek(d) = a_sqrt + b_sqrt * sqrt(d)      for 0 < d < threshold
    seek(d) = a_lin  + b_lin  * d            for d >= threshold
    seek(0) = 0
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["SeekCurve"]


@dataclass(frozen=True)
class SeekCurve:
    """Piecewise sqrt/linear seek-time function.

    Attributes
    ----------
    a_sqrt, b_sqrt:
        Intercept and coefficient of the square-root branch (seconds,
        seconds per sqrt(cylinder)).
    a_lin, b_lin:
        Intercept and coefficient of the linear branch (seconds,
        seconds per cylinder).
    threshold:
        Distance (in cylinders) where the linear branch takes over.
    """

    a_sqrt: float
    b_sqrt: float
    a_lin: float
    b_lin: float
    threshold: int

    def __post_init__(self) -> None:
        for name in ("a_sqrt", "b_sqrt", "a_lin", "b_lin"):
            value = getattr(self, name)
            if not (value >= 0.0 and math.isfinite(value)):
                raise ConfigurationError(
                    f"seek coefficient {name} must be >= 0, got {value!r}")
        if self.threshold <= 0:
            raise ConfigurationError(
                f"threshold must be positive, got {self.threshold!r}")

    # ------------------------------------------------------------------
    def __call__(self, distance):
        """Seek time for a distance in cylinders (vectorised).

        ``seek(0) = 0`` -- staying on the same cylinder costs nothing
        (track-to-track switches are folded into the rotational model).
        """
        d = np.asarray(distance, dtype=float)
        if np.any(d < 0):
            raise ConfigurationError("seek distance must be >= 0")
        short = self.a_sqrt + self.b_sqrt * np.sqrt(d)
        long_ = self.a_lin + self.b_lin * d
        result = np.where(d < self.threshold, short, long_)
        result = np.where(d == 0, 0.0, result)
        if np.isscalar(distance) or np.ndim(distance) == 0:
            return float(result)
        return result

    def max_time(self, cylinders: int) -> float:
        """Seek time of a full-stroke seek across ``cylinders - 1``
        cylinders -- the ``T_seek^max`` of eq. (4.1)."""
        if cylinders < 2:
            raise ConfigurationError("need at least 2 cylinders")
        return float(self(cylinders - 1))

    def discontinuity(self) -> float:
        """Jump of the curve at the branch threshold (seconds).

        Useful as a sanity check that a parameter set is approximately
        continuous, like Table 1's (jump of ~2 microseconds).
        """
        d = float(self.threshold)
        short = self.a_sqrt + self.b_sqrt * math.sqrt(d)
        long_ = self.a_lin + self.b_lin * d
        return long_ - short
