"""Ready-made disk parameter sets.

:func:`quantum_viking_2_1` encodes Table 1 of the paper exactly; the
other constructors are controlled variations used by the worked examples
and ablations.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.disk.geometry import DiskGeometry
from repro.disk.seek import SeekCurve
from repro.disk.zones import ZoneMap
from repro.errors import ConfigurationError

__all__ = [
    "DiskSpec",
    "quantum_viking_2_1",
    "single_zone_viking",
    "scaled_viking",
    "seagate_hawk_1lp",
    "modern_av_drive",
]


@dataclass(frozen=True)
class DiskSpec:
    """Bundle of everything the models need to know about one disk."""

    name: str
    cylinders: int
    zone_map: ZoneMap
    seek_curve: SeekCurve
    surfaces: int = 1
    _geometry: DiskGeometry = field(init=False, repr=False, compare=False,
                                    default=None)

    def __post_init__(self) -> None:
        if self.cylinders < 1:
            raise ConfigurationError(
                f"cylinders must be >= 1, got {self.cylinders!r}")
        object.__setattr__(
            self, "_geometry",
            DiskGeometry(self.cylinders, self.zone_map,
                         surfaces=self.surfaces))

    @property
    def geometry(self) -> DiskGeometry:
        """The derived cylinder/zone layout."""
        return self._geometry

    @property
    def rot(self) -> float:
        """Revolution time in seconds."""
        return self.zone_map.rot

    def with_zones(self, zones: int) -> "DiskSpec":
        """Same drive with the capacity range re-split into ``zones``
        zones (ablation A2).  Total min/max capacities are preserved."""
        zone_map = ZoneMap.linear(zones, self.zone_map.c_min,
                                  self.zone_map.c_max, self.zone_map.rot)
        return replace(self, name=f"{self.name}-Z{zones}",
                       zone_map=zone_map)


#: Seek-time curve of Table 1 (Quantum Viking 2.1).
_VIKING_SEEK = SeekCurve(
    a_sqrt=1.867e-3,
    b_sqrt=1.315e-4,
    a_lin=3.8635e-3,
    b_lin=2.1e-6,
    threshold=1344,
)


def quantum_viking_2_1() -> DiskSpec:
    """The Quantum Viking 2.1 drive of Table 1.

    CYL=6720 cylinders, Z=15 zones, ROT=8.34 ms, track capacities from
    58368 bytes (innermost) to 95744 bytes (outermost), linear profile.
    """
    zone_map = ZoneMap.linear(zones=15, c_min=58368.0, c_max=95744.0,
                              rot=8.34e-3)
    return DiskSpec(name="Quantum Viking 2.1", cylinders=6720,
                    zone_map=zone_map, seek_curve=_VIKING_SEEK)


def single_zone_viking(track_capacity: float = 76800.0) -> DiskSpec:
    """Single-zone disk used in the §3.1 worked example.

    The example quotes a "track capacity of 75 KBytes"; matching its
    ``E[T_trans] = 0.02174 s`` for 200 KB (decimal) fragments requires
    the KiB reading, 75 * 1024 = 76800 bytes, which is the default here.
    """
    zone_map = ZoneMap.linear(zones=1, c_min=track_capacity,
                              c_max=track_capacity, rot=8.34e-3)
    return DiskSpec(name="Viking (single-zone)", cylinders=6720,
                    zone_map=zone_map, seek_curve=_VIKING_SEEK)


def seagate_hawk_1lp() -> DiskSpec:
    """A Seagate Hawk-class drive of the same era ([RW94]'s disk family).

    Approximate public specs: ~2760 cylinders, 9 zones, 5400 rpm
    (11.1 ms revolution), ~44-74 KB tracks.  Provided as a second
    realistic operating point for the examples; the paper's experiments
    all use :func:`quantum_viking_2_1`.
    """
    zone_map = ZoneMap.linear(zones=9, c_min=44544.0, c_max=74240.0,
                              rot=11.1e-3)
    seek = SeekCurve(a_sqrt=2.5e-3, b_sqrt=2.1e-4, a_lin=5.0e-3,
                     b_lin=4.4e-6, threshold=620)
    return DiskSpec(name="Seagate Hawk 1LP (approx.)", cylinders=2760,
                    zone_map=zone_map, seek_curve=seek)


def modern_av_drive() -> DiskSpec:
    """A late-90s "AV-rated" drive: 7200 rpm, wider zone spread, faster
    arm -- the class of hardware §5's prototype targeted."""
    zone_map = ZoneMap.linear(zones=20, c_min=120_000.0, c_max=220_000.0,
                              rot=8.33e-3)
    seek = SeekCurve(a_sqrt=1.2e-3, b_sqrt=9.0e-5, a_lin=2.8e-3,
                     b_lin=1.3e-6, threshold=1500)
    return DiskSpec(name="AV-class drive (synthetic)", cylinders=10_000,
                    zone_map=zone_map, seek_curve=seek)


def scaled_viking(rate_scale: float = 1.0, zones: int = 15,
                  cylinders: int = 6720) -> DiskSpec:
    """A Viking-like drive with scaled transfer rates.

    Used by capacity-planning examples to model faster drive generations
    while keeping the Table-1 seek/rotation behaviour.
    """
    if rate_scale <= 0:
        raise ConfigurationError(
            f"rate_scale must be positive, got {rate_scale!r}")
    zone_map = ZoneMap.linear(zones=zones, c_min=58368.0 * rate_scale,
                              c_max=95744.0 * rate_scale, rot=8.34e-3)
    return DiskSpec(name=f"Viking x{rate_scale:g}", cylinders=cylinders,
                    zone_map=zone_map, seek_curve=_VIKING_SEEK)
