"""Multi-zone capacity and transfer-rate model.

Zone ``i`` (1-based in the paper, 0-based here) of ``Z`` zones has track
capacity growing linearly from ``C_min`` (innermost) to ``C_max``
(outermost), eq. (3.2.2), and transfer rate ``R_i = C_i / ROT``,
eq. (3.2.3).  All zones hold the same number of tracks; with placement
uniform over *sectors*, a request hits zone ``i`` with probability
``C_i / C`` where ``C = sum_j C_j`` (eq. 3.2.1).
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["ZoneMap"]


class ZoneMap:
    """Capacity/rate profile of a zoned disk.

    Parameters
    ----------
    capacities:
        Per-track capacity of every zone in bytes, ordered innermost to
        outermost (must be non-decreasing and positive).
    rot:
        Revolution time in seconds.
    """

    def __init__(self, capacities, rot: float) -> None:
        caps = np.asarray(capacities, dtype=float)
        if caps.ndim != 1 or caps.size < 1:
            raise ConfigurationError(
                "capacities must be a non-empty 1-d sequence")
        if np.any(caps <= 0):
            raise ConfigurationError("track capacities must be positive")
        if np.any(np.diff(caps) < 0):
            raise ConfigurationError(
                "track capacities must be non-decreasing inner -> outer")
        if not (rot > 0.0 and math.isfinite(rot)):
            raise ConfigurationError(f"rot must be positive, got {rot!r}")
        self._caps = caps.copy()
        self._caps.flags.writeable = False
        self.rot = float(rot)
        self._total = float(np.sum(caps))
        self._probs = caps / self._total
        self._probs.flags.writeable = False
        self._cum = np.cumsum(self._probs)

    # ------------------------------------------------------------------
    @classmethod
    def linear(cls, zones: int, c_min: float, c_max: float,
               rot: float) -> "ZoneMap":
        """The paper's linear profile, eq. (3.2.2).

        ``C_i = C_min + (C_max - C_min) * (i - 1) / (Z - 1)``, i=1..Z.
        ``zones == 1`` degenerates to a conventional single-zone disk
        with track capacity ``c_min`` (then ``c_max`` must equal it).
        """
        if zones < 1:
            raise ConfigurationError(f"zones must be >= 1, got {zones!r}")
        if zones == 1:
            if c_max != c_min:
                raise ConfigurationError(
                    "single-zone profile requires c_min == c_max")
            return cls([c_min], rot)
        if c_max < c_min:
            raise ConfigurationError("require c_max >= c_min")
        i = np.arange(zones, dtype=float)
        caps = c_min + (c_max - c_min) * i / (zones - 1)
        return cls(caps, rot)

    # ------------------------------------------------------------------
    @property
    def zones(self) -> int:
        """Number of zones ``Z``."""
        return self._caps.size

    @property
    def capacities(self) -> np.ndarray:
        """Per-track capacities in bytes, innermost first (read-only)."""
        return self._caps

    @property
    def c_min(self) -> float:
        """Innermost-zone track capacity."""
        return float(self._caps[0])

    @property
    def c_max(self) -> float:
        """Outermost-zone track capacity."""
        return float(self._caps[-1])

    @property
    def total_track_capacity(self) -> float:
        """``C = sum_i C_i`` -- the normaliser of eq. (3.2.1)."""
        return self._total

    @property
    def rates(self) -> np.ndarray:
        """Per-zone transfer rates ``R_i = C_i / ROT`` in bytes/second."""
        return self._caps / self.rot

    @property
    def r_min(self) -> float:
        """Innermost (slowest) transfer rate."""
        return self.c_min / self.rot

    @property
    def r_max(self) -> float:
        """Outermost (fastest) transfer rate."""
        return self.c_max / self.rot

    @property
    def zone_probabilities(self) -> np.ndarray:
        """Probability of a uniform-over-sectors request hitting each
        zone: ``C_i / C`` (eq. 3.2.1, read-only)."""
        return self._probs

    # ------------------------------------------------------------------
    # Moments of the (inverse) transfer rate under sector-uniform access.
    # ------------------------------------------------------------------
    def rate_moment(self, k: int) -> float:
        """``E[R^k]`` for integer k (possibly negative).

        With ``S`` independent of ``R``, the transfer time ``T = S / R``
        has raw moments ``E[T^k] = E[S^k] * E[R^-k]``; the model in
        :mod:`repro.core.transfer` uses ``k = -1, -2``.
        """
        rates = self.rates
        return float(np.sum(self._probs * rates ** k))

    def mean_rate(self) -> float:
        """``E[R]`` under sector-uniform placement (outer-zone biased)."""
        return self.rate_moment(1)

    def harmonic_mean_rate(self) -> float:
        """``1 / E[1/R]`` -- the rate whose single-zone disk matches the
        multi-zone mean transfer time.

        For the linear equal-track profile this collapses to
        ``C / (Z * ROT)``, the arithmetic-mean capacity over zones,
        because zone hit probability is itself proportional to ``C_i``.
        """
        return 1.0 / self.rate_moment(-1)

    # ------------------------------------------------------------------
    # Distribution of the transfer rate (discrete and the paper's
    # continuous approximation).
    # ------------------------------------------------------------------
    def rate_cdf(self, r) -> np.ndarray:
        """Exact discrete cdf ``P[R <= r]`` (eq. 3.2.1/3.2.4)."""
        r = np.asarray(r, dtype=float)
        rates = self.rates
        idx = np.searchsorted(rates, r, side="right")
        cum = np.concatenate(([0.0], self._cum))
        return cum[idx]

    def continuous_rate_pdf(self, r) -> np.ndarray:
        """Continuous-approximation density of the transfer rate.

        In the limit of many zones the linear profile gives a density
        proportional to ``r`` on ``[R_min, R_max]``::

            f(r) = 2 r / (R_max^2 - R_min^2)

        (the continuum version of eq. 3.2.6: tracks are hit with
        probability proportional to their capacity, and capacity is
        proportional to rate).  For a single zone the density is a point
        mass and this method raises.
        """
        if self.zones == 1:
            raise ConfigurationError(
                "continuous rate density undefined for a single zone")
        r = np.asarray(r, dtype=float)
        lo, hi = self.r_min, self.r_max
        dens = 2.0 * r / (hi * hi - lo * lo)
        return np.where((r >= lo) & (r <= hi), dens, 0.0)

    def continuous_rate_cdf(self, r) -> np.ndarray:
        """Continuous-approximation cdf matching
        :meth:`continuous_rate_pdf`."""
        if self.zones == 1:
            raise ConfigurationError(
                "continuous rate cdf undefined for a single zone")
        r = np.asarray(r, dtype=float)
        lo, hi = self.r_min, self.r_max
        raw = (r * r - lo * lo) / (hi * hi - lo * lo)
        return np.clip(raw, 0.0, 1.0)

    # ------------------------------------------------------------------
    def sample_zone(self, rng: np.random.Generator, size=None):
        """Sample zone indices (0-based) with sector-uniform weights."""
        u = rng.random(size=size)
        return np.searchsorted(self._cum, u, side="right")

    def sample_rate(self, rng: np.random.Generator, size=None):
        """Sample transfer rates of sector-uniform requests."""
        zones = self.sample_zone(rng, size=size)
        return self.rates[zones]

    def __repr__(self) -> str:
        return (f"ZoneMap(zones={self.zones}, c_min={self.c_min:.0f}, "
                f"c_max={self.c_max:.0f}, rot={self.rot:.6g})")
