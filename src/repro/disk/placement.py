"""Data-placement policies over a zoned disk (§2.2 outlook).

The paper assumes sector-uniform placement and leaves smarter schemes
as future work: "more advanced placement schemes ... should employ a
generalized organ-pipe permutation [Won83], storing the hottest data at
an optimal point somewhere between the middle and the outermost track
[TKKD96, TCG96b], to find the best compromise between short seeks and
high bandwidth."

A policy is a probability distribution over cylinders describing where
*accessed* data lives.  It affects the service-time model twice:

- the transfer rate of a request follows the policy's zone mix
  (captured analytically through the zone-hit probabilities), and
- seek distances shrink when accesses concentrate (captured by the
  simulator; the analytic SEEK bound stays worst-case, so the analytic
  side remains conservative).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.disk.geometry import DiskGeometry
from repro.errors import ConfigurationError

__all__ = [
    "PlacementPolicy",
    "SectorUniformPlacement",
    "OuterZonesPlacement",
    "OrganPipePlacement",
]


class PlacementPolicy(abc.ABC):
    """Distribution of accessed data over cylinders."""

    @abc.abstractmethod
    def cylinder_weights(self, geometry: DiskGeometry) -> np.ndarray:
        """Unnormalised access weight per cylinder (length CYL)."""

    # ------------------------------------------------------------------
    def cylinder_probabilities(self, geometry: DiskGeometry) -> np.ndarray:
        """Normalised access probability per cylinder."""
        weights = np.asarray(self.cylinder_weights(geometry), dtype=float)
        if weights.shape != (geometry.cylinders,):
            raise ConfigurationError(
                f"policy produced {weights.shape}, expected "
                f"({geometry.cylinders},)")
        if np.any(weights < 0) or not np.any(weights > 0):
            raise ConfigurationError(
                "placement weights must be non-negative with some mass")
        return weights / np.sum(weights)

    def zone_probabilities(self, geometry: DiskGeometry) -> np.ndarray:
        """Probability of an access hitting each zone under the policy."""
        probs = self.cylinder_probabilities(geometry)
        zones = geometry.zone_of_cylinder(np.arange(geometry.cylinders))
        return np.bincount(zones, weights=probs,
                           minlength=geometry.zones)

    def rate_moment(self, geometry: DiskGeometry, k: int) -> float:
        """``E[R^k]`` of the transfer rate under the policy."""
        zone_probs = self.zone_probabilities(geometry)
        rates = geometry.zone_map.rates
        return float(np.sum(zone_probs * rates ** k))

    def sample_cylinders(self, geometry: DiskGeometry,
                         rng: np.random.Generator, size=None):
        """Sample access cylinders under the policy."""
        probs = self.cylinder_probabilities(geometry)
        return rng.choice(geometry.cylinders, size=size, p=probs)

    def mean_pairwise_seek_distance(self, geometry: DiskGeometry) -> float:
        """``E|C1 - C2|`` for two independent accesses -- a proxy for
        how much the policy shortens seeks (exact, O(CYL))."""
        probs = self.cylinder_probabilities(geometry)
        cdf = np.cumsum(probs)
        # E|C1-C2| = 2 * sum_c F(c)(1 - F(c)) for integer support.
        return float(2.0 * np.sum(cdf * (1.0 - cdf)))


class SectorUniformPlacement(PlacementPolicy):
    """The paper's baseline: every sector equally likely, so a
    cylinder's weight is its track capacity (eq. 3.2.1)."""

    def cylinder_weights(self, geometry: DiskGeometry) -> np.ndarray:
        zones = geometry.zone_of_cylinder(np.arange(geometry.cylinders))
        return geometry.zone_map.capacities[zones]

    def __repr__(self) -> str:
        return "SectorUniformPlacement()"


class OuterZonesPlacement(PlacementPolicy):
    """Hot data packed into the outermost ``fraction`` of cylinders
    (maximum bandwidth, e.g. [Bir95]-style fast-band placement)."""

    def __init__(self, fraction: float = 0.5) -> None:
        if not (0.0 < fraction <= 1.0):
            raise ConfigurationError(
                f"fraction must be in (0, 1], got {fraction!r}")
        self.fraction = float(fraction)

    def cylinder_weights(self, geometry: DiskGeometry) -> np.ndarray:
        zones = geometry.zone_of_cylinder(np.arange(geometry.cylinders))
        weights = geometry.zone_map.capacities[zones].astype(float)
        cut = int(round((1.0 - self.fraction) * geometry.cylinders))
        weights[:cut] = 0.0
        return weights

    def __repr__(self) -> str:
        return f"OuterZonesPlacement(fraction={self.fraction:g})"


class OrganPipePlacement(PlacementPolicy):
    """Access mass decaying geometrically with distance from a centre
    cylinder -- the organ-pipe arrangement with the hottest data at
    ``centre_fraction`` of the radius ([Won83, TKKD96]).

    ``skew`` controls how concentrated the accesses are: the weight of
    a cylinder at distance ``d`` from the centre is
    ``skew^(d / cylinders)`` scaled by track capacity, so ``skew = 1``
    degenerates to sector-uniform and small ``skew`` pins accesses to
    the centre.
    """

    def __init__(self, centre_fraction: float = 0.75,
                 skew: float = 1e-3) -> None:
        if not (0.0 <= centre_fraction <= 1.0):
            raise ConfigurationError(
                f"centre_fraction must be in [0, 1], "
                f"got {centre_fraction!r}")
        if not (0.0 < skew <= 1.0):
            raise ConfigurationError(
                f"skew must be in (0, 1], got {skew!r}")
        self.centre_fraction = float(centre_fraction)
        self.skew = float(skew)

    def cylinder_weights(self, geometry: DiskGeometry) -> np.ndarray:
        cylinders = np.arange(geometry.cylinders)
        zones = geometry.zone_of_cylinder(cylinders)
        capacity = geometry.zone_map.capacities[zones].astype(float)
        centre = self.centre_fraction * (geometry.cylinders - 1)
        distance = np.abs(cylinders - centre) / geometry.cylinders
        return capacity * self.skew ** distance

    def __repr__(self) -> str:
        return (f"OrganPipePlacement(centre_fraction="
                f"{self.centre_fraction:g}, skew={self.skew:g})")
