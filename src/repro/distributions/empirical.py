"""Empirical distribution built from observed samples.

Trace-driven experiments (ablation A6) fragment a synthetic MPEG VBR
trace into constant-display-time fragments and feed the resulting size
sample into both the simulator (resampling) and the analytic model (the
sample mean/variance for moment matching, or the sample-based MGF for the
numeric Chernoff path).
"""

from __future__ import annotations

import math

import numpy as np

from repro.distributions.base import Distribution
from repro.errors import ConfigurationError

__all__ = ["Empirical"]


class Empirical(Distribution):
    """Distribution placing mass ``1/n`` on each observed sample."""

    def __init__(self, samples) -> None:
        data = np.asarray(samples, dtype=float).ravel()
        if data.size < 2:
            raise ConfigurationError(
                f"need at least 2 samples, got {data.size}")
        if not np.all(np.isfinite(data)):
            raise ConfigurationError("samples must be finite")
        self._data = np.sort(data)
        self._n = data.size
        self._mean = float(np.mean(self._data))
        self._var = float(np.var(self._data))
        # Degenerate means all samples equal -- not var underflowing to
        # 0.0, which distinct subnormal samples can produce.
        if self._data[0] == self._data[-1]:
            raise ConfigurationError(
                "degenerate sample (zero variance); use Deterministic")

    @property
    def samples(self) -> np.ndarray:
        """The sorted underlying sample (read-only view)."""
        view = self._data.view()
        view.flags.writeable = False
        return view

    @property
    def n(self) -> int:
        """Sample size."""
        return self._n

    # ------------------------------------------------------------------
    def mean(self) -> float:
        return self._mean

    def var(self) -> float:
        return self._var

    def pdf(self, x):
        # The empirical law is atomic; report a kernel-free histogram
        # density so plotting utilities get something sensible.
        x = np.asarray(x, dtype=float)
        lo, hi = self._data[0], self._data[-1]
        if hi == lo:
            return np.zeros_like(x)
        bins = max(int(math.sqrt(self._n)), 4)
        hist, edges = np.histogram(self._data, bins=bins, density=True)
        idx = np.clip(np.searchsorted(edges, x, side="right") - 1,
                      0, bins - 1)
        inside = (x >= lo) & (x <= hi)
        return np.where(inside, hist[idx], 0.0)

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        return np.searchsorted(self._data, x, side="right") / self._n

    def ppf(self, q):
        q = np.asarray(q, dtype=float)
        idx = np.clip(np.ceil(q * self._n).astype(int) - 1, 0, self._n - 1)
        return self._data[idx]

    def sample(self, rng: np.random.Generator, size=None):
        return rng.choice(self._data, size=size, replace=True)

    # ------------------------------------------------------------------
    @property
    def theta_sup(self) -> float:
        return math.inf

    def log_mgf(self, theta: float) -> float:
        """Sample MGF ``log (1/n) sum_i e^{theta x_i}`` with max-factoring."""
        exponent = theta * self._data
        peak = float(np.max(exponent))
        return peak + math.log(float(np.mean(np.exp(exponent - peak))))

    @property
    def support(self) -> tuple[float, float]:
        return (float(self._data[0]), float(self._data[-1]))

    def __repr__(self) -> str:
        return (f"Empirical(n={self._n}, mean={self._mean:.6g}, "
                f"std={math.sqrt(self._var):.6g})")
