"""Fitting fragment-size laws to observed samples.

§2.3: "Workload statistics, e.g., on the distribution of fragment
sizes, are fed into the admission control."  In practice those
statistics come from ingested traces; this module fits the parametric
laws to a sample (moment matching, the paper's method) and scores the
fits (Kolmogorov-Smirnov) so the operator can pick a law with evidence
rather than habit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.distributions.base import Distribution
from repro.distributions.gamma import Gamma
from repro.distributions.lognormal import LogNormal
from repro.distributions.pareto import Pareto
from repro.distributions.truncated import Truncated
from repro.errors import ConfigurationError

__all__ = ["FitResult", "fit_fragment_sizes", "best_fit"]


@dataclass(frozen=True)
class FitResult:
    """One candidate law fitted to the sample."""

    name: str
    distribution: Distribution
    ks_statistic: float
    ks_pvalue: float

    def __repr__(self) -> str:
        return (f"FitResult({self.name}, KS={self.ks_statistic:.4f}, "
                f"p={self.ks_pvalue:.3g})")


def _ks(sample: np.ndarray, dist: Distribution) -> tuple[float, float]:
    result = stats.ks_1samp(sample, lambda x: np.asarray(dist.cdf(x)))
    return float(result.statistic), float(result.pvalue)


def fit_fragment_sizes(samples, cap: float | None = None
                       ) -> list[FitResult]:
    """Moment-match Gamma, Lognormal and Pareto to a size sample.

    Heavy-tailed candidates are truncated at ``cap`` when given (so the
    returned laws are Chernoff-ready); Gamma needs no cap.  Results are
    sorted best-fit first (smallest KS statistic).
    """
    data = np.asarray(samples, dtype=float).ravel()
    if data.size < 20:
        raise ConfigurationError(
            f"need >= 20 samples for a meaningful fit, got {data.size}")
    if np.any(data <= 0):
        raise ConfigurationError("fragment sizes must be positive")
    mean = float(np.mean(data))
    std = float(np.std(data))
    if std == 0.0:
        raise ConfigurationError("degenerate sample (zero variance)")
    if cap is not None and cap <= float(np.max(data)):
        raise ConfigurationError(
            f"cap ({cap}) must exceed the largest sample "
            f"({float(np.max(data))})")

    candidates: list[tuple[str, Distribution]] = [
        ("gamma", Gamma.from_mean_std(mean, std)),
    ]
    lognormal: Distribution = LogNormal.from_mean_std(mean, std)
    pareto: Distribution = Pareto.from_mean_std(mean, std)
    if cap is not None:
        lognormal = Truncated(lognormal, 0.0, cap)
        pareto = Truncated(pareto, Pareto.from_mean_std(mean, std).xm,
                           cap)
    candidates.append(("lognormal", lognormal))
    candidates.append(("pareto", pareto))

    results = []
    for name, dist in candidates:
        ks_stat, ks_p = _ks(data, dist)
        results.append(FitResult(name=name, distribution=dist,
                                 ks_statistic=ks_stat, ks_pvalue=ks_p))
    return sorted(results, key=lambda r: r.ks_statistic)


def best_fit(samples, cap: float | None = None) -> FitResult:
    """The best-scoring candidate of :func:`fit_fragment_sizes`."""
    return fit_fragment_sizes(samples, cap=cap)[0]
