"""Gamma distribution.

This is the fragment-size and transfer-time law of the paper (eq. 3.1.2).
The paper parameterises the Gamma density as::

    f(x) = alpha * (alpha*x)^(beta-1) * exp(-alpha*x) / Gamma(beta)

i.e. ``alpha`` is a *rate* and ``beta`` a *shape*, with
``alpha = E[X]/Var[X]`` and ``beta = E[X]^2/Var[X]`` (moment matching).
We keep that naming through the :attr:`rate`/:attr:`shape` attributes.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import stats

from repro.distributions.base import Distribution
from repro.errors import ConfigurationError

__all__ = ["Gamma"]


class Gamma(Distribution):
    """Gamma distribution with shape ``beta`` and rate ``alpha``.

    Parameters
    ----------
    shape:
        Shape parameter ``beta > 0``.
    rate:
        Rate parameter ``alpha > 0`` (inverse scale).
    """

    def __init__(self, shape: float, rate: float) -> None:
        self.shape = self._require_positive("shape", shape)
        self.rate = self._require_positive("rate", rate)
        self._frozen = stats.gamma(a=self.shape, scale=1.0 / self.rate)

    # ------------------------------------------------------------------
    @classmethod
    def from_mean_var(cls, mean: float, var: float) -> "Gamma":
        """Moment-matched Gamma: ``alpha = mean/var``, ``beta = mean^2/var``.

        This is exactly the matching the paper uses in eq. (3.1.2) and for
        the multi-zone transfer-time approximation (eq. 3.2.10).
        """
        if not (mean > 0.0):
            raise ConfigurationError(f"mean must be positive, got {mean!r}")
        if not (var > 0.0):
            raise ConfigurationError(f"var must be positive, got {var!r}")
        return cls(shape=mean * mean / var, rate=mean / var)

    @classmethod
    def from_mean_std(cls, mean: float, std: float) -> "Gamma":
        """Moment-matched Gamma from mean and standard deviation."""
        return cls.from_mean_var(mean, std * std)

    # ------------------------------------------------------------------
    def mean(self) -> float:
        return self.shape / self.rate

    def var(self) -> float:
        return self.shape / (self.rate * self.rate)

    def moment(self, k: int) -> float:
        """Raw moment ``E[X^k]`` (closed form)."""
        if k < 0:
            raise ConfigurationError("moment order must be >= 0")
        value = 1.0
        for j in range(k):
            value *= (self.shape + j) / self.rate
        return value

    def pdf(self, x):
        return self._frozen.pdf(x)

    def cdf(self, x):
        return self._frozen.cdf(x)

    def ppf(self, q):
        return self._frozen.ppf(q)

    def sample(self, rng: np.random.Generator, size=None):
        return rng.gamma(self.shape, 1.0 / self.rate, size=size)

    # ------------------------------------------------------------------
    @property
    def theta_sup(self) -> float:
        return self.rate

    def log_mgf(self, theta: float) -> float:
        """``log E[e^{theta X}] = -beta * log(1 - theta/alpha)``.

        Matches eq. (3.1.3): ``T*(s) = (alpha/(alpha+s))^beta`` with
        ``theta = -s``.  Finite only for ``theta < alpha``.
        """
        if theta >= self.rate:
            return math.inf
        return -self.shape * math.log1p(-theta / self.rate)

    @property
    def support(self) -> tuple[float, float]:
        return (0.0, math.inf)

    def __repr__(self) -> str:
        return f"Gamma(shape={self.shape:.6g}, rate={self.rate:.6g})"
