"""Pareto distribution (American/Lomax-free, classic ``x_m`` form).

Listed by the paper as an alternative heavy-tailed fragment-size law.
A Pareto tail ``P[X > x] = (x_m/x)^alpha`` has infinite MGF for every
``theta > 0``, so Chernoff bounds require the truncated variant
(:class:`repro.distributions.truncated.Truncated`).
"""

from __future__ import annotations

import math

import numpy as np

from repro.distributions.base import Distribution
from repro.errors import ConfigurationError, DistributionError

__all__ = ["Pareto"]


class Pareto(Distribution):
    """Pareto distribution with scale ``xm`` and tail index ``alpha``.

    ``pdf(x) = alpha * xm^alpha / x^(alpha+1)`` for ``x >= xm``.
    """

    def __init__(self, xm: float, alpha: float) -> None:
        self.xm = self._require_positive("xm", xm)
        self.alpha = self._require_positive("alpha", alpha)

    # ------------------------------------------------------------------
    @classmethod
    def from_mean_var(cls, mean: float, var: float) -> "Pareto":
        """Moment-matched Pareto (requires ``alpha > 2``, i.e. the target
        coefficient of variation must be below ``1/sqrt(alpha(alpha-2))``'s
        feasible range; concretely we solve ``alpha`` from ``cv^2``).

        For a Pareto, ``cv^2 = 1 / (alpha * (alpha - 2))``, so
        ``alpha = 1 + sqrt(1 + 1/cv^2)``.
        """
        if not (mean > 0.0 and var > 0.0):
            raise ConfigurationError("mean and var must be positive")
        cv2 = var / (mean * mean)
        alpha = 1.0 + math.sqrt(1.0 + 1.0 / cv2)
        xm = mean * (alpha - 1.0) / alpha
        return cls(xm=xm, alpha=alpha)

    @classmethod
    def from_mean_std(cls, mean: float, std: float) -> "Pareto":
        """Moment-matched Pareto from mean and standard deviation."""
        return cls.from_mean_var(mean, std * std)

    # ------------------------------------------------------------------
    def mean(self) -> float:
        if self.alpha <= 1.0:
            raise DistributionError(
                f"Pareto mean infinite for alpha={self.alpha} <= 1")
        return self.alpha * self.xm / (self.alpha - 1.0)

    def var(self) -> float:
        if self.alpha <= 2.0:
            raise DistributionError(
                f"Pareto variance infinite for alpha={self.alpha} <= 2")
        a = self.alpha
        return self.xm ** 2 * a / ((a - 1.0) ** 2 * (a - 2.0))

    def pdf(self, x):
        x = np.asarray(x, dtype=float)
        with np.errstate(divide="ignore", invalid="ignore"):
            dens = self.alpha * self.xm ** self.alpha / x ** (self.alpha + 1)
        return np.where(x >= self.xm, dens, 0.0)

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        with np.errstate(divide="ignore", invalid="ignore"):
            tail = (self.xm / x) ** self.alpha
        return np.where(x >= self.xm, 1.0 - tail, 0.0)

    def ppf(self, q):
        q = np.asarray(q, dtype=float)
        return self.xm / (1.0 - q) ** (1.0 / self.alpha)

    def sample(self, rng: np.random.Generator, size=None):
        # Inverse-transform sampling; rng.pareto returns the Lomax form.
        u = rng.random(size=size)
        return self.xm / (1.0 - u) ** (1.0 / self.alpha)

    @property
    def support(self) -> tuple[float, float]:
        return (self.xm, math.inf)

    def __repr__(self) -> str:
        return f"Pareto(xm={self.xm:.6g}, alpha={self.alpha:.6g})"
