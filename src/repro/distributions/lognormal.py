"""Lognormal distribution.

Listed by the paper as an alternative heavy-tailed fragment-size law.
The lognormal has **no** finite moment generating function for any
``theta > 0``, so Chernoff bounds require the truncated variant
(:class:`repro.distributions.truncated.Truncated`); the class itself
raises :class:`DistributionError` from :meth:`log_mgf`.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import stats

from repro.distributions.base import Distribution
from repro.errors import ConfigurationError

__all__ = ["LogNormal"]


class LogNormal(Distribution):
    """Lognormal distribution: ``log X ~ Normal(mu, sigma^2)``."""

    def __init__(self, mu: float, sigma: float) -> None:
        if not math.isfinite(mu):
            raise ConfigurationError(f"mu must be finite, got {mu!r}")
        self.mu = float(mu)
        self.sigma = self._require_positive("sigma", sigma)
        self._frozen = stats.lognorm(s=self.sigma, scale=math.exp(self.mu))

    # ------------------------------------------------------------------
    @classmethod
    def from_mean_var(cls, mean: float, var: float) -> "LogNormal":
        """Moment-matched lognormal with the given mean and variance."""
        if not (mean > 0.0):
            raise ConfigurationError(f"mean must be positive, got {mean!r}")
        if not (var > 0.0):
            raise ConfigurationError(f"var must be positive, got {var!r}")
        sigma2 = math.log1p(var / (mean * mean))
        mu = math.log(mean) - 0.5 * sigma2
        return cls(mu=mu, sigma=math.sqrt(sigma2))

    @classmethod
    def from_mean_std(cls, mean: float, std: float) -> "LogNormal":
        """Moment-matched lognormal from mean and standard deviation."""
        return cls.from_mean_var(mean, std * std)

    # ------------------------------------------------------------------
    def mean(self) -> float:
        return math.exp(self.mu + 0.5 * self.sigma ** 2)

    def var(self) -> float:
        s2 = self.sigma ** 2
        return math.expm1(s2) * math.exp(2.0 * self.mu + s2)

    def moment(self, k: int) -> float:
        """Raw moment ``E[X^k] = exp(k*mu + k^2 sigma^2 / 2)``."""
        if k < 0:
            raise ConfigurationError("moment order must be >= 0")
        return math.exp(k * self.mu + 0.5 * (k * self.sigma) ** 2)

    def pdf(self, x):
        return self._frozen.pdf(x)

    def cdf(self, x):
        return self._frozen.cdf(x)

    def ppf(self, q):
        return self._frozen.ppf(q)

    def sample(self, rng: np.random.Generator, size=None):
        return rng.lognormal(self.mu, self.sigma, size=size)

    def __repr__(self) -> str:
        return f"LogNormal(mu={self.mu:.6g}, sigma={self.sigma:.6g})"
