"""Binomial tails and the Hagerup-Rüb Chernoff bound.

Section 3.3 models the glitch count of one stream over ``M`` rounds as
``Binomial(M, p_glitch)`` (eq. 3.3.4) and bounds its upper tail with the
bound of Hagerup and Rüb [HR89] (eq. 3.3.5)::

    P[X >= g] <= (M p / g)^g * ((M - M p)/(M - g))^(M-g)     for g/M > p.

All evaluation is done in log space; the bound is reported as 1 whenever
its precondition ``g/M > p`` fails (the paper's Table 2 likewise saturates
at 1).
"""

from __future__ import annotations

import math

from scipy import stats

from repro.errors import ConfigurationError

__all__ = ["binomial_tail", "hagerup_rub_tail", "log_hagerup_rub_tail"]


def _validate(m: int, p: float, g: int) -> None:
    if not isinstance(m, int) or m <= 0:
        raise ConfigurationError(f"M must be a positive int, got {m!r}")
    if not isinstance(g, int) or g < 0:
        raise ConfigurationError(f"g must be a non-negative int, got {g!r}")
    if g > m:
        raise ConfigurationError(f"g={g} cannot exceed M={m}")
    if not (0.0 <= p <= 1.0):
        raise ConfigurationError(f"p must be in [0, 1], got {p!r}")


def binomial_tail(m: int, p: float, g: int) -> float:
    """Exact upper tail ``P[Binomial(M, p) >= g]``.

    This is the quantity eq. (3.3.4) sums up; the paper calls evaluating
    it "feasible but computationally expensive" -- with scipy's
    regularised incomplete beta it is cheap, and we use it to quantify the
    slack of the Hagerup-Rüb bound.
    """
    _validate(m, p, g)
    if g == 0:
        return 1.0
    return float(stats.binom.sf(g - 1, m, p))


def log_hagerup_rub_tail(m: int, p: float, g: int) -> float:
    """Natural log of the Hagerup-Rüb bound (eq. 3.3.5).

    Returns ``0.0`` (i.e. bound 1) when the precondition ``g/M > p``
    fails or when ``p`` saturates the trivial cases.
    """
    _validate(m, p, g)
    if p == 0.0:
        return -math.inf if g > 0 else 0.0
    if g == 0 or g / m <= p:
        return 0.0
    mp = m * p
    log_first = g * math.log(mp / g)
    if g == m:
        # ((M - Mp)/(M - g))^(M-g) -> 1 as the exponent is 0.
        log_second = 0.0
    else:
        log_second = (m - g) * math.log((m - mp) / (m - g))
    return log_first + log_second


def hagerup_rub_tail(m: int, p: float, g: int) -> float:
    """The Hagerup-Rüb bound on ``P[Binomial(M, p) >= g]`` (eq. 3.3.5)."""
    return min(1.0, math.exp(log_hagerup_rub_tail(m, p, g)))
