"""Truncation wrapper giving any distribution a finite MGF.

The paper's Chernoff machinery needs ``E[e^{theta X}] < inf`` for some
``theta > 0``.  Heavy-tailed size laws (Pareto, Lognormal) fail this, but
physically a fragment size is bounded: a fragment holds exactly one
round's worth of display time, and display bandwidth is bounded by the
innermost-zone disk bandwidth (§2.2).  Truncating the law at that bound
restores a finite MGF, which this wrapper computes by Gauss-Legendre
quadrature against the renormalised density.
"""

from __future__ import annotations

import math

import numpy as np

from repro.distributions.base import Distribution
from repro.errors import ConfigurationError

__all__ = ["Truncated"]

_QUAD_ORDER = 256


class Truncated(Distribution):
    """``base`` conditioned on ``low <= X <= high``.

    Parameters
    ----------
    base:
        The distribution being truncated.
    low, high:
        Truncation bounds; the probability mass of ``base`` inside
        ``[low, high]`` must be positive.
    """

    def __init__(self, base: Distribution, low: float, high: float) -> None:
        if not (high > low):
            raise ConfigurationError(
                f"require high > low, got low={low!r}, high={high!r}")
        if not math.isfinite(high):
            raise ConfigurationError("truncation bound high must be finite")
        self.base = base
        self.low = float(low)
        self.high = float(high)
        mass = float(base.cdf(high) - base.cdf(low))
        if mass <= 0.0:
            raise ConfigurationError(
                "base distribution has no mass inside the truncation window")
        self._mass = mass
        self._cdf_low = float(base.cdf(low))
        # Quadrature nodes for moments / MGF, fixed at construction.
        nodes, weights = np.polynomial.legendre.leggauss(_QUAD_ORDER)
        half = 0.5 * (self.high - self.low)
        mid = 0.5 * (self.high + self.low)
        self._x = mid + half * nodes
        self._w = half * weights * np.asarray(base.pdf(self._x)) / mass
        # Renormalise so the discrete measure has total mass exactly 1:
        # removes the quadrature's normalisation bias from every moment
        # and makes log_mgf(0) == 0 identically.
        self._w = self._w / np.sum(self._w)
        self._mean = float(np.sum(self._w * self._x))
        self._m2 = float(np.sum(self._w * self._x ** 2))

    # ------------------------------------------------------------------
    def mean(self) -> float:
        return self._mean

    def var(self) -> float:
        return max(self._m2 - self._mean ** 2, 0.0)

    def moment(self, k: int) -> float:
        """Raw moment ``E[X^k]`` by quadrature."""
        if k < 0:
            raise ConfigurationError("moment order must be >= 0")
        return float(np.sum(self._w * self._x ** k))

    def pdf(self, x):
        x = np.asarray(x, dtype=float)
        inside = (x >= self.low) & (x <= self.high)
        return np.where(inside, np.asarray(self.base.pdf(x)) / self._mass, 0.0)

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        raw = (np.asarray(self.base.cdf(x)) - self._cdf_low) / self._mass
        return np.clip(raw, 0.0, 1.0)

    def ppf(self, q):
        q = np.asarray(q, dtype=float)
        return self.base.ppf(self._cdf_low + q * self._mass)

    def sample(self, rng: np.random.Generator, size=None):
        # Inverse transform through the base ppf keeps exactness and is
        # vectorised; rejection sampling would be wasteful for narrow
        # windows.
        u = rng.random(size=size)
        return self.ppf(u)

    # ------------------------------------------------------------------
    @property
    def theta_sup(self) -> float:
        return math.inf

    def log_mgf(self, theta: float) -> float:
        """Quadrature evaluation of ``log E[e^{theta X} | low<=X<=high]``.

        Computed with max-factoring so large ``theta*high`` cannot
        overflow.
        """
        exponent = theta * self._x
        peak = float(np.max(exponent))
        return peak + math.log(float(np.sum(self._w * np.exp(exponent - peak))))

    @property
    def support(self) -> tuple[float, float]:
        return (self.low, self.high)

    def __repr__(self) -> str:
        return (f"Truncated({self.base!r}, low={self.low:.6g}, "
                f"high={self.high:.6g})")
