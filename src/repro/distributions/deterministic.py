"""Degenerate (point-mass) distribution.

Used for the constant ``SEEK`` term of the round service time (§3.1: the
Oyang bound turns the lumped seek time into a constant) and for the
constant-bit-rate workloads of the deterministic baselines.
"""

from __future__ import annotations

import math

import numpy as np

from repro.distributions.base import Distribution
from repro.errors import ConfigurationError

__all__ = ["Deterministic"]


class Deterministic(Distribution):
    """Point mass at ``value``."""

    def __init__(self, value: float) -> None:
        if not math.isfinite(value):
            raise ConfigurationError(f"value must be finite, got {value!r}")
        self.value = float(value)

    def mean(self) -> float:
        return self.value

    def var(self) -> float:
        return 0.0

    def pdf(self, x):
        # Densities of point masses are not functions; return an indicator
        # scaled as "infinite at the atom" is useless numerically, so we
        # return 0 everywhere and document that pdf is not meaningful here.
        x = np.asarray(x, dtype=float)
        return np.zeros_like(x)

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        return np.where(x >= self.value, 1.0, 0.0)

    def ppf(self, q):
        q = np.asarray(q, dtype=float)
        return np.full_like(q, self.value, dtype=float)

    def sample(self, rng: np.random.Generator, size=None):
        if size is None:
            return self.value
        return np.full(size, self.value, dtype=float)

    @property
    def theta_sup(self) -> float:
        return math.inf

    def log_mgf(self, theta: float) -> float:
        """``log E[e^{theta X}] = theta * value`` (eq. 3.1.3's e^{-s SEEK})."""
        return theta * self.value

    @property
    def support(self) -> tuple[float, float]:
        return (self.value, self.value)

    def __repr__(self) -> str:
        return f"Deterministic(value={self.value:.6g})"
