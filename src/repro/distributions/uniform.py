"""Continuous uniform distribution.

Rotational latency in the paper is ``Uniform(0, ROT)`` (eq. 3.1.2); its
Laplace-Stieltjes transform ``(1 - e^{-s ROT})/(s ROT)`` (eq. 3.1.3) is
the MGF evaluated at ``-s``.  The :meth:`log_mgf` implementation is
numerically careful around ``theta = 0``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.distributions.base import Distribution
from repro.errors import ConfigurationError

__all__ = ["Uniform"]


class Uniform(Distribution):
    """Uniform distribution on ``[low, high]``."""

    def __init__(self, low: float, high: float) -> None:
        if not (math.isfinite(low) and math.isfinite(high)):
            raise ConfigurationError("uniform bounds must be finite")
        if not (high > low):
            raise ConfigurationError(
                f"require high > low, got low={low!r}, high={high!r}")
        self.low = float(low)
        self.high = float(high)

    # ------------------------------------------------------------------
    def mean(self) -> float:
        return 0.5 * (self.low + self.high)

    def var(self) -> float:
        width = self.high - self.low
        return width * width / 12.0

    def pdf(self, x):
        x = np.asarray(x, dtype=float)
        inside = (x >= self.low) & (x <= self.high)
        return np.where(inside, 1.0 / (self.high - self.low), 0.0)

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        return np.clip((x - self.low) / (self.high - self.low), 0.0, 1.0)

    def ppf(self, q):
        q = np.asarray(q, dtype=float)
        return self.low + q * (self.high - self.low)

    def sample(self, rng: np.random.Generator, size=None):
        return rng.uniform(self.low, self.high, size=size)

    # ------------------------------------------------------------------
    @property
    def theta_sup(self) -> float:
        return math.inf

    def log_mgf(self, theta: float) -> float:
        """``log((e^{theta*high} - e^{theta*low}) / (theta*(high-low)))``.

        Uses a Taylor expansion for ``|theta|*(high-low)`` near zero and a
        max-factoring for large arguments so the result never overflows in
        the intermediate exponentials.
        """
        width = self.high - self.low
        z = theta * width
        if abs(z) < 1e-8:
            # log E = theta*mid + z^2/24 + O(z^4)
            return theta * self.mean() + z * z / 24.0
        # E[e^{tX}] = e^{t*low} * (e^{z} - 1) / z
        if z > 0:
            # log(expm1(z)) computed stably for large z
            if z > 30.0:
                log_expm1 = z + math.log1p(-math.exp(-z))
            else:
                log_expm1 = math.log(math.expm1(z))
            return theta * self.low + log_expm1 - math.log(z)
        # z < 0: (e^z - 1)/z = (1 - e^z)/(-z), both factors positive
        return theta * self.low + math.log(-math.expm1(z)) - math.log(-z)

    @property
    def support(self) -> tuple[float, float]:
        return (self.low, self.high)

    def __repr__(self) -> str:
        return f"Uniform(low={self.low:.6g}, high={self.high:.6g})"
