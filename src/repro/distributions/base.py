"""Abstract distribution protocol used across the library."""

from __future__ import annotations

import abc
import math
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import DistributionError

if TYPE_CHECKING:
    from numpy.typing import ArrayLike, NDArray

__all__ = ["Distribution"]


class Distribution(abc.ABC):
    """A univariate probability distribution.

    Subclasses must implement :meth:`mean`, :meth:`var`, :meth:`pdf`,
    :meth:`cdf`, :meth:`ppf` and :meth:`sample`.  Distributions with a
    finite moment generating function in a right neighbourhood of zero
    additionally override :meth:`log_mgf` and :attr:`theta_sup`;
    the default implementations raise :class:`DistributionError`.
    """

    # ------------------------------------------------------------------
    # moments
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def mean(self) -> float:
        """First moment ``E[X]``."""

    @abc.abstractmethod
    def var(self) -> float:
        """Variance ``Var[X]``."""

    def std(self) -> float:
        """Standard deviation ``sqrt(Var[X])``."""
        return math.sqrt(self.var())

    def second_moment(self) -> float:
        """Raw second moment ``E[X^2] = Var[X] + E[X]^2``."""
        return self.var() + self.mean() ** 2

    def cv(self) -> float:
        """Coefficient of variation ``std/mean``.

        Raises :class:`DistributionError` for zero-mean distributions.
        """
        mean = self.mean()
        if mean == 0.0:
            raise DistributionError(
                "coefficient of variation undefined for zero mean")
        return self.std() / abs(mean)

    # ------------------------------------------------------------------
    # densities and quantiles
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def pdf(self, x: ArrayLike) -> NDArray[np.float64]:
        """Probability density at ``x`` (vectorised)."""

    @abc.abstractmethod
    def cdf(self, x: ArrayLike) -> NDArray[np.float64]:
        """Cumulative distribution function ``P[X <= x]`` (vectorised)."""

    @abc.abstractmethod
    def ppf(self, q: ArrayLike) -> NDArray[np.float64]:
        """Quantile function (inverse cdf), vectorised over ``q``."""

    def sf(self, x: ArrayLike) -> NDArray[np.float64]:
        """Survival function ``P[X > x]``."""
        return 1.0 - self.cdf(x)

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def sample(self, rng: np.random.Generator,
               size: int | tuple[int, ...] | None = None
               ) -> float | NDArray[np.float64]:
        """Draw samples using the supplied NumPy generator."""

    # ------------------------------------------------------------------
    # transforms
    # ------------------------------------------------------------------
    @property
    def theta_sup(self) -> float:
        """Supremum of the domain of :meth:`log_mgf` on the positive axis.

        ``E[exp(theta*X)]`` is finite for ``theta`` in ``[0, theta_sup)``.
        ``math.inf`` means the MGF exists everywhere (bounded support).
        """
        raise DistributionError(
            f"{type(self).__name__} has no moment generating function; "
            "wrap it in Truncated(...) to obtain one")

    def log_mgf(self, theta: float) -> float:
        """Natural log of the moment generating function at ``theta``.

        The Laplace-Stieltjes transform of the paper is recovered as
        ``exp(log_mgf(-s))``.
        """
        raise DistributionError(
            f"{type(self).__name__} has no moment generating function; "
            "wrap it in Truncated(...) to obtain one")

    def has_mgf(self) -> bool:
        """Whether a finite MGF is available on some ``(0, theta_sup)``."""
        try:
            sup = self.theta_sup
        except DistributionError:
            return False
        return sup > 0.0

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    @property
    def support(self) -> tuple[float, float]:
        """Closure of the support as ``(lower, upper)``."""
        return (0.0, math.inf)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{type(self).__name__}(mean={self.mean():.6g}, "
                f"std={self.std():.6g})")

    # Helper for subclasses -------------------------------------------------
    @staticmethod
    def _require_positive(name: str, value: float) -> float:
        from repro.errors import ConfigurationError
        if not (value > 0.0) or not math.isfinite(value):
            raise ConfigurationError(
                f"{name} must be a positive finite number, got {value!r}")
        return float(value)
