"""Finite mixture distribution.

The paper's model draws each request's transfer time i.i.d. from one
law; when the server carries *heterogeneous stream classes* (audio at
64 KB/s next to video at 400 KB/s -- §1's "variable display bandwidth
both across different streams and within a single stream"), the natural
per-request law is the class mixture weighted by class population.  A
mixture of MGF-carrying components again has an MGF
(``E[e^{tX}] = sum_i w_i E_i[e^{tX}]``), so the whole Chernoff pipeline
goes through unchanged.
"""

from __future__ import annotations

import math

import numpy as np

from repro.distributions.base import Distribution
from repro.errors import ConfigurationError, DistributionError

__all__ = ["Mixture"]


class Mixture(Distribution):
    """Mixture ``sum_i w_i F_i`` of component distributions.

    Parameters
    ----------
    components:
        Sequence of ``(weight, distribution)`` pairs; weights must be
        positive and are normalised to 1.
    """

    def __init__(self, components) -> None:
        pairs = list(components)
        if not pairs:
            raise ConfigurationError("mixture needs >= 1 component")
        weights = np.array([w for w, _ in pairs], dtype=float)
        if np.any(weights <= 0):
            raise ConfigurationError("mixture weights must be positive")
        self._weights = weights / np.sum(weights)
        self._dists = [d for _, d in pairs]
        self._mean = float(sum(w * d.mean()
                               for w, d in zip(self._weights, self._dists)))
        second = float(sum(w * d.second_moment()
                           for w, d in zip(self._weights, self._dists)))
        self._var = max(second - self._mean ** 2, 0.0)

    @property
    def weights(self) -> np.ndarray:
        """Normalised component weights (read-only copy)."""
        return self._weights.copy()

    @property
    def components(self) -> list[Distribution]:
        """The component distributions."""
        return list(self._dists)

    # ------------------------------------------------------------------
    def mean(self) -> float:
        return self._mean

    def var(self) -> float:
        return self._var

    def moment(self, k: int) -> float:
        """Raw moment as the weighted component moments (requires each
        component to expose ``moment``)."""
        total = 0.0
        for w, d in zip(self._weights, self._dists):
            moment = getattr(d, "moment", None)
            if not callable(moment):
                raise DistributionError(
                    f"component {d!r} exposes no raw moments")
            total += w * float(moment(k))
        return total

    def pdf(self, x):
        x = np.asarray(x, dtype=float)
        total = np.zeros_like(x, dtype=float)
        for w, d in zip(self._weights, self._dists):
            total = total + w * np.asarray(d.pdf(x))
        return total

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        total = np.zeros_like(x, dtype=float)
        for w, d in zip(self._weights, self._dists):
            total = total + w * np.asarray(d.cdf(x))
        return total

    def ppf(self, q):
        """Quantiles by bisection on the mixture cdf (no closed form)."""
        q = np.atleast_1d(np.asarray(q, dtype=float))
        if np.any((q < 0) | (q > 1)):
            raise ConfigurationError("quantiles must lie in [0, 1]")
        # Bracket with the extreme component quantiles.
        lo = np.min([np.asarray(d.ppf(np.minimum(q, 1 - 1e-12)))
                     for d in self._dists], axis=0)
        hi = np.max([np.asarray(d.ppf(np.minimum(q, 1 - 1e-12)))
                     for d in self._dists], axis=0)
        lo = np.minimum(lo, hi - 1e-12)
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            below = self.cdf(mid) < q
            lo = np.where(below, mid, lo)
            hi = np.where(below, hi, mid)
            if np.max(hi - lo) < 1e-12 * max(np.max(np.abs(hi)), 1.0):
                break
        return 0.5 * (lo + hi)

    def sample(self, rng: np.random.Generator, size=None):
        if size is None:
            idx = int(rng.choice(len(self._dists), p=self._weights))
            return self._dists[idx].sample(rng)
        shape = (size,) if isinstance(size, int) else tuple(size)
        flat = int(np.prod(shape))
        idx = rng.choice(len(self._dists), size=flat, p=self._weights)
        out = np.empty(flat, dtype=float)
        for i, d in enumerate(self._dists):
            mask = idx == i
            count = int(np.sum(mask))
            if count:
                out[mask] = np.asarray(d.sample(rng, size=count))
        return out.reshape(shape)

    # ------------------------------------------------------------------
    @property
    def theta_sup(self) -> float:
        sups = []
        for d in self._dists:
            if not d.has_mgf():
                raise DistributionError(
                    f"mixture component {d!r} has no MGF")
            sups.append(d.theta_sup)
        return min(sups)

    def log_mgf(self, theta: float) -> float:
        """``log sum_i w_i exp(logmgf_i(theta))`` via log-sum-exp."""
        logs = []
        for w, d in zip(self._weights, self._dists):
            value = d.log_mgf(theta)
            if math.isinf(value):
                return math.inf
            logs.append(math.log(w) + value)
        peak = max(logs)
        return peak + math.log(sum(math.exp(v - peak) for v in logs))

    @property
    def support(self) -> tuple[float, float]:
        lows, highs = zip(*(d.support for d in self._dists))
        return (min(lows), max(highs))

    def __repr__(self) -> str:
        inner = ", ".join(f"{w:.3f}*{d!r}"
                          for w, d in zip(self._weights, self._dists))
        return f"Mixture({inner})"
