"""Probability-distribution substrate.

The analytic model of the paper consumes distributions through two narrow
interfaces: their first two moments (for moment matching, eq. 3.2.10) and
their moment generating function / Laplace-Stieltjes transform (for the
Chernoff machinery, eq. 3.1.3-3.1.5).  The simulator additionally needs
sampling.  Every distribution here implements the full
:class:`~repro.distributions.base.Distribution` protocol: pdf, cdf,
quantiles, moments, sampling and -- where it exists -- the log-MGF.

Fragment sizes in the paper are Gamma distributed; the paper notes the
derivation goes through for "other heavy-tailed distributions such as
Pareto or Lognormal as long as we can derive (or approximate) the
corresponding Laplace-Stieltjes transform".  Lognormal and Pareto have no
finite MGF on any right neighbourhood of zero, so the ablation experiments
use :class:`~repro.distributions.truncated.Truncated` versions whose MGF
is computed by quadrature -- physically justified because a fragment can
never exceed one round's worth of the maximum display bandwidth.
"""

from repro.distributions.base import Distribution
from repro.distributions.gamma import Gamma
from repro.distributions.lognormal import LogNormal
from repro.distributions.pareto import Pareto
from repro.distributions.uniform import Uniform
from repro.distributions.deterministic import Deterministic
from repro.distributions.truncated import Truncated
from repro.distributions.empirical import Empirical
from repro.distributions.mixture import Mixture
from repro.distributions.fit import FitResult, best_fit, fit_fragment_sizes
from repro.distributions.binomial import (
    binomial_tail,
    hagerup_rub_tail,
    log_hagerup_rub_tail,
)

__all__ = [
    "Distribution",
    "Gamma",
    "LogNormal",
    "Pareto",
    "Uniform",
    "Deterministic",
    "Truncated",
    "Empirical",
    "Mixture",
    "FitResult",
    "best_fit",
    "fit_fragment_sizes",
    "binomial_tail",
    "hagerup_rub_tail",
    "log_hagerup_rub_tail",
]
