"""Unit conventions and conversion helpers.

Everything inside the library uses **SI base units**: seconds for time and
bytes for data sizes.  Rates are bytes/second.  The helpers here exist so
that parameter tables lifted from the paper (which mixes milliseconds,
"KBytes" of 1000 bytes and KiB of 1024 bytes) can be written down in their
original units without silent conversion mistakes.

The paper is not consistent about what a "KByte" is: the worst-case
calculation of eq. (4.1) only reproduces with 1000-byte kilobytes, while
the Section 3.1 worked example's ``E[T_trans] = 0.02174 s`` implies a
75 KiB (1024-byte) track.  Both constants are provided; parameter presets
state which one they use.
"""

from __future__ import annotations

__all__ = [
    "KB",
    "KIB",
    "MB",
    "MIB",
    "GB",
    "MS",
    "US",
    "kilobytes",
    "kibibytes",
    "megabytes",
    "milliseconds",
    "microseconds",
    "seconds_to_ms",
    "bytes_to_kb",
]

#: Decimal kilobyte (1000 bytes) -- the convention the paper's eq. (4.1)
#: numbers are consistent with.
KB = 1_000

#: Binary kibibyte (1024 bytes) -- the convention implied by the §3.1
#: worked example's track capacity.
KIB = 1_024

#: Decimal megabyte.
MB = 1_000_000

#: Binary mebibyte.
MIB = 1_048_576

#: Decimal gigabyte.
GB = 1_000_000_000

#: One millisecond in seconds.
MS = 1e-3

#: One microsecond in seconds.
US = 1e-6


def kilobytes(n: float) -> float:
    """Convert decimal kilobytes to bytes."""
    return n * KB


def kibibytes(n: float) -> float:
    """Convert binary kibibytes to bytes."""
    return n * KIB


def megabytes(n: float) -> float:
    """Convert decimal megabytes to bytes."""
    return n * MB


def milliseconds(n: float) -> float:
    """Convert milliseconds to seconds."""
    return n * MS


def microseconds(n: float) -> float:
    """Convert microseconds to seconds."""
    return n * US


def seconds_to_ms(t: float) -> float:
    """Convert seconds to milliseconds (for display)."""
    return t / MS


def bytes_to_kb(n: float) -> float:
    """Convert bytes to decimal kilobytes (for display)."""
    return n / KB
