"""Machine-readable registry of the reproduction experiments.

Maps every experiment id (paper tables/figures E1-E8 and ablations
A1-A22) to its description, the bench that regenerates it and the
result artifact it writes -- the programmatic counterpart of the
per-experiment index in DESIGN.md.  Used by tooling (e.g. the
``reproduce_paper`` example and CI summaries) to enumerate and check
coverage.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigurationError

__all__ = ["Experiment", "REGISTRY", "get", "all_experiments",
           "result_path"]


@dataclass(frozen=True)
class Experiment:
    """One reproducible artifact."""

    id: str
    title: str
    paper_artifact: str
    bench: str
    results: tuple[str, ...]

    @property
    def is_paper_artifact(self) -> bool:
        """True for the paper's own tables/figures (E*), False for
        ablations/extensions (A*)."""
        return self.id.startswith("E")


_ENTRIES = [
    Experiment("E1", "Section 3.1 worked example (single-zone)",
               "§3.1 numbers: SEEK(27), transfer moments, p_late(26/27)",
               "bench_e1_section31_example.py",
               ("e1_section31_example",)),
    Experiment("E2", "Section 3.2 worked example (multi-zone)",
               "§3.2 numbers: p_late(26/27), N_max=26",
               "bench_e2_section32_example.py",
               ("e2_section32_example",)),
    Experiment("E3", "Gamma approximation quality",
               "§3.2 '< 2 %' transfer-time approximation claim",
               "bench_e3_gamma_approx_error.py",
               ("e3_gamma_approx_error",)),
    Experiment("E4", "Section 3.3 worked example",
               "§3.3: p_error(28, 1200, 12) <= 0.14e-3",
               "bench_e4_section33_example.py",
               ("e4_section33_example",)),
    Experiment("E5", "Figure 1", "analytic vs simulated p_late over N",
               "bench_e5_figure1.py", ("e5_figure1",)),
    Experiment("E6", "Table 2", "p_error analytic vs simulated, N=28..32",
               "bench_e6_table2.py", ("e6_table2",)),
    Experiment("E7", "Worst-case comparison", "eq. (4.1): N_wc = 10 / 14",
               "bench_e7_worstcase.py", ("e7_worstcase",)),
    Experiment("E8", "Admission lookup table", "§5 precomputed N_max table",
               "bench_e8_admission_lookup.py", ("e8_admission_lookup",)),
    Experiment("A1", "Fragment-size laws",
               "§3.1 remark: Pareto/Lognormal alternatives",
               "bench_a1_size_distributions.py",
               ("a1_size_distributions", "a1_truncation_cap")),
    Experiment("A2", "Zone-count sweep / single-zone collapse",
               "what §3.2's zone modelling buys",
               "bench_a2_zone_sweep.py",
               ("a2_zone_sweep", "a2_singlezone_collapse")),
    Experiment("A3", "Round-length sweep", "§2.3 configuration parameter",
               "bench_a3_round_length.py", ("a3_round_length",)),
    Experiment("A4", "Baseline tightness",
               "§3.1's criticism of [CL96]/[CZ94]",
               "bench_a4_baselines.py", ("a4_baselines",)),
    Experiment("A5", "Oyang bound slack", "[Oya95] bound vs simulation",
               "bench_a5_seek_bound.py", ("a5_seek_bound",)),
    Experiment("A6", "Trace-driven VBR", "§2.3 workload-statistics loop",
               "bench_a6_vbr_traces.py", ("a6_vbr_traces",)),
    Experiment("A7", "Heterogeneous classes",
               "abstract: across-stream bandwidth variability",
               "bench_a7_heterogeneous.py", ("a7_heterogeneous",)),
    Experiment("A8", "Buffering + prefetch", "§6 outlook",
               "bench_a8_prefetch_buffering.py",
               ("a8_prefetch_buffering", "a8_capacity_curve")),
    Experiment("A9", "Mixed workload", "§6 outlook / [NMW97]",
               "bench_a9_mixed_workload.py", ("a9_mixed_workload",)),
    Experiment("A10", "Placement policies", "§2.2 outlook",
               "bench_a10_placement.py", ("a10_placement",)),
    Experiment("A11", "Phase balance", "§3's uniform-load assumption",
               "bench_a11_phase_balance.py", ("a11_phase_balance",)),
    Experiment("A12", "Multicast sharing", "duplicate-fetch elimination",
               "bench_a12_multicast_sharing.py",
               ("a12_multicast_sharing",)),
    Experiment("A13", "Discrete queue", "response times on the leftover",
               "bench_a13_discrete_queue.py", ("a13_discrete_queue",)),
    Experiment("A14", "Sensitivity", "which parameters move N_max",
               "bench_a14_sensitivity.py", ("a14_sensitivity",)),
    Experiment("A15", "Fault injection", "thermal recalibration",
               "bench_a15_fault_injection.py", ("a15_fault_injection",)),
    Experiment("A16", "Grouped Sweeping Scheduling",
               "[CKY93] comparator: throughput vs latency vs buffers",
               "bench_a16_gss.py", ("a16_gss",)),
    Experiment("A17", "Scheduling disciplines",
               "§2.3's SCAN choice vs FIFO/SSTF/C-SCAN",
               "bench_a17_disciplines.py", ("a17_disciplines",)),
    Experiment("A18", "Farm planning",
               "heterogeneous striped farms; degraded-mode admission",
               "bench_a18_farm_planning.py", ("a18_farm_planning",)),
    Experiment("A19", "Trick modes",
               "§2.1's no-fast-forward assumption, priced",
               "bench_a19_trickmode.py", ("a19_trickmode",)),
    Experiment("A20", "Parallel scaling + bound cache",
               "infrastructure: deterministic Monte-Carlo fan-out and "
               "memoized admission scans",
               "bench_a20_parallel_scaling.py", ("a20_parallel_scaling",)),
    Experiment("A21", "Runtime failover + load shedding",
               "degraded-mode guarantee end to end: mirror failover "
               "with shedding meets the doubled-batch Chernoff bound, "
               "without shedding it violates",
               "bench_a21_failover_shedding.py",
               ("a21_failover_shedding",)),
    Experiment("A22", "Sweep kernel speedup",
               "event engine vs vectorised farm kernel on the same "
               "failover scenario; the speedup ratio is the CI "
               "regression gate (benchmarks/report.py)",
               "bench_a22_server_kernel.py", ("a22_server_kernel",)),
    Experiment("A23", "Live daemon warm start + QPS",
               "repro serve operationally: cold vs warm admission-table "
               "build (the gated warm-start speedup) and admissions/sec "
               "over HTTP through a fault storm",
               "bench_a23_serve_qps.py", ("a23_serve_qps",)),
    Experiment("A24", "Scenario-compiler speedup",
               "a fault storm (failure + recalibration storm + "
               "recovery) through the event engine vs the scenario "
               "compiler's kernel path, plus the threads-vs-fork "
               "transport ratio; the compiled-path speedup is a CI "
               "regression gate",
               "bench_a24_scenario_kernel.py", ("a24_scenario_kernel",)),
    Experiment("A25", "Closed-loop adaptive admission",
               "a static and an adaptive daemon through the same "
               "deterministic slow-disk drift: static admission "
               "provably violates epsilon while the controller "
               "retunes (cached Chernoff re-solves at t/s) and holds "
               "it; the violation ratio is a CI regression gate",
               "bench_a25_adaptive_control.py",
               ("a25_adaptive_control",)),
    Experiment("A26", "Span-tracing overhead + SLO detection",
               "interleaved spans-off/spans-on request pairs against "
               "one live daemon gate the tracing overhead "
               "(median-paired admissions/sec ratio, a CI regression "
               "gate) and a deterministic drift storm gates the SLO "
               "engine's burn-rate detection latency",
               "bench_a26_trace_overhead.py",
               ("a26_trace_overhead",)),
    Experiment("A27", "Sharded admission hot path",
               "per-ticket legacy admits vs the sharded ledger's "
               "batch admission API across thread counts and batch "
               "sizes; the 8-thread batch-16 admissions/sec speedup "
               "over the legacy controller is a CI regression gate",
               "bench_a27_shard_qps.py", ("a27_shard_qps",)),
]

#: Registry keyed by experiment id.
REGISTRY: dict[str, Experiment] = {e.id: e for e in _ENTRIES}


def get(experiment_id: str) -> Experiment:
    """Look up one experiment by id (e.g. ``"E5"``)."""
    try:
        return REGISTRY[experiment_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; known: "
            f"{sorted(REGISTRY)}") from None


def all_experiments() -> list[Experiment]:
    """All experiments in registry order (E* first, then A*)."""
    return list(_ENTRIES)


def result_path(result_name: str,
                base: Path | str | None = None) -> Path:
    """Path of a bench's result artifact.

    ``base`` defaults to ``benchmarks/results`` relative to the
    repository root (resolved from this file's location; override in
    installed deployments).
    """
    if base is None:
        # Walk up from this file to the source checkout's root (the
        # first ancestor holding a benchmarks/ directory); fall back to
        # the working directory for installed deployments.
        for parent in Path(__file__).resolve().parents:
            if (parent / "benchmarks").is_dir():
                base = parent / "benchmarks" / "results"
                break
        else:
            base = Path.cwd() / "benchmarks" / "results"
    return Path(base) / f"{result_name}.txt"
