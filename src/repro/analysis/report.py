"""Reproduction-report generator.

Assembles a single markdown document from the experiment registry and
whatever result artifacts the benches have written -- the "what did
this checkout actually measure" companion to the curated EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.experiments import all_experiments, result_path

__all__ = ["build_report", "write_report"]


def build_report(results_base: Path | str | None = None) -> str:
    """Markdown report over all registered experiments.

    Experiments whose artifacts are missing are listed as "not yet run"
    so the report doubles as a coverage check.
    """
    lines = [
        "# Reproduction report",
        "",
        "Generated from `benchmarks/results/`; regenerate the inputs "
        "with `pytest benchmarks/ --benchmark-only`.",
        "",
    ]
    missing: list[str] = []
    for section, title in (("E", "Paper artifacts"),
                           ("A", "Ablations and extensions")):
        lines.append(f"## {title}")
        lines.append("")
        for exp in all_experiments():
            if not exp.id.startswith(section):
                continue
            lines.append(f"### {exp.id}: {exp.title}")
            lines.append("")
            lines.append(f"*{exp.paper_artifact}* "
                         f"(`benchmarks/{exp.bench}`)")
            lines.append("")
            for name in exp.results:
                path = result_path(name, base=results_base)
                if path.is_file():
                    lines.append("```")
                    lines.append(path.read_text(encoding="utf-8")
                                 .rstrip())
                    lines.append("```")
                else:
                    missing.append(f"{exp.id}/{name}")
                    lines.append(f"*artifact `{name}` not yet run*")
                lines.append("")
    if missing:
        lines.append("## Missing artifacts")
        lines.append("")
        lines.extend(f"- {entry}" for entry in missing)
        lines.append("")
    return "\n".join(lines)


def write_report(path: Path | str,
                 results_base: Path | str | None = None) -> Path:
    """Write the report to ``path`` and return it."""
    path = Path(path)
    path.write_text(build_report(results_base), encoding="utf-8")
    return path
