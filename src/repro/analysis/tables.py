"""Plain-text table rendering for benchmark/experiment output."""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import ConfigurationError

__all__ = ["render_table", "format_probability"]


def format_probability(p: float, digits: int = 5) -> str:
    """Human-friendly probability: fixed point in the mid range,
    scientific for deep tails, bare ``0``/``1`` at the ends."""
    if p == 0.0:
        return "0"
    if p >= 1.0:
        return "1"
    if p >= 10.0 ** (-digits):
        return f"{p:.{digits}f}"
    return f"{p:.2e}"


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str | None = None) -> str:
    """Render an aligned ASCII table (the benches print paper tables
    with this)."""
    if not headers:
        raise ConfigurationError("headers must be non-empty")
    str_rows = [[str(cell) for cell in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row has {len(row)} cells, expected {len(headers)}")
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i])
                          for i, cell in enumerate(cells)).rstrip()

    rule = "-+-".join("-" * w for w in widths)
    out: list[str] = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(headers))
    out.append(rule)
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)
