"""Statistical estimators and experiment-reporting utilities."""

from repro.analysis.stats import (
    wilson_interval,
    mean_confidence_interval,
    batch_means,
)
from repro.analysis.tables import render_table, format_probability
from repro.analysis.compare import ComparisonRow, comparison_table
from repro.analysis.plotting import ascii_chart
from repro.analysis.experiments import (
    Experiment,
    REGISTRY,
    all_experiments,
)
from repro.analysis.report import build_report, write_report
from repro.analysis.sensitivity import SensitivityRow, admission_sensitivity

__all__ = [
    "wilson_interval",
    "mean_confidence_interval",
    "batch_means",
    "render_table",
    "format_probability",
    "ComparisonRow",
    "comparison_table",
    "ascii_chart",
    "Experiment",
    "REGISTRY",
    "all_experiments",
    "build_report",
    "write_report",
    "SensitivityRow",
    "admission_sensitivity",
]
