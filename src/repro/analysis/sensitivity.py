"""Sensitivity of the admission limit to configuration parameters.

§5: the lookup table "has to be updated by re-evaluating the analytic
model only if the disk configuration or general data characteristics
change".  This module quantifies *how much* each parameter matters:
finite-difference sensitivities of ``N_max^perror`` with respect to the
drive's mechanics (rotation speed, seek coefficients, zone capacities)
and the workload moments (mean fragment size, coefficient of
variation), so an operator knows which spec-sheet numbers deserve
re-measurement.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.glitch import GlitchModel
from repro.core.admission import n_max_perror
from repro.core.service_time import RoundServiceTimeModel
from repro.disk.presets import DiskSpec
from repro.disk.seek import SeekCurve
from repro.disk.zones import ZoneMap
from repro.distributions import Gamma
from repro.errors import ConfigurationError

__all__ = ["SensitivityRow", "admission_sensitivity"]


@dataclass(frozen=True)
class SensitivityRow:
    """N_max at -delta / base / +delta of one parameter."""

    parameter: str
    rel_delta: float
    n_max_low: int
    n_max_base: int
    n_max_high: int

    @property
    def swing(self) -> int:
        """Total N_max movement across the +-delta window."""
        return self.n_max_high - self.n_max_low


def _perturbed_specs(spec: DiskSpec, factor: float) -> dict[str, DiskSpec]:
    """One spec per perturbable hardware parameter, scaled by
    ``factor``."""
    zone = spec.zone_map
    curve = spec.seek_curve
    return {
        "rotation time": replace(
            spec, zone_map=ZoneMap(zone.capacities, zone.rot * factor)),
        "zone capacities": replace(
            spec, zone_map=ZoneMap(zone.capacities * factor, zone.rot)),
        "seek sqrt coefficient": replace(
            spec, seek_curve=SeekCurve(
                curve.a_sqrt, curve.b_sqrt * factor, curve.a_lin,
                curve.b_lin, curve.threshold)),
        "seek linear coefficient": replace(
            spec, seek_curve=SeekCurve(
                curve.a_sqrt, curve.b_sqrt, curve.a_lin,
                curve.b_lin * factor, curve.threshold)),
    }


def _n_max(spec: DiskSpec, mean: float, cv: float, t: float, m: int,
           g: int, epsilon: float) -> int:
    sizes = Gamma.from_mean_std(mean, cv * mean)
    model = RoundServiceTimeModel.for_disk(spec, sizes)
    return n_max_perror(GlitchModel(model, t), m, g, epsilon)


def admission_sensitivity(spec: DiskSpec, mean_size: float, cv: float,
                          t: float, m: int, g: int, epsilon: float,
                          rel_delta: float = 0.10) -> list[SensitivityRow]:
    """Finite-difference sensitivity table of ``N_max^perror``.

    Every hardware and workload parameter is scaled by ``1 +- rel_delta``
    in turn while the rest stay at base values.
    """
    if not (0.0 < rel_delta < 1.0):
        raise ConfigurationError(
            f"rel_delta must be in (0, 1), got {rel_delta!r}")
    base = _n_max(spec, mean_size, cv, t, m, g, epsilon)
    rows = []

    lows = _perturbed_specs(spec, 1.0 - rel_delta)
    highs = _perturbed_specs(spec, 1.0 + rel_delta)
    for name in lows:
        rows.append(SensitivityRow(
            parameter=name, rel_delta=rel_delta,
            n_max_low=_n_max(lows[name], mean_size, cv, t, m, g,
                             epsilon),
            n_max_base=base,
            n_max_high=_n_max(highs[name], mean_size, cv, t, m, g,
                              epsilon)))

    rows.append(SensitivityRow(
        parameter="mean fragment size", rel_delta=rel_delta,
        n_max_low=_n_max(spec, mean_size * (1 - rel_delta), cv, t, m, g,
                         epsilon),
        n_max_base=base,
        n_max_high=_n_max(spec, mean_size * (1 + rel_delta), cv, t, m,
                          g, epsilon)))
    rows.append(SensitivityRow(
        parameter="size coefficient of variation", rel_delta=rel_delta,
        n_max_low=_n_max(spec, mean_size, cv * (1 - rel_delta), t, m, g,
                         epsilon),
        n_max_base=base,
        n_max_high=_n_max(spec, mean_size, cv * (1 + rel_delta), t, m,
                          g, epsilon)))
    rows.append(SensitivityRow(
        parameter="round length", rel_delta=rel_delta,
        n_max_low=_n_max(spec, mean_size, cv, t * (1 - rel_delta),
                         int(m / (1 - rel_delta)), g, epsilon),
        n_max_base=base,
        n_max_high=_n_max(spec, mean_size, cv, t * (1 + rel_delta),
                          int(m / (1 + rel_delta)), g, epsilon)))
    return rows
