"""Analytic-vs-simulated comparison records.

Every validation experiment produces rows pairing the analytic bound
with the simulated estimate (plus its confidence interval); the
``conservative`` flag checks the defining property of the paper's
bounds -- the analytic value must sit at or above the simulated truth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_probability, render_table

__all__ = ["ComparisonRow", "comparison_table"]


@dataclass(frozen=True)
class ComparisonRow:
    """One (parameter, analytic, simulated) comparison."""

    label: str
    analytic: float
    simulated: float
    ci_low: float | None = None
    ci_high: float | None = None

    @property
    def conservative(self) -> bool:
        """True when the analytic bound does not undercut the simulated
        value (allowing for the CI when one is attached)."""
        reference = self.simulated if self.ci_low is None else self.ci_low
        return self.analytic >= reference

    @property
    def slack(self) -> float:
        """Analytic minus simulated (how much the bound gives away)."""
        return self.analytic - self.simulated


def comparison_table(rows, title: str | None = None,
                     label_header: str = "N") -> str:
    """Render comparison rows the way the paper's Table 2 is laid out."""
    body = []
    for row in rows:
        if row.ci_low is None:
            ci = "-"
        else:
            ci = (f"[{format_probability(row.ci_low)}, "
                  f"{format_probability(row.ci_high)}]")
        body.append([
            row.label,
            format_probability(row.analytic),
            format_probability(row.simulated),
            ci,
            "yes" if row.conservative else "NO",
        ])
    return render_table(
        [label_header, "analytic", "simulated", "sim 95% CI",
         "conservative"],
        body, title=title)
