"""Dependency-free ASCII charts for benchmark artifacts.

The benches regenerate the paper's *figures* as data tables plus an
ASCII rendering (no plotting libraries are available offline).  Two
chart types cover the paper's needs: an xy line/scatter overlay
(Figure 1) and a log-scale variant for probability curves spanning
orders of magnitude.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.errors import ConfigurationError

__all__ = ["ascii_chart"]

_MARKS = "*o+x#@"


def _scale(value: float, lo: float, hi: float, log: bool) -> float:
    if log:
        value, lo, hi = math.log10(value), math.log10(lo), math.log10(hi)
    if hi == lo:
        return 0.5
    return (value - lo) / (hi - lo)


def ascii_chart(x: Sequence[float],
                series: dict[str, Sequence[float]],
                width: int = 64, height: int = 16,
                log_y: bool = False, y_floor: float = 1e-6,
                title: str | None = None) -> str:
    """Render overlaid series as an ASCII chart.

    Parameters
    ----------
    x:
        Common x coordinates (monotone).
    series:
        Mapping of label to y values (same length as ``x``).
    log_y:
        Use a log10 y axis; values at or below ``y_floor`` are clamped
        to the floor (drawn on the axis), which suits probability
        curves with exact zeros.
    """
    if len(x) < 2:
        raise ConfigurationError("need >= 2 x points")
    if not series:
        raise ConfigurationError("need >= 1 series")
    for label, ys in series.items():
        if len(ys) != len(x):
            raise ConfigurationError(
                f"series {label!r} has {len(ys)} points, "
                f"expected {len(x)}")
    if len(series) > len(_MARKS):
        raise ConfigurationError(
            f"at most {len(_MARKS)} series supported")
    if width < 16 or height < 4:
        raise ConfigurationError("chart too small to be legible")

    cleaned = {
        label: [max(float(v), y_floor) if log_y else float(v)
                for v in ys]
        for label, ys in series.items()
    }
    y_lo = min(min(ys) for ys in cleaned.values())
    y_hi = max(max(ys) for ys in cleaned.values())
    if log_y:
        y_lo = max(y_lo, y_floor)
        y_hi = max(y_hi, y_lo * 10)
    x_lo, x_hi = float(x[0]), float(x[-1])

    grid = [[" "] * width for _ in range(height)]
    for s_idx, (label, ys) in enumerate(cleaned.items()):
        mark = _MARKS[s_idx]
        for xi, yi in zip(x, ys):
            col = round(_scale(float(xi), x_lo, x_hi, False)
                        * (width - 1))
            row = round(_scale(yi, y_lo, y_hi, log_y) * (height - 1))
            grid[height - 1 - row][col] = mark

    def y_label(fraction: float) -> str:
        if log_y:
            value = 10 ** (math.log10(y_lo)
                           + fraction * (math.log10(y_hi)
                                         - math.log10(y_lo)))
        else:
            value = y_lo + fraction * (y_hi - y_lo)
        return f"{value:8.2e}"

    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        fraction = 1.0 - i / (height - 1)
        label = y_label(fraction) if i % max(height // 4, 1) == 0 else \
            " " * 8
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * 8 + "+" + "-" * width)
    lines.append(f"{'':8} x: {x_lo:g} .. {x_hi:g}    "
                 + "  ".join(f"{_MARKS[i]}={label}"
                             for i, label in enumerate(cleaned)))
    return "\n".join(lines)
