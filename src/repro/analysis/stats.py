"""Confidence intervals and estimators for simulation output."""

from __future__ import annotations

import math

import numpy as np
from scipy import stats

from repro.errors import ConfigurationError

__all__ = ["wilson_interval", "mean_confidence_interval", "batch_means"]


def wilson_interval(successes: int, trials: int,
                    confidence: float = 0.95) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Preferred over the normal ("Wald") interval because the estimated
    probabilities here are tiny (glitch rates of 1e-2..1e-4) where Wald
    intervals collapse to zero width around zero counts.
    """
    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials!r}")
    if not (0 <= successes <= trials):
        raise ConfigurationError(
            f"successes must be in [0, {trials}], got {successes!r}")
    if not (0.0 < confidence < 1.0):
        raise ConfigurationError(
            f"confidence must be in (0, 1), got {confidence!r}")
    z = float(stats.norm.ppf(0.5 + confidence / 2.0))
    p_hat = successes / trials
    denom = 1.0 + z * z / trials
    centre = (p_hat + z * z / (2 * trials)) / denom
    half = (z / denom) * math.sqrt(
        p_hat * (1.0 - p_hat) / trials + z * z / (4.0 * trials * trials))
    return max(0.0, centre - half), min(1.0, centre + half)


def mean_confidence_interval(samples, confidence: float = 0.95
                             ) -> tuple[float, float, float]:
    """``(mean, low, high)`` Student-t confidence interval of the mean."""
    data = np.asarray(samples, dtype=float).ravel()
    if data.size < 2:
        raise ConfigurationError(
            f"need >= 2 samples for a CI, got {data.size}")
    if not (0.0 < confidence < 1.0):
        raise ConfigurationError(
            f"confidence must be in (0, 1), got {confidence!r}")
    mean = float(np.mean(data))
    sem = float(stats.sem(data))
    if sem == 0.0:
        return mean, mean, mean
    half = sem * float(stats.t.ppf(0.5 + confidence / 2.0, data.size - 1))
    return mean, mean - half, mean + half


def batch_means(samples, batches: int = 20) -> tuple[float, float]:
    """Batch-means estimate ``(mean, standard error)`` for possibly
    autocorrelated simulation output.

    Splits the sample into ``batches`` contiguous batches and treats
    batch averages as approximately independent -- the standard
    steady-state simulation estimator.
    """
    data = np.asarray(samples, dtype=float).ravel()
    if batches < 2:
        raise ConfigurationError(f"batches must be >= 2, got {batches!r}")
    if data.size < 2 * batches:
        raise ConfigurationError(
            f"need >= {2 * batches} samples for {batches} batches, "
            f"got {data.size}")
    usable = (data.size // batches) * batches
    means = data[:usable].reshape(batches, -1).mean(axis=1)
    grand = float(np.mean(means))
    se = float(np.std(means, ddof=1) / math.sqrt(batches))
    return grand, se
