"""Data layout: coarse-grained striping and random in-disk placement.

Fragments of an object are assigned to disks round-robin (§2.1, the
[ÖRS96]/[BGM94] coarse-grained scheme with cluster size 1 and stride 1),
so time-wise successive fragments of a stream hit successive disks and
the per-disk load stays balanced.  Within a disk, each fragment gets an
independent sector-uniform position -- the §3.3 independence condition
("one has to ensure that all fragments of one object reside in
uncorrelated positions of the sweeps of the different disks").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.farm import mirror_of
from repro.disk.presets import DiskSpec
from repro.errors import ConfigurationError

__all__ = ["FragmentLocation", "StripedLayout"]


@dataclass(frozen=True)
class FragmentLocation:
    """Physical address of one stored fragment.

    ``mirror_disk``/``mirror_cylinder`` give the RAID-1 replica's
    address on mirrored layouts (``None`` otherwise); the replica has
    its own independent in-disk position, preserving the §3.3
    uncorrelated-positions condition on the failover path too.
    """

    disk: int
    cylinder: int
    size: float
    mirror_disk: int | None = None
    mirror_cylinder: int | None = None


class StripedLayout:
    """Placement directory for continuous objects on a disk farm.

    Parameters
    ----------
    specs:
        One :class:`DiskSpec` per disk (usually ``[spec] * d``).
    rng:
        Source of the random in-disk positions.
    """

    def __init__(self, specs: list[DiskSpec],
                 rng: np.random.Generator,
                 mirrored: bool = False) -> None:
        if not specs:
            raise ConfigurationError("need at least one disk")
        if mirrored and len(specs) < 2:
            raise ConfigurationError(
                "mirrored layout needs at least two disks")
        self.specs = list(specs)
        self.mirrored = bool(mirrored)
        self._rng = rng
        self._objects: dict[str, list[FragmentLocation]] = {}
        self._next_first_disk = 0

    @property
    def disks(self) -> int:
        """Number of disks in the farm."""
        return len(self.specs)

    # ------------------------------------------------------------------
    def store(self, name: str, fragment_sizes) -> list[FragmentLocation]:
        """Lay out an object's fragments round-robin across the disks.

        The starting disk rotates per object so that concurrent streams
        on different objects stay balanced even at low object counts.
        """
        if name in self._objects:
            raise ConfigurationError(f"object {name!r} already stored")
        sizes = np.asarray(fragment_sizes, dtype=float).ravel()
        if sizes.size == 0:
            raise ConfigurationError("object must have >= 1 fragment")
        if np.any(sizes <= 0):
            raise ConfigurationError("fragment sizes must be positive")
        first = self._next_first_disk
        self._next_first_disk = (self._next_first_disk + 1) % self.disks
        locations = []
        for idx, size in enumerate(sizes):
            disk = (first + idx) % self.disks
            cylinder = int(self.specs[disk].geometry.sample_cylinder(
                self._rng))
            mirror_disk = mirror_cyl = None
            if self.mirrored:
                mirror_disk = mirror_of(disk, self.disks)
                if mirror_disk is not None:
                    mirror_cyl = int(
                        self.specs[mirror_disk].geometry.sample_cylinder(
                            self._rng))
            locations.append(FragmentLocation(
                disk=disk, cylinder=cylinder, size=float(size),
                mirror_disk=mirror_disk, mirror_cylinder=mirror_cyl))
        self._objects[name] = locations
        return locations

    def locate(self, name: str, fragment: int) -> FragmentLocation:
        """Address of one fragment of a stored object."""
        locations = self._objects.get(name)
        if locations is None:
            raise ConfigurationError(f"unknown object {name!r}")
        if not (0 <= fragment < len(locations)):
            raise ConfigurationError(
                f"fragment {fragment} out of range "
                f"[0, {len(locations)}) for object {name!r}")
        return locations[fragment]

    def object_length(self, name: str) -> int:
        """Number of fragments of a stored object."""
        locations = self._objects.get(name)
        if locations is None:
            raise ConfigurationError(f"unknown object {name!r}")
        return len(locations)

    def objects(self) -> list[str]:
        """Names of all stored objects."""
        return list(self._objects)

    def disk_load_profile(self, name: str) -> np.ndarray:
        """Fragments per disk for one object -- round-robin striping
        makes this balanced to within one fragment."""
        locations = self.locate_all(name)
        counts = np.zeros(self.disks, dtype=int)
        for loc in locations:
            counts[loc.disk] += 1
        return counts

    def locate_all(self, name: str) -> list[FragmentLocation]:
        """All fragment locations of an object, in display order."""
        locations = self._objects.get(name)
        if locations is None:
            raise ConfigurationError(f"unknown object {name!r}")
        return list(locations)

    def __repr__(self) -> str:
        return (f"StripedLayout(disks={self.disks}, "
                f"objects={len(self._objects)})")
