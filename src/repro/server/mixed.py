"""Mixed-workload simulation (continuous streams + discrete requests).

Validates :class:`repro.core.mixed.MixedWorkloadModel`.  Each round the
disk receives ``n`` continuous requests and ``k`` discrete requests.

- ``integrated`` policy: one SCAN sweep over all ``n + k`` requests;
  any request past the deadline fails (continuous ones glitch).
- ``continuous-first`` policy: the sweep serves the continuous batch
  first, then turns around and serves the discrete batch with the
  remaining time; discrete requests that do not finish are carried as
  "missed" (a real server would queue them, which only needs the
  per-round completion counts this function reports).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.disk.presets import DiskSpec
from repro.distributions import Distribution
from repro.errors import ConfigurationError
from repro.server.simulation import _sample_cylinders_rates, _validate

__all__ = ["MixedBatch", "simulate_mixed_rounds", "DiscreteQueueResult",
           "simulate_discrete_queue"]


@dataclass(frozen=True)
class MixedBatch:
    """Result of a mixed-workload simulation."""

    policy: str
    service_times: np.ndarray        # total busy time per round
    continuous_glitches: np.ndarray  # (rounds, n) boolean
    discrete_served: np.ndarray      # discrete completions per round

    @property
    def rounds(self) -> int:
        """Number of simulated rounds."""
        return self.service_times.shape[0]

    @property
    def continuous_glitch_rate(self) -> float:
        """Continuous glitches per stream-round."""
        return float(np.mean(self.continuous_glitches))

    @property
    def mean_discrete_throughput(self) -> float:
        """Discrete completions per round."""
        return float(np.mean(self.discrete_served))


def _sweep(spec: DiskSpec, rng: np.random.Generator, arm: float,
           cylinders: np.ndarray, transfer: np.ndarray,
           descending: bool, start_time: float
           ) -> tuple[np.ndarray, np.ndarray, float]:
    """Serve one sorted sweep; returns (completion times in input order,
    sort order, arm end)."""
    order = np.argsort(cylinders, kind="stable")
    if descending:
        order = order[::-1]
    sorted_cyl = cylinders[order].astype(float)
    distances = np.concatenate((
        [abs(sorted_cyl[0] - arm)], np.abs(np.diff(sorted_cyl))))
    seek = np.asarray(spec.seek_curve(distances))
    rotation = rng.uniform(0.0, spec.rot, size=cylinders.size)
    completion = start_time + np.cumsum(seek + rotation + transfer[order])
    return completion, order, float(sorted_cyl[-1])


def simulate_mixed_rounds(spec: DiskSpec, continuous_sizes: Distribution,
                          discrete_sizes: Distribution, n: int, k: int,
                          t: float, rounds: int,
                          rng: np.random.Generator,
                          policy: str = "continuous-first") -> MixedBatch:
    """Simulate ``rounds`` rounds of ``n`` continuous + ``k`` discrete
    requests under the chosen policy."""
    _validate(spec, n, t, rounds)
    if k < 0:
        raise ConfigurationError(f"k must be >= 0, got {k!r}")
    if policy not in ("integrated", "continuous-first"):
        raise ConfigurationError(
            f"policy must be 'integrated' or 'continuous-first', "
            f"got {policy!r}")

    service_times = np.empty(rounds, dtype=float)
    glitches = np.zeros((rounds, n), dtype=bool)
    disc_served = np.zeros(rounds, dtype=np.int64)
    arm = 0.0

    for r in range(rounds):
        cont_cyl, cont_rate = _sample_cylinders_rates(spec, rng, (1, n))
        cont_cyl, cont_rate = cont_cyl[0], cont_rate[0]
        cont_transfer = (np.asarray(continuous_sizes.sample(rng, n),
                                    dtype=float) / cont_rate)
        if k:
            disc_cyl, disc_rate = _sample_cylinders_rates(spec, rng,
                                                          (1, k))
            disc_cyl, disc_rate = disc_cyl[0], disc_rate[0]
            disc_transfer = (np.asarray(discrete_sizes.sample(rng, k),
                                        dtype=float) / disc_rate)

        if policy == "integrated" and k:
            cylinders = np.concatenate([cont_cyl, disc_cyl])
            transfer = np.concatenate([cont_transfer, disc_transfer])
            completion, order, arm = _sweep(spec, rng, arm, cylinders,
                                            transfer, bool(r % 2), 0.0)
            in_order = np.empty(n + k)
            in_order[order] = completion
            glitches[r] = in_order[:n] > t
            disc_served[r] = int(np.sum(in_order[n:] <= t))
            service_times[r] = float(completion[-1])
        else:
            completion, order, arm = _sweep(spec, rng, arm, cont_cyl,
                                            cont_transfer, bool(r % 2),
                                            0.0)
            in_order = np.empty(n)
            in_order[order] = completion
            glitches[r] = in_order > t
            elapsed = float(completion[-1])
            if k:
                completion_d, _, arm = _sweep(
                    spec, rng, arm, disc_cyl, disc_transfer,
                    not bool(r % 2), elapsed)
                disc_served[r] = int(np.sum(completion_d <= t))
                elapsed = float(completion_d[-1])
            service_times[r] = elapsed

    return MixedBatch(policy=policy, service_times=service_times,
                      continuous_glitches=glitches,
                      discrete_served=disc_served)


@dataclass(frozen=True)
class DiscreteQueueResult:
    """Steady-state behaviour of the discrete request queue."""

    rounds: int
    arrival_rate: float
    arrived: int
    served: int
    response_times: np.ndarray    # rounds from arrival to completion
    queue_lengths: np.ndarray     # backlog at each round start
    continuous_glitches: np.ndarray

    @property
    def mean_response_rounds(self) -> float:
        """Mean discrete response time in rounds (served requests)."""
        if self.response_times.size == 0:
            return float("nan")
        return float(np.mean(self.response_times))

    @property
    def mean_queue_length(self) -> float:
        """Time-average backlog."""
        return float(np.mean(self.queue_lengths))

    @property
    def saturated(self) -> bool:
        """Whether the backlog is still growing at the end of the run
        (arrival rate above the leftover-time capacity)."""
        half = self.queue_lengths.size // 2
        return (float(np.mean(self.queue_lengths[half:]))
                > 2.0 * float(np.mean(self.queue_lengths[:half])) + 2.0)


def simulate_discrete_queue(spec: DiskSpec,
                            continuous_sizes: Distribution,
                            discrete_sizes: Distribution, n: int,
                            arrival_rate: float, t: float, rounds: int,
                            rng: np.random.Generator
                            ) -> DiscreteQueueResult:
    """Continuous-first server with a queued discrete workload.

    Discrete requests arrive Poisson(``arrival_rate`` per round) and
    queue FIFO; each round, after the continuous sweep, the server
    works the queue head-first until the deadline.  Response time is
    measured in rounds from arrival to the round of completion
    (requests completing in their arrival round score 1).
    """
    _validate(spec, n, t, rounds)
    if arrival_rate < 0:
        raise ConfigurationError(
            f"arrival_rate must be >= 0, got {arrival_rate!r}")
    queue_arrival_round: list[int] = []
    response: list[int] = []
    queue_lengths = np.empty(rounds, dtype=np.int64)
    glitches = np.zeros((rounds, n), dtype=bool)
    arrived = served = 0
    arm = 0.0

    for r in range(rounds):
        new = int(rng.poisson(arrival_rate))
        arrived += new
        queue_arrival_round.extend([r] * new)
        queue_lengths[r] = len(queue_arrival_round)

        cont_cyl, cont_rate = _sample_cylinders_rates(spec, rng, (1, n))
        cont_cyl, cont_rate = cont_cyl[0], cont_rate[0]
        cont_transfer = (np.asarray(continuous_sizes.sample(rng, n),
                                    dtype=float) / cont_rate)
        completion, order, arm = _sweep(spec, rng, arm, cont_cyl,
                                        cont_transfer, bool(r % 2), 0.0)
        in_order = np.empty(n)
        in_order[order] = completion
        glitches[r] = in_order > t
        elapsed = float(completion[-1])

        # Work the queue until the deadline (FIFO, one at a time --
        # queued discrete requests are latency-sensitive, so the server
        # does not hold them back to batch a sweep).
        while queue_arrival_round and elapsed < t:
            disc_cyl, disc_rate = _sample_cylinders_rates(spec, rng,
                                                          (1, 1))
            size = float(np.asarray(discrete_sizes.sample(rng, 1))[0])
            seek = float(spec.seek_curve(abs(int(disc_cyl[0, 0]) - arm)))
            service = (seek + rng.uniform(0.0, spec.rot)
                       + size / float(disc_rate[0, 0]))
            if elapsed + service > t:
                break
            elapsed += service
            arm = float(disc_cyl[0, 0])
            response.append(r - queue_arrival_round.pop(0) + 1)
            served += 1

    return DiscreteQueueResult(
        rounds=rounds, arrival_rate=arrival_rate, arrived=arrived,
        served=served, response_times=np.asarray(response, dtype=float),
        queue_lengths=queue_lengths, continuous_glitches=glitches)
