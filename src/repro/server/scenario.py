"""Scenario compiler: arbitrary fault/trick/heterogeneous runs on the
vectorised kernel path.

:func:`repro.server.simulation.simulate_farm_rounds` proved that a farm
run whose per-disk populations are piecewise-constant can be priced by
the vectorised sweep kernel instead of the event calendar (~170x, bench
A22) -- but it only knew the single fail/recover failover shape.  This
module generalises that idea into a two-stage pipeline:

1. :func:`compile_scenario` turns a :class:`~repro.server.faults.
   FaultSchedule` (fail/recover/slow-disk/recalibration-storm events), a
   :class:`~repro.server.faults.SheddingPolicy`, trick-mode segments
   (:class:`TrickSegment`, scan-mode fast-forward of
   :mod:`repro.core.trickmode`) and a heterogeneous mirrored farm layout
   (one :class:`~repro.disk.presets.DiskSpec` per disk) into a timeline
   of :class:`PhaseEntry` batches -- for every maximal run of rounds in
   which nothing changes, the per-disk request count, service-time
   scale, and storm parameters.
2. :func:`simulate_scenario` prices each (disk, entry) batch with
   :func:`~repro.server.simulation.simulate_rounds`, one
   ``SeedSequence([seed, 0xFA9A])`` child per disk exactly like
   ``simulate_farm_rounds``, so results are **bit-identical for every
   ``jobs`` count and transport** -- and bit-identical to
   ``simulate_farm_rounds`` itself on the plain failover shape.

Time-to-round snapping
----------------------
The event engine fires schedule entries at exact simulation times; the
kernel thinks in whole rounds.  An event at time ``tau`` takes effect
before round ``ceil(tau / t)`` dispatches (an event exactly on the
boundary ``k * t`` affects round ``k`` -- the event engine applies it
before the round's dispatch too); an event landing mid-round is snapped
*forward* to the next boundary.  A recalibration-storm window
contributes to every round whose start lies inside ``[t0, t0 +
duration)`` -- matching ``FaultInjector.round_stall`` queried at round
starts.  Events wholly past the run horizon are recorded in
:attr:`CompiledScenario.dropped_events` rather than silently ignored.

Fidelity notes (vs the event engine)
------------------------------------
Storm stalls are drawn from each disk's sequential substream rather
than the injector's counter-based RNG, and the arm position does not
carry across phase-entry boundaries -- the same order of approximation
``simulate_farm_rounds`` already accepts.  The two engines are
cross-validated statistically (Wilson intervals) in
``tests/server/test_scenario_compiler.py``.  Overlapping storms on one
disk have no kernel representation (two independent Bernoulli stalls
do not fold into one), so the compiler refuses them -- use the event
engine for those.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.farm import mirror_of
from repro.core.trickmode import scan_mode_requests
from repro.disk.presets import (
    DiskSpec,
    modern_av_drive,
    quantum_viking_2_1,
    seagate_hawk_1lp,
    single_zone_viking,
)
from repro.distributions import Distribution
from repro.errors import ConfigurationError
from repro.server.faults import FaultSchedule, SheddingPolicy
from repro.server.simulation import (
    FarmRoundsEstimate,
    _group_phase_results,
    _simulate_disk_phases,
)

__all__ = [
    "TrickSegment",
    "PhaseEntry",
    "CompiledScenario",
    "compile_scenario",
    "simulate_scenario",
    "analytic_phase_bounds",
    "DISK_PRESETS",
    "parse_farm_spec",
    "parse_trick_spec",
]

#: Boundary guard for the time->round conversion: an event at exactly
#: ``k * t`` affects round ``k``, not ``k + 1``.
_BOUNDARY_EPS = 1e-9

#: Named disk presets accepted by ``--farm-spec`` (heterogeneous farms
#: are given as a comma-separated list, one entry per disk).
DISK_PRESETS = {
    "quantum_viking_2_1": quantum_viking_2_1,
    "single_zone_viking": single_zone_viking,
    "seagate_hawk_1lp": seagate_hawk_1lp,
    "modern_av_drive": modern_av_drive,
}


@dataclass(frozen=True)
class TrickSegment:
    """A window of rounds during which ``n_ff`` of each disk's streams
    fast-forward in ``k``-times scan mode (:mod:`repro.core.trickmode`:
    every scan-mode stream places ``k`` requests per sweep; skip mode is
    load-neutral and needs no segment).  ``[start, end)`` are round
    indices."""

    start: int
    end: int
    n_ff: int
    k: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ConfigurationError(
                f"trick segment needs 0 <= start < end, got "
                f"[{self.start!r}, {self.end!r})")
        if self.n_ff < 1:
            raise ConfigurationError(
                f"trick segment needs n_ff >= 1, got {self.n_ff!r}")
        if self.k < 1:
            raise ConfigurationError(
                f"trick segment needs k >= 1, got {self.k!r}")


@dataclass(frozen=True)
class PhaseEntry:
    """One maximal run of rounds with constant farm state.

    ``batches[d]`` is disk ``d``'s requests per round (0 while failed),
    ``scales[d]`` its ``slow_disk`` service-time multiplier, and
    ``recal_probs[d]``/``recal_stalls[d]`` the active storm's per-round
    stall law (0 outside storms).
    """

    name: str
    batches: tuple[int, ...]
    rounds: int
    scales: tuple[float, ...]
    recal_probs: tuple[float, ...]
    recal_stalls: tuple[float, ...]


@dataclass(frozen=True)
class CompiledScenario:
    """Output of :func:`compile_scenario`: a priced-ready timeline."""

    specs: tuple[DiskSpec, ...]
    size_dist: Distribution
    n_per_disk: int
    t: float
    rounds: int
    plan: tuple[PhaseEntry, ...]
    shedding: bool
    fail_disk: int | None
    dropped_events: tuple[str, ...]

    @property
    def disks(self) -> int:
        return len(self.specs)

    @property
    def phase_names(self) -> tuple[str, ...]:
        """Distinct phase names in first-appearance order (what the
        resulting :class:`FarmRoundsEstimate` will report)."""
        seen: list[str] = []
        for entry in self.plan:
            if entry.name not in seen:
                seen.append(entry.name)
        return tuple(seen)

    def describe(self) -> list[str]:
        """Human-readable timeline, one line per plan entry."""
        lines = []
        start = 0
        for entry in self.plan:
            parts = [f"rounds [{start}, {start + entry.rounds}): "
                     f"{entry.name}, batches={list(entry.batches)}"]
            if any(s != 1.0 for s in entry.scales):
                parts.append(f"scales={list(entry.scales)}")
            if any(p > 0.0 for p in entry.recal_probs):
                storms = {d: (p, entry.recal_stalls[d])
                          for d, p in enumerate(entry.recal_probs)
                          if p > 0.0}
                parts.append(f"storms={storms}")
            lines.append(", ".join(parts))
            start += entry.rounds
        for description in self.dropped_events:
            lines.append(f"dropped (past horizon or between round "
                         f"boundaries): {description}")
        return lines


def _round_of(tau: float, t: float) -> int:
    """First round index whose dispatch time ``r * t`` is >= ``tau``."""
    return max(0, math.ceil(tau / t - _BOUNDARY_EPS))


def _validated_trick(trick, rounds: int, n_per_disk: int):
    """Sort trick segments, clip to the horizon, refuse overlaps."""
    segments = sorted(trick, key=lambda s: s.start)
    clipped = []
    for segment in segments:
        if segment.n_ff > n_per_disk:
            raise ConfigurationError(
                f"trick segment n_ff={segment.n_ff} exceeds "
                f"n_per_disk={n_per_disk}")
        if clipped and segment.start < clipped[-1].end:
            raise ConfigurationError(
                f"trick segments overlap at round {segment.start}; "
                f"merge them into one segment")
        if segment.start >= rounds:
            continue
        clipped.append(segment)
    return clipped


def compile_scenario(specs, size_dist: Distribution, *,
                     n_per_disk: int, t: float, rounds: int,
                     schedule: FaultSchedule | None = None,
                     policy: SheddingPolicy | None = None,
                     trick=(), rejoin_rounds: int = 0,
                     instant_rejoin: bool = False) -> CompiledScenario:
    """Compile a farm scenario into constant-state phase batches.

    ``specs`` is one :class:`DiskSpec` per disk (a heterogeneous farm
    simply lists different presets); disks mirror in index pairs
    ``(0, 1), (2, 3), ...`` exactly as the event engine's RAID-1 layout.
    ``policy`` caps every disk's own batch at ``degraded_n_max`` while
    any disk is failed (``None`` disables shedding: the survivor absorbs
    the full doubled batch).  After the *last* failed disk recovers,
    ``pause``-mode policies (and ``instant_rejoin=True``) restore the
    full population at the recovery boundary -- every paused stream
    resumes -- while ``drop`` mode holds the shed level, optionally
    ramping back over ``rejoin_rounds`` rounds (the
    :func:`~repro.server.simulation.simulate_farm_rounds` rejoin
    semantics, levels bit-matched to its ``_rejoin_plan``).

    Per-round population state walks the schedule in event order; a
    failure during a rejoin ramp re-sheds and cancels the ramp.  The
    result merges every maximal run of identical rounds into one
    :class:`PhaseEntry` whose name encodes the state: ``healthy`` /
    ``degraded`` / ``recovered`` plus ``+slow`` / ``+storm`` /
    ``+trick`` markers, so bound-vs-observed checks see, e.g.,
    ``degraded+storm`` as its own phase.
    """
    specs = tuple(specs)
    disks = len(specs)
    if disks < 1:
        raise ConfigurationError("need at least one disk spec")
    if n_per_disk < 1:
        raise ConfigurationError(
            f"n_per_disk must be >= 1, got {n_per_disk!r}")
    if rounds < 1:
        raise ConfigurationError(f"rounds must be >= 1, got {rounds!r}")
    if not (t > 0.0 and math.isfinite(t)):
        raise ConfigurationError(
            f"round length must be positive, got {t!r}")
    if rejoin_rounds < 0:
        raise ConfigurationError(
            f"rejoin_rounds must be >= 0, got {rejoin_rounds!r}")
    if instant_rejoin and rejoin_rounds:
        raise ConfigurationError(
            "instant_rejoin=True and rejoin_rounds are mutually "
            "exclusive (an instant rejoin has no ramp)")
    if schedule is None:
        schedule = FaultSchedule(())
    elif not isinstance(schedule, FaultSchedule):
        schedule = FaultSchedule(schedule)
    schedule.validate_disks(disks)
    segments = _validated_trick(trick, rounds, n_per_disk)

    events_by_round: dict[int, list] = {}
    storms: list[tuple[int, int, object]] = []
    dropped: list[str] = []
    for event in schedule:
        if event.kind == "recalibration_storm":
            start_r = _round_of(event.t, t)
            end_r = _round_of(event.t + event.duration, t)
            if start_r >= rounds or end_r <= start_r:
                dropped.append(event.describe())
                continue
            storms.append((start_r, min(end_r, rounds), event))
        else:
            effective = _round_of(event.t, t)
            if effective >= rounds:
                dropped.append(event.describe())
                continue
            events_by_round.setdefault(effective, []).append(event)

    trick_by_round: dict[int, tuple[int, int]] = {}
    for segment in segments:
        for r in range(segment.start, min(segment.end, rounds)):
            trick_by_round[r] = (segment.n_ff, segment.k)

    resume_instant = instant_rejoin or (
        policy is not None and policy.mode == "pause"
        and rejoin_rounds == 0)

    failed: set[int] = set()
    scale: dict[int, float] = {}
    pop = n_per_disk
    ever_recovered = False
    fail_disk_first: int | None = None
    ramp: tuple[int, int] | None = None  # (recovery round, kept level)
    plan: list[PhaseEntry] = []

    for r in range(rounds):
        for event in events_by_round.get(r, ()):
            if event.kind == "disk_fail":
                if event.disk not in failed:
                    failed.add(event.disk)
                    if fail_disk_first is None:
                        fail_disk_first = event.disk
                    ramp = None
                    if policy is not None:
                        pop = min(pop, policy.degraded_n_max)
            elif event.kind == "disk_recover":
                if event.disk in failed:
                    failed.discard(event.disk)
                    if not failed:
                        ever_recovered = True
                        if pop >= n_per_disk:
                            pass
                        elif resume_instant:
                            pop = n_per_disk
                        elif rejoin_rounds > 0:
                            ramp = (r, pop)
            elif event.kind == "slow_disk":
                if event.factor == 1.0:
                    scale.pop(event.disk, None)
                else:
                    scale[event.disk] = event.factor

        if ramp is not None and not failed:
            recovery_round, kept = ramp
            step = r - recovery_round
            if step >= rejoin_rounds:
                pop = n_per_disk
                ramp = None
            else:
                pop = min(n_per_disk, kept + math.ceil(
                    (step + 1) / rejoin_rounds * (n_per_disk - kept)))

        probs = [0.0] * disks
        stalls = [0.0] * disks
        for start_r, end_r, storm in storms:
            if not (start_r <= r < end_r):
                continue
            targets = range(disks) if storm.disk is None else (storm.disk,)
            for d in targets:
                if probs[d] > 0.0:
                    raise ConfigurationError(
                        f"overlapping recalibration storms on disk {d} "
                        f"at round {r} cannot be compiled to the kernel "
                        f"path (two independent stall draws per round); "
                        f"use the event engine")
                probs[d] = storm.prob
                stalls[d] = storm.stall

        tk = trick_by_round.get(r)
        batches = []
        for d in range(disks):
            if d in failed:
                batches.append(0)
                continue
            group_count = 1
            for f in failed:
                if mirror_of(f, disks) == d:
                    group_count += 1
            if pop < 1:
                batches.append(0)
                continue
            if tk is not None:
                n_ff = min(tk[0], pop)
                per_group = scan_mode_requests(pop - n_ff, n_ff, tk[1])
            else:
                per_group = pop
            batches.append(group_count * per_group)

        if failed:
            base = "degraded"
        elif ever_recovered:
            base = "recovered"
        else:
            base = "healthy"
        suffix = ""
        if any(scale.get(d, 1.0) != 1.0 for d in range(disks)
               if d not in failed):
            suffix += "+slow"
        if any(probs[d] > 0.0 for d in range(disks) if d not in failed):
            suffix += "+storm"
        if tk is not None:
            suffix += "+trick"
        name = base + suffix

        entry = PhaseEntry(
            name=name, batches=tuple(batches), rounds=1,
            scales=tuple(scale.get(d, 1.0) for d in range(disks)),
            recal_probs=tuple(probs), recal_stalls=tuple(stalls))
        last = plan[-1] if plan else None
        if (last is not None and last.name == entry.name
                and last.batches == entry.batches
                and last.scales == entry.scales
                and last.recal_probs == entry.recal_probs
                and last.recal_stalls == entry.recal_stalls):
            plan[-1] = PhaseEntry(
                name=last.name, batches=last.batches,
                rounds=last.rounds + 1, scales=last.scales,
                recal_probs=last.recal_probs,
                recal_stalls=last.recal_stalls)
        else:
            plan.append(entry)

    return CompiledScenario(
        specs=specs, size_dist=size_dist, n_per_disk=n_per_disk, t=t,
        rounds=rounds, plan=tuple(plan),
        shedding=policy is not None, fail_disk=fail_disk_first,
        dropped_events=tuple(dropped))


def simulate_scenario(compiled: CompiledScenario, *, seed: int = 0,
                      jobs: int | None = None,
                      transport: str | None = None) -> FarmRoundsEstimate:
    """Price a compiled scenario on the vectorised sweep kernel.

    Disk ``d`` draws every phase from ``SeedSequence([seed,
    0xFA9A]).spawn(disks)[d]`` -- the exact substream layout of
    :func:`~repro.server.simulation.simulate_farm_rounds`, so the plain
    failover shape reproduces its results bit-for-bit, and any scenario
    is bit-identical across ``jobs`` counts and transports.  ``jobs``
    fans disks out over :func:`repro.parallel.simulate_farm_disks_
    parallel` (``None`` runs serially in-process); ``transport``
    selects the pool flavour (``threads``/``pickle``/``shm``).
    """
    disks = compiled.disks
    root = np.random.SeedSequence([seed, 0xFA9A])
    tasks = []
    for d, child in enumerate(root.spawn(disks)):
        phases = tuple(
            (entry.name, entry.batches[d], entry.rounds, entry.scales[d],
             entry.recal_probs[d], entry.recal_stalls[d])
            for entry in compiled.plan)
        tasks.append((compiled.specs[d], compiled.size_dist, compiled.t,
                      phases, child))
    if jobs is not None or transport is not None:
        from repro.parallel import simulate_farm_disks_parallel
        per_disk = simulate_farm_disks_parallel(tasks, jobs,
                                                transport=transport)
    else:
        per_disk = [_simulate_disk_phases(task) for task in tasks]
    plan_rows = [(entry.name, entry.batches, entry.rounds)
                 for entry in compiled.plan]
    phases, grouped_per_disk = _group_phase_results(plan_rows, per_disk,
                                                    disks)
    return FarmRoundsEstimate(
        disks=disks, n_per_disk=compiled.n_per_disk, t=compiled.t,
        fail_disk=compiled.fail_disk, shedding=compiled.shedding,
        phases=phases, per_disk=grouped_per_disk)


def analytic_phase_bounds(compiled: CompiledScenario
                          ) -> dict[str, float | None]:
    """Worst-disk Chernoff lateness bound per compiled phase name.

    For every phase the bound is the maximum, over plan entries of that
    name and over serving disks, of the per-disk model's ``b_late``
    at the disk's batch -- storm entries fold the stall law in via
    :func:`repro.core.faults.with_recalibration` (the analytic
    disturbance term).  A ``slow_disk`` scale has no analytic
    transform, so any phase containing one maps to ``None`` (observed
    rates are still reported; there is just no bound to compare
    against).  Phases in which no disk serves also map to ``None``.
    """
    from repro.core.faults import with_recalibration
    from repro.core.service_time import RoundServiceTimeModel

    models = [RoundServiceTimeModel.for_disk(spec, compiled.size_dist)
              for spec in compiled.specs]
    cache: dict[tuple, float] = {}
    bounds: dict[str, float | None] = {}
    unbounded: set[str] = set()
    for entry in compiled.plan:
        name = entry.name
        bounds.setdefault(name, None)
        if name in unbounded:
            continue
        for d in range(compiled.disks):
            batch = entry.batches[d]
            if batch < 1:
                continue
            if entry.scales[d] != 1.0:
                unbounded.add(name)
                bounds[name] = None
                break
            key = (d, entry.recal_probs[d], entry.recal_stalls[d], batch)
            if key not in cache:
                model = models[d]
                if entry.recal_probs[d] > 0.0:
                    model = with_recalibration(model, entry.recal_probs[d],
                                               entry.recal_stalls[d])
                cache[key] = float(model.b_late(batch, compiled.t))
            current = bounds[name]
            if current is None or cache[key] > current:
                bounds[name] = cache[key]
    return bounds


def parse_trick_spec(text: str) -> TrickSegment:
    """Parse a CLI ``--trick START:END:NFF:K`` segment."""
    parts = text.split(":")
    if len(parts) != 4:
        raise ConfigurationError(
            f"--trick expects START:END:NFF:K, got {text!r}")
    try:
        start, end, n_ff, k = (int(part) for part in parts)
    except ValueError:
        raise ConfigurationError(
            f"--trick fields must be integers, got {text!r}") from None
    return TrickSegment(start=start, end=end, n_ff=n_ff, k=k)


def parse_farm_spec(text: str) -> tuple[DiskSpec, ...]:
    """Parse a CLI ``--farm-spec name,name,...`` heterogeneous layout."""
    names = [part.strip() for part in text.split(",") if part.strip()]
    if not names:
        raise ConfigurationError("--farm-spec needs at least one preset")
    specs = []
    for name in names:
        factory = DISK_PRESETS.get(name)
        if factory is None:
            raise ConfigurationError(
                f"unknown disk preset {name!r}; known: "
                f"{sorted(DISK_PRESETS)}")
        specs.append(factory())
    return tuple(specs)
