"""Run-time admission control (§2.3, §5).

The controller enforces a per-disk stream limit ``n_max`` computed by the
analytic model (:mod:`repro.core.admission`): a new stream is admitted
only if, after admission, no disk would serve more than ``n_max``
requests in any round.  With stride-1 round-robin striping, a farm of
``d`` disks serves ``ceil(active / d)`` requests per disk per round in
the worst case, so the admission test is ``ceil((active + 1)/d) <=
n_max``.

Lookup tables with precomputed ``n_max`` per tolerance threshold (the §5
scheme) plug in through :meth:`AdmissionController.from_table`.

The controller is thread-safe: the live daemon (``repro serve``) drives
it from many HTTP worker threads at once, so the admission test and the
counter increment must be one atomic step -- an unlocked
check-then-increment would let two threads both pass the
``ceil((active+1)/disks) <= n_max`` test and overshoot the analytic
guarantee.  All state transitions (``admit``/``release``/``degrade``/
``restore``) take the same re-entrant lock.
"""

from __future__ import annotations

import math
import threading

from repro.core.admission import AdmissionTable
from repro.errors import AdmissionError, ConfigurationError
from repro.obs.spans import start_span
from repro.obs.trace import NULL_TRACER

__all__ = ["AdmissionController"]


class AdmissionController:
    """Counting admission controller with a per-disk stream limit."""

    def __init__(self, n_max_per_disk: int, disks: int = 1) -> None:
        if n_max_per_disk < 0:
            raise ConfigurationError(
                f"n_max_per_disk must be >= 0, got {n_max_per_disk!r}")
        if disks < 1:
            raise ConfigurationError(f"disks must be >= 1, got {disks!r}")
        self.n_max_per_disk = int(n_max_per_disk)
        self.disks = int(disks)
        self._active = 0
        self._healthy_n_max = self.n_max_per_disk
        self._degraded = False
        # Re-entrant: admit() calls would_admit() under the lock, and
        # instrumented subclasses/tests may do the same.
        self._lock = threading.RLock()
        #: Total admission requests seen.
        self.requests = 0
        #: Requests turned away.
        self.rejections = 0
        #: Span sink for the admission test; the serve daemon points
        #: this at its tracer so every live admit records an
        #: ``admission.admit`` span.  Disabled tracers cost one branch.
        self.tracer = NULL_TRACER

    # ------------------------------------------------------------------
    @classmethod
    def from_table(cls, table: AdmissionTable, *, epsilon: float,
                   disks: int = 1) -> "AdmissionController":
        """Build a controller from a §5 lookup table, keyed by the
        stream-level tolerance ``epsilon`` for ``p_error``."""
        return cls(table.n_max_perror(epsilon), disks=disks)

    # ------------------------------------------------------------------
    @property
    def active(self) -> int:
        """Streams currently admitted."""
        return self._active

    @property
    def capacity(self) -> int:
        """Maximum concurrently admissible streams
        (``n_max_per_disk * disks``)."""
        return self.n_max_per_disk * self.disks

    @property
    def healthy_n_max(self) -> int:
        """The per-disk limit in force while every disk is healthy."""
        return self._healthy_n_max

    def would_admit(self) -> bool:
        """Whether one more stream fits without breaking the per-disk
        guarantee."""
        with self._lock:
            return math.ceil((self._active + 1) / self.disks) \
                <= self.n_max_per_disk

    def admit(self) -> None:
        """Admit a stream or raise :class:`AdmissionError`.

        Check and increment happen atomically under the controller
        lock, so concurrent callers can never jointly overshoot the
        per-disk guarantee.
        """
        with self._lock, start_span("admission.admit",
                                    tracer=self.tracer) as span:
            self.requests += 1
            if not self.would_admit():
                self.rejections += 1
                span.set(granted=False, active=self._active,
                         n_max=self.n_max_per_disk)
                raise AdmissionError(
                    f"admission denied: {self._active} active streams, "
                    f"per-disk limit {self.n_max_per_disk} on "
                    f"{self.disks} disk(s)",
                    active_streams=self._active, limit=self.capacity)
            self._active += 1
            span.set(granted=True, active=self._active,
                     n_max=self.n_max_per_disk)

    def release(self) -> None:
        """A stream terminated."""
        with self._lock:
            if self._active <= 0:
                raise ConfigurationError(
                    "release() without an active stream")
            self._active -= 1

    # ------------------------------------------------------------------
    @property
    def degraded(self) -> bool:
        """Whether a degraded-mode limit is currently in force.

        Tracked as an explicit flag set by :meth:`degrade` and cleared
        by :meth:`restore` -- comparing the current limit against the
        healthy one would misreport a degraded phase whose bound
        happens to equal the healthy limit.
        """
        return self._degraded

    def degrade(self, n_max_per_disk: int) -> None:
        """Lower the per-disk limit to the degraded-mode bound.

        Called by the server when a disk fails: new admissions are then
        tested against the doubled-batch limit
        (:func:`repro.core.farm.degraded_mode_n_max`); already-admitted
        streams above the limit are the shedding policy's business, not
        this counter's.  Idempotent; :meth:`restore` undoes it.
        """
        if n_max_per_disk < 0:
            raise ConfigurationError(
                f"n_max_per_disk must be >= 0, got {n_max_per_disk!r}")
        with self._lock:
            self.n_max_per_disk = int(n_max_per_disk)
            self._degraded = True

    def restore(self) -> None:
        """Return to the healthy admission limit (disk recovered)."""
        with self._lock:
            self.n_max_per_disk = self._healthy_n_max
            self._degraded = False

    def restore_state(self, *, active: int, requests: int = 0,
                      rejections: int = 0) -> None:
        """Reinstate counters from a persisted snapshot.

        Used by the daemon's crash-safe restore path
        (:mod:`repro.control.snapshot`): the restored ``active`` count
        must reflect the persisted ledger exactly, even when it
        exceeds the current limit (the shedding policy, not this
        counter, decides who goes).  Request/rejection totals carry
        over so ``/state`` stays continuous across restarts.
        """
        if active < 0 or requests < 0 or rejections < 0:
            raise ConfigurationError(
                "restore_state needs non-negative counters, got "
                f"active={active!r} requests={requests!r} "
                f"rejections={rejections!r}")
        with self._lock:
            self._active = int(active)
            self.requests = int(requests)
            self.rejections = int(rejections)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Consistent point-in-time view of the controller state (one
        lock acquisition), for the daemon's ``/state`` endpoint."""
        with self._lock:
            return {
                "active": self._active,
                "capacity": self.capacity,
                "n_max_per_disk": self.n_max_per_disk,
                "healthy_n_max": self._healthy_n_max,
                "disks": self.disks,
                "degraded": self._degraded,
                "requests": self.requests,
                "rejections": self.rejections,
            }

    def __repr__(self) -> str:
        return (f"AdmissionController(active={self._active}/"
                f"{self.capacity}, rejected={self.rejections})")
