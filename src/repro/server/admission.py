"""Run-time admission control (§2.3, §5).

The controller enforces a per-disk stream limit ``n_max`` computed by the
analytic model (:mod:`repro.core.admission`): a new stream is admitted
only if, after admission, no disk would serve more than ``n_max``
requests in any round.  With stride-1 round-robin striping, a farm of
``d`` disks serves ``ceil(active / d)`` requests per disk per round in
the worst case, so the admission test is ``ceil((active + 1)/d) <=
n_max`` -- which, for integer counters, is exactly ``active < n_max *
d``.  Both controllers below hoist that product into a precomputed
integer threshold (``active_limit``), recomputed only when the limit
retargets (``degrade``/``restore``/``resize``), so the per-admit test
is a single integer compare with no float division.

Lookup tables with precomputed ``n_max`` per tolerance threshold (the §5
scheme) plug in through :meth:`AdmissionController.from_table`.

Two implementations share that contract:

- :class:`AdmissionController` -- the original single-lock counter.
  Every transition takes one re-entrant lock; simple, exact, and the
  reference the sharded controller is cross-validated against.
- :class:`ShardedAdmissionController` -- the serve hot path.  The
  counter is striped over S shards, each with its own lock and a local
  ``limit`` (its slice of the global capacity), so concurrent admits
  on different shards never touch the same lock.  A batch admit takes
  *one* shard lock for k tickets.  When a shard's slice is exhausted
  but global capacity remains, a slow-path rebalance (all shard locks,
  fixed order) steals slack from other shards -- no false rejects.
  Global events (``degrade``/``restore``/shed/resume/snapshot) run
  under :meth:`ShardedAdmissionController.quiesced`, which takes every
  shard lock in index order; each retarget bumps an observable
  ``epoch``.

The sharded invariant: ``sum(shard.limit) == capacity + debt`` with
``shard.active <= shard.limit`` at all times.  ``debt`` is the
overshoot recorded when a retarget lowers capacity below the live
count (the shedding policy, not this counter, decides who goes);
releases pay debt down by shrinking limits instead of freeing slots,
so no phantom slack can ever re-admit past the analytic guarantee.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager

from repro.core.admission import AdmissionTable
from repro.errors import AdmissionError, ConfigurationError
from repro.obs.spans import start_span
from repro.obs.trace import NULL_TRACER

__all__ = ["AdmissionController", "ShardedAdmissionController",
           "default_shard_count"]


def default_shard_count() -> int:
    """Default stripe width: about twice the worker-thread count the
    HTTP layer runs (thread-per-connection), clamped to [4, 32]."""
    return min(32, max(4, 2 * (os.cpu_count() or 2)))


class AdmissionController:
    """Counting admission controller with a per-disk stream limit."""

    def __init__(self, n_max_per_disk: int, disks: int = 1) -> None:
        if n_max_per_disk < 0:
            raise ConfigurationError(
                f"n_max_per_disk must be >= 0, got {n_max_per_disk!r}")
        if disks < 1:
            raise ConfigurationError(f"disks must be >= 1, got {disks!r}")
        self.n_max_per_disk = int(n_max_per_disk)
        self.disks = int(disks)
        self._active = 0
        self._healthy_n_max = self.n_max_per_disk
        self._degraded = False
        #: Precomputed integer admission threshold: ``active <
        #: _active_limit`` is the whole test.  Recomputed only on
        #: degrade/restore/resize, never per request.
        self._active_limit = self.n_max_per_disk * self.disks
        # Re-entrant: admit() calls would_admit() under the lock, and
        # instrumented subclasses/tests may do the same.
        self._lock = threading.RLock()
        #: Total admission requests seen.
        self.requests = 0
        #: Requests turned away.
        self.rejections = 0
        #: Span sink for the admission test; the serve daemon points
        #: this at its tracer so every live admit records an
        #: ``admission.admit`` span.  Disabled tracers cost one branch.
        self.tracer = NULL_TRACER

    # ------------------------------------------------------------------
    @classmethod
    def from_table(cls, table: AdmissionTable, *, epsilon: float,
                   disks: int = 1) -> "AdmissionController":
        """Build a controller from a §5 lookup table, keyed by the
        stream-level tolerance ``epsilon`` for ``p_error``."""
        return cls(table.n_max_perror(epsilon), disks=disks)

    # ------------------------------------------------------------------
    @property
    def active(self) -> int:
        """Streams currently admitted."""
        return self._active

    @property
    def capacity(self) -> int:
        """Maximum concurrently admissible streams
        (``n_max_per_disk * disks``)."""
        return self.n_max_per_disk * self.disks

    @property
    def healthy_n_max(self) -> int:
        """The per-disk limit in force while every disk is healthy."""
        return self._healthy_n_max

    def would_admit(self) -> bool:
        """Whether one more stream fits without breaking the per-disk
        guarantee.  ``ceil((active + 1)/disks) <= n_max`` reduced to
        one integer compare against the precomputed threshold."""
        with self._lock:
            return self._active < self._active_limit

    def admit(self) -> None:
        """Admit a stream or raise :class:`AdmissionError`.

        Check and increment happen atomically under the controller
        lock, so concurrent callers can never jointly overshoot the
        per-disk guarantee.
        """
        with self._lock, start_span("admission.admit",
                                    tracer=self.tracer) as span:
            self.requests += 1
            if not self.would_admit():
                self.rejections += 1
                span.set(granted=False, active=self._active,
                         n_max=self.n_max_per_disk)
                raise AdmissionError(
                    f"admission denied: {self._active} active streams, "
                    f"per-disk limit {self.n_max_per_disk} on "
                    f"{self.disks} disk(s)",
                    active_streams=self._active, limit=self.capacity)
            self._active += 1
            span.set(granted=True, active=self._active,
                     n_max=self.n_max_per_disk)

    def release(self) -> None:
        """A stream terminated."""
        with self._lock:
            if self._active <= 0:
                raise ConfigurationError(
                    "release() without an active stream")
            self._active -= 1

    # ------------------------------------------------------------------
    @property
    def degraded(self) -> bool:
        """Whether a degraded-mode limit is currently in force.

        Tracked as an explicit flag set by :meth:`degrade` and cleared
        by :meth:`restore` -- comparing the current limit against the
        healthy one would misreport a degraded phase whose bound
        happens to equal the healthy limit.
        """
        return self._degraded

    def degrade(self, n_max_per_disk: int) -> None:
        """Lower the per-disk limit to the degraded-mode bound.

        Called by the server when a disk fails: new admissions are then
        tested against the doubled-batch limit
        (:func:`repro.core.farm.degraded_mode_n_max`); already-admitted
        streams above the limit are the shedding policy's business, not
        this counter's.  Idempotent; :meth:`restore` undoes it.
        """
        if n_max_per_disk < 0:
            raise ConfigurationError(
                f"n_max_per_disk must be >= 0, got {n_max_per_disk!r}")
        with self._lock:
            self.n_max_per_disk = int(n_max_per_disk)
            self._active_limit = self.n_max_per_disk * self.disks
            self._degraded = True

    def restore(self) -> None:
        """Return to the healthy admission limit (disk recovered)."""
        with self._lock:
            self.n_max_per_disk = self._healthy_n_max
            self._active_limit = self.n_max_per_disk * self.disks
            self._degraded = False

    def resize(self, n_max_per_disk: int | None = None, *,
               disks: int | None = None) -> None:
        """Adopt a new *healthy* operating point (and/or farm size),
        recomputing the precomputed admission threshold.

        Unlike :meth:`degrade` this rewrites the healthy limit itself
        (a permanent re-plan, e.g. a table rebuild), so a later
        :meth:`restore` returns to the new point.
        """
        with self._lock:
            if n_max_per_disk is not None:
                if n_max_per_disk < 0:
                    raise ConfigurationError(
                        f"n_max_per_disk must be >= 0, "
                        f"got {n_max_per_disk!r}")
                self._healthy_n_max = int(n_max_per_disk)
                if not self._degraded:
                    self.n_max_per_disk = self._healthy_n_max
            if disks is not None:
                if disks < 1:
                    raise ConfigurationError(
                        f"disks must be >= 1, got {disks!r}")
                self.disks = int(disks)
            self._active_limit = self.n_max_per_disk * self.disks

    def restore_state(self, *, active: int, requests: int = 0,
                      rejections: int = 0) -> None:
        """Reinstate counters from a persisted snapshot.

        Used by the daemon's crash-safe restore path
        (:mod:`repro.control.snapshot`): the restored ``active`` count
        must reflect the persisted ledger exactly, even when it
        exceeds the current limit (the shedding policy, not this
        counter, decides who goes).  Request/rejection totals carry
        over so ``/state`` stays continuous across restarts.
        """
        if active < 0 or requests < 0 or rejections < 0:
            raise ConfigurationError(
                "restore_state needs non-negative counters, got "
                f"active={active!r} requests={requests!r} "
                f"rejections={rejections!r}")
        with self._lock:
            self._active = int(active)
            self.requests = int(requests)
            self.rejections = int(rejections)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Consistent point-in-time view of the controller state (one
        lock acquisition), for the daemon's ``/state`` endpoint."""
        with self._lock:
            return {
                "active": self._active,
                "capacity": self.capacity,
                "n_max_per_disk": self.n_max_per_disk,
                "healthy_n_max": self._healthy_n_max,
                "disks": self.disks,
                "degraded": self._degraded,
                "requests": self.requests,
                "rejections": self.rejections,
            }

    def __repr__(self) -> str:
        return (f"AdmissionController(active={self._active}/"
                f"{self.capacity}, rejected={self.rejections})")


class _Shard:
    """One stripe of the admission counter: a lock, the live count,
    and this stripe's slice of the global capacity."""

    __slots__ = ("lock", "active", "limit", "requests", "rejections")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.active = 0
        self.limit = 0
        self.requests = 0
        self.rejections = 0


class ShardedAdmissionController:
    """Striped admission controller for the serve hot path.

    Drop-in for :class:`AdmissionController` (same public surface and
    admission semantics, cross-validated by
    ``tests/server/test_admission_sharded.py``), plus:

    - :meth:`admit_batch` -- grant up to ``count`` tickets under one
      shard-lock acquisition, partial-grant when global capacity runs
      out mid-batch;
    - :meth:`release_on` -- release on a known shard with a callback
      run under that shard's lock (the daemon's ledger mutation);
    - :meth:`quiesced` -- all-shards critical section for global
      events, in fixed lock order (op lock, then shards by index);
    - ``epoch``/``rebalances`` -- observable retarget/steal counters.

    Thread identity picks the home shard, so a thread-per-connection
    server gives each persistent connection an uncontended stripe.
    """

    def __init__(self, n_max_per_disk: int, disks: int = 1, *,
                 shards: int | None = None) -> None:
        if n_max_per_disk < 0:
            raise ConfigurationError(
                f"n_max_per_disk must be >= 0, got {n_max_per_disk!r}")
        if disks < 1:
            raise ConfigurationError(f"disks must be >= 1, got {disks!r}")
        if shards is None:
            shards = default_shard_count()
        if shards < 1:
            raise ConfigurationError(
                f"shards must be >= 1, got {shards!r}")
        self.n_max_per_disk = int(n_max_per_disk)
        self.disks = int(disks)
        self._healthy_n_max = self.n_max_per_disk
        self._degraded = False
        self._shards = [_Shard() for _ in range(int(shards))]
        #: Serialises global events against each other (the shard
        #: locks alone would let two quiesce attempts deadlock-order).
        self._op_lock = threading.Lock()
        #: Capacity overshoot recorded at the last down-retarget;
        #: releases pay it down by shrinking limits (no phantom slack).
        self._debt = 0
        self._debt_lock = threading.Lock()
        #: Bumped on every retarget and slow-path rebalance; global
        #: readers can detect a limit redistribution between looks.
        self.epoch = 0
        #: Slow-path slack steals performed (shard exhausted while
        #: global capacity remained).
        self.rebalances = 0
        self.tracer = NULL_TRACER
        self._spread_limits()

    # -- construction ---------------------------------------------------
    @classmethod
    def from_table(cls, table: AdmissionTable, *, epsilon: float,
                   disks: int = 1, shards: int | None = None
                   ) -> "ShardedAdmissionController":
        """Build a sharded controller from a §5 lookup table."""
        return cls(table.n_max_perror(epsilon), disks=disks,
                   shards=shards)

    def _spread_limits(self) -> None:
        """Initial even spread of the capacity over the stripes
        (constructor only: no locks needed yet)."""
        base, extra = divmod(self.capacity, len(self._shards))
        for index, shard in enumerate(self._shards):
            shard.limit = base + (1 if index < extra else 0)

    # -- cheap views (lock-free; exact when quiescent) ------------------
    @property
    def shards(self) -> int:
        """Stripe count S."""
        return len(self._shards)

    @property
    def active(self) -> int:
        """Streams currently admitted (sum over stripes; each read is
        GIL-atomic, so the total is exact whenever no admit/release is
        mid-flight and never more than transiently stale)."""
        return sum(shard.active for shard in self._shards)

    @property
    def requests(self) -> int:
        """Total admission requests seen."""
        return sum(shard.requests for shard in self._shards)

    @property
    def rejections(self) -> int:
        """Requests turned away."""
        return sum(shard.rejections for shard in self._shards)

    @property
    def capacity(self) -> int:
        """Maximum concurrently admissible streams
        (``n_max_per_disk * disks``)."""
        return self.n_max_per_disk * self.disks

    @property
    def healthy_n_max(self) -> int:
        """The per-disk limit in force while every disk is healthy."""
        return self._healthy_n_max

    @property
    def degraded(self) -> bool:
        """Whether a degraded-mode limit is currently in force."""
        return self._degraded

    @property
    def debt(self) -> int:
        """Capacity overshoot still being paid down by releases."""
        return self._debt

    def would_admit(self) -> bool:
        """Advisory: whether one more stream fits right now.  Exact in
        quiescent states; the authoritative test is :meth:`admit`."""
        return self.active < self.capacity

    def shard_for_thread(self) -> int:
        """The calling thread's home stripe."""
        return threading.get_ident() % len(self._shards)

    def shard_counts(self) -> list[tuple[int, int]]:
        """Lock-free per-stripe ``(active, limit)`` view for metric
        scrapes (each field read is GIL-atomic)."""
        return [(shard.active, shard.limit) for shard in self._shards]

    # -- fast path ------------------------------------------------------
    def admit(self) -> None:
        """Admit one stream or raise :class:`AdmissionError` -- the
        :class:`AdmissionController`-compatible entry point."""
        self.admit_batch(1)

    def admit_batch(self, count: int, *, shard: int | None = None,
                    on_grant=None) -> int:
        """Admit up to ``count`` streams in one shard-lock acquisition.

        Returns the number granted (partial when global capacity runs
        out mid-batch).  Raises :class:`AdmissionError` only when
        ``count > 0`` and *nothing* could be granted.  ``on_grant(
        shard_index, granted)`` runs under the granting shard's lock,
        after the count is taken -- the daemon appends its ledger
        tickets there, so a quiesced global event always sees counter
        and ledger agreeing.  ``count == 0`` is a no-op probe.
        """
        if count < 0:
            raise ConfigurationError(
                f"admit_batch needs count >= 0, got {count!r}")
        if count == 0:
            return 0
        index = (self.shard_for_thread() if shard is None
                 else int(shard))
        home = self._shards[index]
        with home.lock:
            home.requests += count
            if home.limit - home.active >= count:
                with start_span("admission.admit",
                                tracer=self.tracer) as span:
                    home.active += count
                    span.set(granted=True, count=count,
                             active=self.active,
                             n_max=self.n_max_per_disk, shard=index)
                if on_grant is not None:
                    on_grant(index, count)
                return count
        # Shard slice exhausted: rebalance before rejecting.
        return self._admit_slow(index, count, on_grant)

    def _admit_slow(self, index: int, count: int, on_grant) -> int:
        """All-shards slow path: steal slack from other stripes so a
        request is never falsely rejected while global capacity
        remains; partial-grant down to whatever is left."""
        with self.quiesced():
            home = self._shards[index]
            total = sum(shard.active for shard in self._shards)
            free = self.capacity - total
            granted = min(count, max(0, free))
            with start_span("admission.admit",
                            tracer=self.tracer) as span:
                if granted == 0:
                    home.rejections += count
                    span.set(granted=False, count=count, active=total,
                             n_max=self.n_max_per_disk, shard=index)
                    raise AdmissionError(
                        f"admission denied: {total} active streams, "
                        f"per-disk limit {self.n_max_per_disk} on "
                        f"{self.disks} disk(s)",
                        active_streams=total, limit=self.capacity)
                # Steal enough limit for this grant plus an even share
                # of the remaining slack, so a hot stripe amortises
                # future admits instead of re-entering the slow path
                # per ticket.
                leftover = free - granted
                reserve = min(leftover,
                              max(granted,
                                  -(-leftover // len(self._shards))))
                need = home.active + granted + reserve - home.limit
                if need > 0:
                    for other in self._shards:
                        if need <= 0:
                            break
                        if other is home:
                            continue
                        spare = other.limit - other.active
                        if spare > 0:
                            moved = min(spare, need)
                            other.limit -= moved
                            home.limit += moved
                            need -= moved
                home.active += granted
                self.rebalances += 1
                self.epoch += 1
                if granted < count:
                    home.rejections += count - granted
                span.set(granted=True, count=granted,
                         requested=count, active=total + granted,
                         n_max=self.n_max_per_disk, shard=index,
                         rebalanced=True)
            if on_grant is not None:
                on_grant(index, granted)
            return granted

    def _pay_debt_on(self, shard: _Shard) -> None:
        """Pay retarget debt out of ``shard``'s slack; call with the
        shard's lock held.  The unlocked pre-check keeps the common
        (debt-free) release at one extra integer read."""
        if not self._debt:
            return
        with self._debt_lock:
            pay = min(self._debt, shard.limit - shard.active)
            if pay > 0:
                shard.limit -= pay
                self._debt -= pay

    def release(self) -> None:
        """A stream terminated (stripe-agnostic form).  Tries the
        calling thread's stripe first; falls back to a quiesced scan
        when that stripe is empty."""
        home = self._shards[self.shard_for_thread()]
        with home.lock:
            if home.active > 0:
                home.active -= 1
                self._pay_debt_on(home)
                return
        with self.quiesced():
            for shard in self._shards:
                if shard.active > 0:
                    shard.active -= 1
                    self._pay_debt_on(shard)
                    return
        raise ConfigurationError("release() without an active stream")

    def release_on(self, shard: int, on_release=None) -> int:
        """Release on a known stripe.  ``on_release()`` runs under the
        stripe's lock and returns how many streams it actually removed
        (0: the ticket moved/vanished under a concurrent global event
        -- nothing is decremented and 0 is returned so the caller can
        re-resolve).  Without a callback, releases exactly one."""
        target = self._shards[int(shard)]
        with target.lock:
            count = 1 if on_release is None else int(on_release())
            if count == 0:
                return 0
            if target.active < count:
                raise ConfigurationError(
                    f"release_on(shard={shard}) of {count} with only "
                    f"{target.active} active on the stripe")
            target.active -= count
            self._pay_debt_on(target)
            return count

    # -- global events (quiesced) ---------------------------------------
    @contextmanager
    def quiesced(self):
        """Hold every shard lock (fixed order: op lock, then shards by
        index) so the caller sees -- and may mutate -- a fully
        consistent global state.  Admits/releases resume when the
        block exits."""
        with self._op_lock:
            for shard in self._shards:
                shard.lock.acquire()
            try:
                yield
            finally:
                for shard in reversed(self._shards):
                    shard.lock.release()

    def _retarget_locked(self) -> None:
        """Redistribute limits after a capacity change; call under
        :meth:`quiesced`.  Live counts keep their slots; remaining
        slack is spread evenly; overshoot becomes debt paid down by
        releases.  Invariant out: ``sum(limit) == capacity + debt``
        with ``limit >= active`` per stripe."""
        capacity = self.capacity
        total = sum(shard.active for shard in self._shards)
        with self._debt_lock:
            self._debt = max(0, total - capacity)
        slack = capacity + self._debt - total
        base, extra = divmod(slack, len(self._shards))
        for index, shard in enumerate(self._shards):
            shard.limit = shard.active + base + (1 if index < extra
                                                 else 0)
        self.epoch += 1

    def would_admit_locked(self) -> bool:
        """Exact admission test; call under :meth:`quiesced`."""
        return (sum(shard.active for shard in self._shards)
                < self.capacity)

    def admit_locked(self, on_grant=None) -> int:
        """Admit one stream under :meth:`quiesced` (the resume path);
        returns the stripe that took it.  ``on_grant(shard_index)``
        runs with all locks still held."""
        best, best_slack = None, 0
        for index, shard in enumerate(self._shards):
            slack = shard.limit - shard.active
            if slack > best_slack:
                best, best_slack = index, slack
        if best is None:
            total = sum(shard.active for shard in self._shards)
            raise AdmissionError(
                f"admission denied: {total} active streams, "
                f"per-disk limit {self.n_max_per_disk} on "
                f"{self.disks} disk(s)",
                active_streams=total, limit=self.capacity)
        shard = self._shards[best]
        shard.requests += 1
        shard.active += 1
        if on_grant is not None:
            on_grant(best)
        return best

    def release_locked(self, shard: int, count: int = 1) -> None:
        """Release ``count`` streams from a stripe under
        :meth:`quiesced` (the shed path)."""
        target = self._shards[int(shard)]
        if target.active < count:
            raise ConfigurationError(
                f"release_locked(shard={shard}) of {count} with only "
                f"{target.active} active on the stripe")
        target.active -= count
        self._pay_debt_on(target)

    def degrade_locked(self, n_max_per_disk: int) -> None:
        """Lower the per-disk limit under :meth:`quiesced` and
        retarget the stripes."""
        if n_max_per_disk < 0:
            raise ConfigurationError(
                f"n_max_per_disk must be >= 0, got {n_max_per_disk!r}")
        self.n_max_per_disk = int(n_max_per_disk)
        self._degraded = True
        self._retarget_locked()

    def restore_locked(self) -> None:
        """Return to the healthy limit under :meth:`quiesced`."""
        self.n_max_per_disk = self._healthy_n_max
        self._degraded = False
        self._retarget_locked()

    def resize_locked(self, n_max_per_disk: int) -> None:
        """Adopt a new healthy operating point under
        :meth:`quiesced` (table rebuild / re-plan)."""
        if n_max_per_disk < 0:
            raise ConfigurationError(
                f"n_max_per_disk must be >= 0, got {n_max_per_disk!r}")
        self._healthy_n_max = int(n_max_per_disk)
        if not self._degraded:
            self.n_max_per_disk = self._healthy_n_max
        self._retarget_locked()

    def restore_state_locked(self, *, shard_actives, requests: int = 0,
                             rejections: int = 0) -> None:
        """Reinstate per-stripe counts from a persisted ledger under
        :meth:`quiesced`; totals land on stripe 0 (sums are what the
        public counters report)."""
        if len(shard_actives) != len(self._shards):
            raise ConfigurationError(
                f"restore_state_locked needs {len(self._shards)} "
                f"stripe counts, got {len(shard_actives)}")
        if requests < 0 or rejections < 0 or any(
                n < 0 for n in shard_actives):
            raise ConfigurationError(
                "restore_state_locked needs non-negative counters")
        for shard, active in zip(self._shards, shard_actives):
            shard.active = int(active)
            shard.requests = 0
            shard.rejections = 0
        self._shards[0].requests = int(requests)
        self._shards[0].rejections = int(rejections)
        self._retarget_locked()

    # -- compatibility wrappers -----------------------------------------
    def degrade(self, n_max_per_disk: int) -> None:
        """Quiesce and lower the per-disk limit (drop-in form)."""
        with self.quiesced():
            self.degrade_locked(n_max_per_disk)

    def restore(self) -> None:
        """Quiesce and return to the healthy limit (drop-in form)."""
        with self.quiesced():
            self.restore_locked()

    def resize(self, n_max_per_disk: int) -> None:
        """Quiesce and adopt a new healthy operating point."""
        with self.quiesced():
            self.resize_locked(n_max_per_disk)

    def restore_state(self, *, active: int, requests: int = 0,
                      rejections: int = 0) -> None:
        """Drop-in restore: spread ``active`` evenly over the stripes
        (the daemon uses :meth:`restore_state_locked` with its real
        per-stripe ledger split instead)."""
        if active < 0:
            raise ConfigurationError(
                f"restore_state needs non-negative counters, got "
                f"active={active!r}")
        count = len(self._shards)
        base, extra = divmod(int(active), count)
        with self.quiesced():
            self.restore_state_locked(
                shard_actives=[base + (1 if i < extra else 0)
                               for i in range(count)],
                requests=requests, rejections=rejections)

    def snapshot_locked(self) -> dict:
        """The consistent state view; call under :meth:`quiesced`."""
        total = sum(shard.active for shard in self._shards)
        return {
            "active": total,
            "capacity": self.capacity,
            "n_max_per_disk": self.n_max_per_disk,
            "healthy_n_max": self._healthy_n_max,
            "disks": self.disks,
            "degraded": self._degraded,
            "requests": sum(s.requests for s in self._shards),
            "rejections": sum(s.rejections for s in self._shards),
            "shards": len(self._shards),
            "epoch": self.epoch,
            "debt": self._debt,
            "rebalances": self.rebalances,
            "shard_active": [s.active for s in self._shards],
            "shard_limit": [s.limit for s in self._shards],
        }

    def snapshot(self) -> dict:
        """Consistent point-in-time view (one quiesce), superset of
        :meth:`AdmissionController.snapshot`."""
        with self.quiesced():
            return self.snapshot_locked()

    def __repr__(self) -> str:
        return (f"ShardedAdmissionController(active={self.active}/"
                f"{self.capacity}, shards={len(self._shards)}, "
                f"epoch={self.epoch}, rejected={self.rejections})")
