"""Vectorised Monte-Carlo simulation of round-based SCAN service.

This is the workhorse behind the paper's validation experiments
(Figure 1 and Table 2): it simulates, for a single disk under
multiprogramming level ``N``, a long run of scheduling rounds with

- fragment positions drawn uniformly over *sectors* (zone-weighted
  cylinder choice, matching §3.2's placement assumption),
- one SCAN sweep per round with alternating direction (elevator), the
  first seek starting from the previous sweep's end position,
- rotational latency ``Uniform(0, ROT)`` per request, and
- transfers at the request's zone rate.

A request whose completion time exceeds the round length ``t`` is a
glitch for its stream; the round always ends on time (overrun work is
dropped, matching the paper's "missed or delayed fragment" reading --
``carry_over`` is intentionally not modelled here because the paper's
rounds are independent).

Vectorisation note: the arm position at the start of a round is taken to
be the final cylinder of the previous round's *full* sweep even if that
round overran.  The exact position would be the last *served* request's
cylinder, but overruns are (by design) rare events that end near the
sweep's end anyway, so the approximation changes the first seek of the
following round by a sub-millisecond amount on a ~1 % subset of rounds.
The event-driven scheduler (:mod:`repro.server.scheduler`) models the arm
exactly and the two paths are cross-validated statistically in the test
suite.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass

import numpy as np

from repro.analysis.stats import wilson_interval
from repro.disk.presets import DiskSpec
from repro.disk.sweepkernel import sample_cylinders_rates
from repro.distributions import Distribution
from repro.errors import ConfigurationError

__all__ = [
    "RoundBatch",
    "resolve_sim_chunk",
    "simulate_rounds",
    "estimate_p_late",
    "simulate_stream_glitches",
    "estimate_p_error",
    "simulate_failover_rounds",
    "simulate_farm_rounds",
    "PLateEstimate",
    "PErrorEstimate",
    "FailoverEstimate",
    "FarmPhaseStats",
    "FarmRoundsEstimate",
]

#: Rounds per vectorised chunk; bounds peak memory at roughly
#: ``6 * chunk * N * 8`` bytes.
DEFAULT_SIM_CHUNK = 65536

#: Environment override for :data:`DEFAULT_SIM_CHUNK` (validated int
#: >= 1).  Chunking changes how the RNG stream is consumed, so results
#: under a non-default chunk are statistically equivalent but not
#: bit-equal to the default -- see ``docs/PERFORMANCE.md``.  Its main
#: use is making the multi-chunk code path cheap to exercise in tests
#: (it is inherited by :mod:`repro.parallel` workers through the
#: environment).
SIM_CHUNK_ENV = "REPRO_SIM_CHUNK"


def resolve_sim_chunk() -> int:
    """The vectorised-chunk size: ``REPRO_SIM_CHUNK`` or the default."""
    raw = os.environ.get(SIM_CHUNK_ENV)
    if raw is None or not raw.strip():
        return DEFAULT_SIM_CHUNK
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{SIM_CHUNK_ENV} must be an integer >= 1, got {raw!r}"
        ) from None
    if value < 1:
        raise ConfigurationError(
            f"{SIM_CHUNK_ENV} must be >= 1, got {raw!r}")
    return value


@dataclass(frozen=True)
class RoundBatch:
    """Result of a batch of simulated rounds.

    Attributes
    ----------
    service_times:
        Total service time of each round, shape ``(rounds,)``.
    glitches:
        Boolean matrix ``(rounds, n)``: ``glitches[r, s]`` is True when
        stream ``s``'s request missed the deadline in round ``r``.
    seek_times:
        Lumped seek time per round, including the cross-round
        repositioning hop (for the A5 seek-bound ablation).
    first_seek_times:
        The repositioning hop alone: the seek from the previous round's
        arm position to the first request of this round's sweep.  The
        Oyang bound covers a sweep anchored at the disk edge, so the
        *in-sweep* seek time is ``seek_times - first_seek_times``.
    """

    service_times: np.ndarray
    glitches: np.ndarray
    seek_times: np.ndarray
    first_seek_times: np.ndarray

    @property
    def sweep_seek_times(self) -> np.ndarray:
        """Lumped seek of the monotone sweep itself (excluding the
        cross-round repositioning hop)."""
        return self.seek_times - self.first_seek_times

    @property
    def rounds(self) -> int:
        """Number of simulated rounds."""
        return self.service_times.shape[0]

    @property
    def n(self) -> int:
        """Multiprogramming level."""
        return self.glitches.shape[1]


def _validate(spec: DiskSpec, n: int, t: float, rounds: int) -> None:
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n!r}")
    if rounds < 1:
        raise ConfigurationError(f"rounds must be >= 1, got {rounds!r}")
    if not (t > 0.0 and math.isfinite(t)):
        raise ConfigurationError(f"round length must be positive, got {t!r}")
    if spec.cylinders < 2:
        raise ConfigurationError("disk needs >= 2 cylinders")


def _sample_cylinders_rates(spec: DiskSpec, rng: np.random.Generator,
                            shape: tuple[int, int],
                            placement=None
                            ) -> tuple[np.ndarray, np.ndarray]:
    """Cylinders and their zone transfer rates under a placement policy
    (default: sector-uniform, eq. 3.2.1).

    Thin alias of :func:`repro.disk.sweepkernel.sample_cylinders_rates`
    (the machinery was factored there so the event-driven path can share
    it); RNG consumption -- and therefore every seeded result -- is
    unchanged.
    """
    return sample_cylinders_rates(spec, rng, shape, placement=placement)


def simulate_rounds(spec: DiskSpec, size_dist: Distribution, n: int,
                    t: float, rounds: int, rng: np.random.Generator,
                    initial_arm: int = 0, placement=None,
                    recal_prob: float = 0.0,
                    recal_duration: float = 0.0,
                    service_scale: float = 1.0) -> RoundBatch:
    """Simulate ``rounds`` SCAN rounds of ``n`` requests each.

    Rounds are simulated back-to-back on one drive: sweep direction
    alternates and the arm carries over between rounds, so lumped seek
    times reflect real elevator behaviour rather than independent sweeps.

    ``placement`` optionally replaces the sector-uniform access law with
    a :class:`repro.disk.placement.PlacementPolicy`.

    ``recal_prob``/``recal_duration`` inject a thermal-recalibration
    stall at the start of a round with the given probability (see
    :mod:`repro.core.faults`; stalling before the sweep delays every
    request of the round, matching the analytic disturbance term).

    ``service_scale`` multiplies every per-request service time
    (seek + rotation + transfer), matching the event engine's
    ``slow_disk`` semantics where the :class:`DiskScheduler` scales
    ``breakdown.total``; recalibration stalls are *not* scaled, also
    matching the event path (the arm seizure precedes the sweep).
    """
    _validate(spec, n, t, rounds)
    if recal_prob < 0.0 or recal_prob >= 1.0:
        raise ConfigurationError(
            f"recal_prob must be in [0, 1), got {recal_prob!r}")
    if recal_prob > 0.0 and recal_duration <= 0.0:
        raise ConfigurationError(
            "recal_duration must be positive when recal_prob > 0")
    if not (service_scale > 0.0 and math.isfinite(service_scale)):
        raise ConfigurationError(
            f"service_scale must be positive, got {service_scale!r}")
    service_times = np.empty(rounds, dtype=float)
    seek_totals = np.empty(rounds, dtype=float)
    first_seeks = np.empty(rounds, dtype=float)
    glitches = np.zeros((rounds, n), dtype=bool)
    rot = spec.rot

    arm = float(initial_arm)
    direction_offset = 0
    done = 0
    chunk_cap = resolve_sim_chunk()
    while done < rounds:
        chunk = min(chunk_cap, rounds - done)
        cylinders, rates = _sample_cylinders_rates(spec, rng, (chunk, n),
                                                   placement=placement)
        sizes = np.asarray(size_dist.sample(rng, (chunk, n)), dtype=float)
        if np.any(sizes <= 0):
            raise ConfigurationError(
                "size distribution produced non-positive fragment sizes")

        order = np.argsort(cylinders, axis=1, kind="stable")
        # Alternate sweep direction: even global round index ascends.
        descending = ((np.arange(chunk) + direction_offset) % 2).astype(bool)
        order[descending] = order[descending, ::-1]

        sorted_cyl = np.take_along_axis(cylinders, order, axis=1)
        sorted_sizes = np.take_along_axis(sizes, order, axis=1)
        sorted_rates = np.take_along_axis(rates, order, axis=1)

        # Seek distances along the sweep; first hop from the previous
        # round's arm position.
        inner = np.abs(np.diff(sorted_cyl, axis=1)).astype(float)
        ends = sorted_cyl[:, -1].astype(float)
        prev_end = np.concatenate(([arm], ends[:-1]))
        first = np.abs(sorted_cyl[:, 0] - prev_end)
        distances = np.concatenate((first[:, None], inner), axis=1)
        seek_times = np.asarray(spec.seek_curve(distances))

        rotation = rng.uniform(0.0, rot, size=(chunk, n))
        transfer = sorted_sizes / sorted_rates
        completion = np.cumsum(seek_times + rotation + transfer, axis=1)
        if service_scale != 1.0:
            completion = completion * service_scale
        if recal_prob > 0.0:
            stall = np.where(rng.random(chunk) < recal_prob,
                             recal_duration, 0.0)
            completion = completion + stall[:, None]

        service_times[done:done + chunk] = completion[:, -1]
        seek_totals[done:done + chunk] = np.sum(seek_times, axis=1)
        first_seeks[done:done + chunk] = seek_times[:, 0]

        late = completion > t
        np.put_along_axis(glitches[done:done + chunk], order, late, axis=1)

        arm = float(ends[-1])
        direction_offset = (direction_offset + chunk) % 2
        done += chunk

    return RoundBatch(service_times=service_times, glitches=glitches,
                      seek_times=seek_totals, first_seek_times=first_seeks)


@dataclass(frozen=True)
class PLateEstimate:
    """Simulated estimate of ``p_late(N, t)`` with a Wilson 95 % CI."""

    n: int
    t: float
    rounds: int
    late_rounds: int
    p_late: float
    ci_low: float
    ci_high: float


def estimate_p_late(spec: DiskSpec, size_dist: Distribution, n: int,
                    t: float, rounds: int = 20_000, seed: int = 0,
                    jobs: int | None = None) -> PLateEstimate:
    """Monte-Carlo estimate of the probability a round overruns
    (Figure 1's simulated series).

    ``jobs=None`` keeps the historical single-stream RNG layout
    (byte-identical to earlier releases for a given seed).  Any explicit
    ``jobs`` value -- including 1 -- switches to the chunk-parallel
    decomposition of :mod:`repro.parallel`, whose results are
    bit-identical across worker counts but use per-chunk substreams.
    """
    if jobs is not None:
        from repro.parallel import estimate_p_late_parallel
        return estimate_p_late_parallel(spec, size_dist, n, t,
                                        rounds=rounds, seed=seed, jobs=jobs)
    rng = np.random.default_rng(seed)
    batch = simulate_rounds(spec, size_dist, n, t, rounds, rng)
    late = int(np.sum(batch.service_times > t))
    low, high = wilson_interval(late, rounds)
    return PLateEstimate(n=n, t=t, rounds=rounds, late_rounds=late,
                         p_late=late / rounds, ci_low=low, ci_high=high)


def simulate_stream_glitches(spec: DiskSpec, size_dist: Distribution,
                             n: int, t: float, m: int, runs: int,
                             seed: int = 0,
                             jobs: int | None = None) -> np.ndarray:
    """Per-stream glitch counts over ``m`` rounds, repeated ``runs``
    times.  Returns an integer array of shape ``(runs, n)``.

    Each run is an independent server lifetime of ``m`` rounds with the
    same ``n`` streams active throughout (the paper's Table 2 setting:
    streams of M = 1200 rounds).

    Runs already draw from per-run ``SeedSequence`` children, so the
    ``jobs`` fan-out (via :mod:`repro.parallel`) is bit-identical to
    this serial loop for every worker count.
    """
    if jobs is not None:
        from repro.parallel import simulate_stream_glitches_parallel
        return simulate_stream_glitches_parallel(spec, size_dist, n, t,
                                                 m, runs, seed=seed,
                                                 jobs=jobs)
    if runs < 1:
        raise ConfigurationError(f"runs must be >= 1, got {runs!r}")
    counts = np.empty((runs, n), dtype=np.int64)
    root = np.random.SeedSequence(seed)
    for run, child in enumerate(root.spawn(runs)):
        rng = np.random.default_rng(child)
        batch = simulate_rounds(spec, size_dist, n, t, m, rng)
        counts[run] = np.sum(batch.glitches, axis=0)
    return counts


@dataclass(frozen=True)
class FailoverEstimate:
    """Vectorised two-phase estimate of a mirrored-pair failover.

    The survivor of a RAID-1 pair serves ``n_healthy`` requests per
    round until the partner fails, then ``n_degraded`` per round (the
    doubled batch -- or the shed batch, when load shedding caps it).
    ``p_late_*`` are round-overrun probabilities with Wilson 95 % CIs.
    """

    n_healthy: int
    n_degraded: int
    t: float
    rounds_healthy: int
    rounds_degraded: int
    p_late_healthy: float
    p_late_degraded: float
    ci_healthy: tuple[float, float]
    ci_degraded: tuple[float, float]


def simulate_failover_rounds(spec: DiskSpec, size_dist: Distribution,
                             n_healthy: int, n_degraded: int, t: float,
                             rounds_healthy: int = 2000,
                             rounds_degraded: int = 2000,
                             seed: int = 0) -> FailoverEstimate:
    """Vectorised cross-check of the event-driven failover path.

    Simulates the *survivor* disk of a mirrored pair through a partner
    failure: ``rounds_healthy`` rounds at batch ``n_healthy``, then
    ``rounds_degraded`` rounds at batch ``n_degraded`` (``2 n`` without
    shedding, ``2 n_shed`` with -- each mirrored fetch adds one request
    to the survivor's sweep).  The arm position carries over between the
    phases.  Used by bench A21 to confirm the degraded-phase overrun
    rate agrees with the analytic ``b_late(n_degraded, t)`` bound
    independently of the event-driven server.
    """
    rng = np.random.default_rng(seed)
    healthy = simulate_rounds(spec, size_dist, n_healthy, t,
                              rounds_healthy, rng)
    degraded = simulate_rounds(spec, size_dist, n_degraded, t,
                               rounds_degraded, rng)
    late_h = int(np.sum(healthy.service_times > t))
    late_d = int(np.sum(degraded.service_times > t))
    return FailoverEstimate(
        n_healthy=n_healthy, n_degraded=n_degraded, t=t,
        rounds_healthy=rounds_healthy, rounds_degraded=rounds_degraded,
        p_late_healthy=late_h / rounds_healthy,
        p_late_degraded=late_d / rounds_degraded,
        ci_healthy=wilson_interval(late_h, rounds_healthy),
        ci_degraded=wilson_interval(late_d, rounds_degraded),
    )


@dataclass(frozen=True)
class FarmPhaseStats:
    """Aggregate statistics of one phase of a farm-level simulation.

    ``disk_rounds`` counts the active (disk, round) pairs of the phase
    (a failed disk contributes none); ``requests`` the fragments
    simulated across them.
    """

    name: str
    rounds: int
    disk_rounds: int
    late_disk_rounds: int
    requests: int
    glitches: int

    @property
    def p_late(self) -> float:
        """Fraction of active (disk, round) pairs that overran."""
        if self.disk_rounds == 0:
            return 0.0
        return self.late_disk_rounds / self.disk_rounds

    @property
    def glitch_rate(self) -> float:
        """Fraction of simulated requests that missed the deadline."""
        if self.requests == 0:
            return 0.0
        return self.glitches / self.requests

    def p_late_ci(self) -> tuple[float, float]:
        """Wilson 95 % interval on :attr:`p_late`."""
        if self.disk_rounds == 0:
            return (0.0, 1.0)
        return wilson_interval(self.late_disk_rounds, self.disk_rounds)

    def glitch_ci(self) -> tuple[float, float]:
        """Wilson 95 % interval on :attr:`glitch_rate`."""
        if self.requests == 0:
            return (0.0, 1.0)
        return wilson_interval(self.glitches, self.requests)


@dataclass(frozen=True)
class FarmRoundsEstimate:
    """Farm-level vectorised Monte-Carlo estimate.

    ``per_disk[d][p]`` is the raw ``(rounds, late, requests, glitches)``
    tuple of disk ``d`` in phase ``p`` (phases ordered as
    :attr:`phases`); the phase records aggregate over disks.
    """

    disks: int
    n_per_disk: int
    t: float
    fail_disk: int | None
    shedding: bool
    phases: tuple[FarmPhaseStats, ...]
    per_disk: tuple[tuple[tuple[int, int, int, int], ...], ...]

    def phase(self, name: str) -> FarmPhaseStats:
        """The phase record named ``name`` (raises on unknown names)."""
        for record in self.phases:
            if record.name == name:
                return record
        raise ConfigurationError(
            f"no phase {name!r}; have "
            f"{[p.name for p in self.phases]!r}")

    def survivor_degraded(self) -> FarmPhaseStats:
        """Degraded-phase statistics of the surviving mirror alone
        (the disk that absorbs the doubled batch)."""
        if self.fail_disk is None:
            raise ConfigurationError("run simulated no failure")
        from repro.core.farm import mirror_of
        partner = mirror_of(self.fail_disk, self.disks)
        if partner is None:
            raise ConfigurationError(
                f"disk {self.fail_disk} has no mirror on a farm of "
                f"{self.disks}")
        index = [p.name for p in self.phases].index("degraded")
        rounds, late, requests, glitches = self.per_disk[partner][index]
        return FarmPhaseStats(name="survivor_degraded", rounds=rounds,
                              disk_rounds=rounds, late_disk_rounds=late,
                              requests=requests, glitches=glitches)


def _simulate_disk_phases(task):
    """Worker: one disk's rounds through every phase (module-level so it
    pickles into pool workers).

    ``task`` is ``(spec, size_dist, t, phases, seed_sequence)`` with
    ``phases`` a tuple of plain ``(name, batch, rounds)`` entries or the
    scenario compiler's extended ``(name, batch, rounds, service_scale,
    recal_prob, recal_stall)`` form (plain entries run at full speed
    with no storm, consuming the RNG identically to earlier releases).
    The disk's RNG is carried across phases (like
    :func:`simulate_failover_rounds`), and a phase with an empty batch
    draws nothing, so results are bit-identical regardless of how disks
    are spread over workers.
    """
    spec, size_dist, t, phases, child = task
    rng = np.random.default_rng(child)
    results = []
    for entry in phases:
        _name, batch, rounds = entry[:3]
        scale = entry[3] if len(entry) > 3 else 1.0
        recal_prob = entry[4] if len(entry) > 4 else 0.0
        recal_stall = entry[5] if len(entry) > 5 else 0.0
        if batch < 1 or rounds < 1:
            results.append((0, 0, 0, 0))
            continue
        batch_result = simulate_rounds(spec, size_dist, batch, t, rounds,
                                       rng, recal_prob=recal_prob,
                                       recal_duration=recal_stall,
                                       service_scale=scale)
        late = int(np.sum(batch_result.service_times > t))
        glitches = int(np.sum(batch_result.glitches))
        results.append((rounds, late, rounds * batch, glitches))
    return tuple(results)


def _group_phase_results(phase_plan, per_disk, disks):
    """Aggregate per-(disk, plan-entry) raw tuples into named phases.

    Consecutive plan entries sharing a name are merged (a rejoin ramp
    -- or a compiled scenario's constant-state segments -- split one
    logical phase into several entries), yielding the
    ``(phases, per_disk)`` pair of :class:`FarmRoundsEstimate`.
    """
    groups: list[tuple[str, list[int], int]] = []
    for index, entry in enumerate(phase_plan):
        name, _batches, phase_rounds = entry[0], entry[1], entry[2]
        if groups and groups[-1][0] == name:
            groups[-1][1].append(index)
            groups[-1] = (name, groups[-1][1],
                          groups[-1][2] + phase_rounds)
        else:
            groups.append((name, [index], phase_rounds))

    phases = []
    grouped_per_disk = []
    for disk in range(disks):
        row = []
        for _name, indices, _rounds in groups:
            totals = [0, 0, 0, 0]
            for index in indices:
                for position, value in enumerate(per_disk[disk][index]):
                    totals[position] += value
            row.append(tuple(totals))
        grouped_per_disk.append(tuple(row))
    for group_index, (name, _indices, group_rounds) in enumerate(groups):
        disk_rounds = late = requests = glitches = 0
        for disk in range(disks):
            d_rounds, d_late, d_requests, d_glitches = \
                grouped_per_disk[disk][group_index]
            disk_rounds += d_rounds
            late += d_late
            requests += d_requests
            glitches += d_glitches
        phases.append(FarmPhaseStats(
            name=name, rounds=group_rounds, disk_rounds=disk_rounds,
            late_disk_rounds=late, requests=requests, glitches=glitches))
    return tuple(phases), tuple(grouped_per_disk)


def _rejoin_plan(disks: int, n_per_disk: int, kept: int, span: int,
                 rejoin_rounds: int) -> list[tuple[str, tuple[int, ...],
                                                   int]]:
    """Recovered-phase plan entries for the post-recovery rejoin.

    The recovered phase starts from the *shed* populations -- every
    disk back in service at the degraded ``kept`` level -- and ramps
    linearly back to ``n_per_disk`` over ``rejoin_rounds`` rounds
    (``0`` holds the shed level for the rest of the run: drop-mode
    semantics, where shed streams never return and no arrival process
    refills the farm).  Consecutive rounds at the same level are merged
    into one entry.
    """
    if span <= 0:
        return [("recovered", (kept,) * disks, 0)]
    if rejoin_rounds <= 0 or kept >= n_per_disk:
        return [("recovered", (kept,) * disks, span)]
    entries: list[tuple[str, tuple[int, ...], int]] = []
    level_rounds: list[int] = []
    for step in range(min(rejoin_rounds, span)):
        fraction = (step + 1) / rejoin_rounds
        level_rounds.append(
            kept + math.ceil(fraction * (n_per_disk - kept)))
    remaining = span - len(level_rounds)
    if remaining > 0:
        level_rounds.extend([n_per_disk] * remaining)
    start = 0
    for index in range(1, len(level_rounds) + 1):
        if (index == len(level_rounds)
                or level_rounds[index] != level_rounds[start]):
            entries.append(("recovered",
                            (level_rounds[start],) * disks,
                            index - start))
            start = index
    return entries


def simulate_farm_rounds(spec: DiskSpec, size_dist: Distribution, *,
                         disks: int = 2, n_per_disk: int, t: float,
                         rounds: int, fail_disk: int | None = 0,
                         fail_round: int | None = None,
                         recover_round: int | None = None,
                         shedding: bool = True,
                         degraded_n_max: int | None = None,
                         instant_rejoin: bool = False,
                         rejoin_rounds: int = 0,
                         seed: int = 0,
                         jobs: int | None = None) -> FarmRoundsEstimate:
    """Farm-level vectorised Monte-Carlo through a mirrored failover.

    The statistical counterpart of
    :func:`repro.server.faults.run_failover_scenario`: all ``disks``
    drives are simulated jointly through up to three phases -- healthy
    rounds ``[0, fail_round)``, degraded rounds ``[fail_round,
    recover_round)`` with the per-disk populations of
    :func:`repro.core.farm.failover_phase_batches` (failed disk idle,
    survivor doubled, shedding caps applied), and recovered rounds
    ``[recover_round, rounds)``.  With ``fail_round=None`` (or
    ``fail_disk=None``) the whole run is one healthy phase.

    The recovered phase starts from the *shed* populations: every disk
    rejoins at the degraded ``kept`` level and, with ``rejoin_rounds >
    0``, ramps linearly back to ``n_per_disk`` (an arrival process
    refilling the freed capacity).  ``rejoin_rounds=0`` (default) holds
    the shed level -- the event engine's drop-mode semantics, where
    shed streams never return.  ``instant_rejoin=True`` pins the old
    behaviour -- the full ``n_per_disk`` population reappears at
    ``recover_round`` -- which matches the event engine's pause-mode
    shedding (every paused stream resumes at the first healthy round
    boundary).

    Where the event-driven scenario walks every request through the
    kernel calendar, this path batches each (disk, phase) into
    :func:`simulate_rounds` -- orders of magnitude faster, at the cost
    of the event path's exact arm carry-over across phase boundaries
    and its per-stream bookkeeping.  The two are cross-validated
    statistically (Wilson intervals) in the test suite; use the event
    engine when per-stream traces matter and this one for sweeps.

    Each disk draws from its own ``SeedSequence`` child, so ``jobs``
    fan-out (via :mod:`repro.parallel`) is bit-identical to the serial
    loop for every worker count.
    """
    _validate(spec, n_per_disk, t, rounds)
    if disks < 1:
        raise ConfigurationError(f"disks must be >= 1, got {disks!r}")
    if fail_disk is not None and not (0 <= fail_disk < disks):
        raise ConfigurationError(
            f"fail_disk {fail_disk} out of range [0, {disks})")
    if rejoin_rounds < 0:
        raise ConfigurationError(
            f"rejoin_rounds must be >= 0, got {rejoin_rounds!r}")
    if instant_rejoin and rejoin_rounds:
        raise ConfigurationError(
            "instant_rejoin=True and rejoin_rounds are mutually "
            "exclusive (an instant rejoin has no ramp)")
    failing = fail_disk is not None and fail_round is not None
    if failing:
        if not (0 <= fail_round <= rounds):
            raise ConfigurationError(
                f"fail_round must be in [0, {rounds}], got {fail_round!r}")
        recover_end = rounds if recover_round is None else recover_round
        if not (fail_round <= recover_end <= rounds):
            raise ConfigurationError(
                f"recover_round must be in [{fail_round}, {rounds}], "
                f"got {recover_round!r}")
        from repro.core.farm import failover_phase_batches
        healthy_batches, degraded_batches = failover_phase_batches(
            disks, n_per_disk, degraded_n_max=degraded_n_max,
            fail_disk=fail_disk, shedding=shedding)
        recovered_span = rounds - recover_end
        if instant_rejoin:
            recovered_plan = [("recovered", healthy_batches,
                               recovered_span)]
        else:
            kept = (min(n_per_disk, degraded_n_max) if shedding
                    else n_per_disk)
            recovered_plan = _rejoin_plan(disks, n_per_disk, kept,
                                          recovered_span, rejoin_rounds)
        phase_plan = [
            ("healthy", healthy_batches, fail_round),
            ("degraded", degraded_batches, recover_end - fail_round),
            *recovered_plan,
        ]
    else:
        phase_plan = [("healthy", (n_per_disk,) * disks, rounds)]

    root = np.random.SeedSequence([seed, 0xFA9A])
    tasks = [
        (spec, size_dist, t,
         tuple((name, batches[disk], phase_rounds)
               for name, batches, phase_rounds in phase_plan),
         child)
        for disk, child in enumerate(root.spawn(disks))
    ]
    if jobs is not None:
        from repro.parallel import simulate_farm_disks_parallel
        per_disk = simulate_farm_disks_parallel(tasks, jobs)
    else:
        per_disk = [_simulate_disk_phases(task) for task in tasks]

    # Group consecutive plan entries by phase name (a rejoin ramp
    # splits "recovered" into several entries) and aggregate both the
    # farm-level phase records and the per-disk raw tuples, so the
    # estimate keeps its three-phase shape regardless of ramp depth.
    phases, grouped_per_disk = _group_phase_results(
        phase_plan, per_disk, disks)
    return FarmRoundsEstimate(
        disks=disks, n_per_disk=n_per_disk, t=t,
        fail_disk=fail_disk if failing else None, shedding=shedding,
        phases=phases, per_disk=grouped_per_disk)


@dataclass(frozen=True)
class PErrorEstimate:
    """Simulated estimate of ``p_error = P[#glitches >= g]``."""

    n: int
    t: float
    m: int
    g: int
    streams: int
    bad_streams: int
    p_error: float
    ci_low: float
    ci_high: float
    mean_glitches: float


def estimate_p_error(spec: DiskSpec, size_dist: Distribution, n: int,
                     t: float, m: int, g: int, runs: int = 100,
                     seed: int = 0,
                     jobs: int | None = None) -> PErrorEstimate:
    """Monte-Carlo estimate of the per-stream error probability
    (Table 2's simulated column).  ``jobs`` fans the runs out over
    worker processes with bit-identical results (see
    :func:`simulate_stream_glitches`)."""
    if not (0 <= g <= m):
        raise ConfigurationError(f"g must be in [0, m], got {g!r}")
    counts = simulate_stream_glitches(spec, size_dist, n, t, m, runs,
                                      seed, jobs=jobs)
    streams = counts.size
    bad = int(np.sum(counts >= g))
    low, high = wilson_interval(bad, streams)
    return PErrorEstimate(n=n, t=t, m=m, g=g, streams=streams,
                          bad_streams=bad, p_error=bad / streams,
                          ci_low=low, ci_high=high,
                          mean_glitches=float(np.mean(counts)))
