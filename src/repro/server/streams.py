"""Stream state, client buffers and glitch accounting."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError, SimulationError

__all__ = ["ClientBuffer", "Stream", "StreamStats"]


class ClientBuffer:
    """The client-side fragment buffer of §2.

    The server delivers the fragment for round ``r+1`` during round
    ``r``; the client consumes one fragment per round.  The minimum
    workable capacity is therefore 2 fragments (one being displayed, one
    arriving); clients with more local memory may buffer deeper.
    """

    MIN_CAPACITY = 2

    __slots__ = ("capacity", "_occupied", "high_watermark")

    def __init__(self, capacity: int = MIN_CAPACITY) -> None:
        if capacity < self.MIN_CAPACITY:
            raise ConfigurationError(
                f"client buffer needs >= {self.MIN_CAPACITY} fragments, "
                f"got {capacity!r}")
        self.capacity = int(capacity)
        self._occupied = 0
        self.high_watermark = 0

    @property
    def occupied(self) -> int:
        """Fragments currently buffered."""
        return self._occupied

    @property
    def free(self) -> int:
        """Free fragment slots."""
        return self.capacity - self._occupied

    def deliver(self) -> None:
        """A fragment arrived from the server."""
        if self._occupied >= self.capacity:
            raise SimulationError("client buffer overflow")
        self._occupied += 1
        self.high_watermark = max(self.high_watermark, self._occupied)

    def consume(self) -> bool:
        """The client displays one fragment; returns False on underrun
        (nothing buffered -- the visible hiccup of a glitch)."""
        if self._occupied == 0:
            return False
        self._occupied -= 1
        return True


@dataclass(slots=True)
class StreamStats:
    """Aggregated delivery statistics of one stream."""

    delivered: int = 0
    glitches: int = 0
    glitch_rounds: list[int] = field(default_factory=list)
    #: Times the stream was paused by the load-shedding policy.
    pauses: int = 0
    #: Rounds spent paused (display frozen, no fetches issued).
    paused_rounds: int = 0
    #: Whether the shedding policy closed the stream outright
    #: (``mode="drop"``).
    shed: bool = False

    @property
    def requested(self) -> int:
        """Fragments requested so far."""
        return self.delivered + self.glitches

    def glitch_rate(self) -> float:
        """Fraction of requested fragments that missed their deadline."""
        if self.requested == 0:
            raise SimulationError("stream has not requested any fragments")
        return self.glitches / self.requested


class Stream:
    """One admitted continuous-data stream.

    A stream starts at ``start_round`` and requests fragment
    ``r - start_round`` of its object in round ``r`` (to be displayed in
    round ``r + 1``), until the object is exhausted.

    ``klass`` is a free-form service-class label ("standard" unless the
    opener says otherwise); the per-stream latency telemetry buckets its
    fragment-completion histograms by it.
    """

    __slots__ = ("stream_id", "object_name", "length", "start_round",
                 "buffer", "stats", "paused", "klass", "start_delay")

    def __init__(self, stream_id: int, object_name: str, length: int,
                 start_round: int, buffer_capacity: int = 2,
                 klass: str = "standard") -> None:
        if length < 1:
            raise ConfigurationError(
                f"object length must be >= 1, got {length!r}")
        if start_round < 0:
            raise ConfigurationError(
                f"start_round must be >= 0, got {start_round!r}")
        self.stream_id = int(stream_id)
        self.object_name = object_name
        self.length = int(length)
        self.start_round = int(start_round)
        self.buffer = ClientBuffer(buffer_capacity)
        self.stats = StreamStats()
        self.klass = str(klass)
        #: Rounds the admitting server delayed the first fetch (set by
        #: MediaServer.open_stream when balancing phase classes).
        self.start_delay = 0
        #: Set by the load-shedding policy: a paused stream issues no
        #: fetches and its playback position freezes (the remaining
        #: fragments shift later, one round per paused round).
        self.paused = False

    # ------------------------------------------------------------------
    def pause(self) -> None:
        """Freeze playback (load shedding entered degraded mode)."""
        if self.paused:
            raise SimulationError(
                f"stream {self.stream_id} is already paused")
        self.paused = True
        self.stats.pauses += 1

    def resume(self) -> None:
        """Continue playback from where the pause left off."""
        if not self.paused:
            raise SimulationError(
                f"stream {self.stream_id} is not paused")
        self.paused = False

    def defer_round(self) -> None:
        """Account one paused round: the whole remaining schedule slips
        by one round, so the next fetch resumes at the frozen offset."""
        if not self.paused:
            raise SimulationError(
                f"stream {self.stream_id} is not paused")
        self.start_round += 1
        self.stats.paused_rounds += 1

    def fragment_for_round(self, round_index: int) -> int | None:
        """Fragment index this stream needs fetched in ``round_index``,
        or None when the stream is paused or inactive/finished then."""
        if self.paused:
            return None
        offset = round_index - self.start_round
        if offset < 0 or offset >= self.length:
            return None
        return offset

    def is_finished(self, round_index: int) -> bool:
        """Whether the stream has requested its last fragment before
        ``round_index``."""
        return round_index - self.start_round >= self.length

    def record_delivery(self, round_index: int) -> None:
        """A fragment arrived on time."""
        self.stats.delivered += 1
        if self.buffer.free > 0:
            self.buffer.deliver()

    def record_glitch(self, round_index: int) -> None:
        """A fragment missed its deadline (dropped)."""
        self.stats.glitches += 1
        self.stats.glitch_rounds.append(round_index)

    def __repr__(self) -> str:
        return (f"Stream(id={self.stream_id}, object={self.object_name!r}, "
                f"delivered={self.stats.delivered}, "
                f"glitches={self.stats.glitches})")
