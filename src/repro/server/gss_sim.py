"""Grouped Sweeping Scheduling simulation.

The analytic GSS treatment (:mod:`repro.core.gss`) rescales a group to
a §3 round -- exact *per group in isolation*.  A real GSS disk serves
``g`` groups back to back, so the arm enters each group's sweep from
wherever the previous group finished; this simulator models that
coupling and lets the tests confirm the rescaled bound still covers the
coupled system.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.disk.presets import DiskSpec
from repro.distributions import Distribution
from repro.errors import ConfigurationError
from repro.server.simulation import _sample_cylinders_rates, _validate

__all__ = ["GssBatch", "simulate_gss_rounds"]


@dataclass(frozen=True)
class GssBatch:
    """Result of a GSS simulation."""

    groups: int
    sub_round_length: float
    group_service_times: np.ndarray   # (rounds, groups)
    group_late: np.ndarray            # (rounds, groups) bool

    @property
    def p_late_group(self) -> float:
        """Fraction of (round, group) pairs overrunning their
        sub-round."""
        return float(np.mean(self.group_late))

    @property
    def rounds(self) -> int:
        """Simulated full rounds."""
        return self.group_service_times.shape[0]


def simulate_gss_rounds(spec: DiskSpec, size_dist: Distribution, n: int,
                        groups: int, t: float, rounds: int,
                        rng: np.random.Generator) -> GssBatch:
    """Simulate GSS: ``groups`` sub-rounds of ``ceil(n/groups)``
    requests within each round of length ``t``.

    Each group's sweep alternates direction (per sub-round, like a real
    elevator) and starts from the previous group's arm position.  A
    group overruns when its batch does not finish within its sub-round
    slot ``t/groups`` (measured from the slot start; a late previous
    group delays the next one, which the simulation propagates).
    """
    _validate(spec, n, t, rounds)
    if groups < 1 or groups > n:
        raise ConfigurationError(
            f"groups must be in [1, n], got {groups!r}")
    group_size = -(-n // groups)
    slot = t / groups

    service = np.empty((rounds, groups))
    late = np.zeros((rounds, groups), dtype=bool)
    arm = 0.0
    parity = 0

    for r in range(rounds):
        clock = 0.0  # time within the round
        for g in range(groups):
            cylinders, rates = _sample_cylinders_rates(
                spec, rng, (1, group_size))
            cylinders, rates = cylinders[0], rates[0]
            sizes = np.asarray(size_dist.sample(rng, group_size),
                               dtype=float)
            order = np.argsort(cylinders, kind="stable")
            if parity % 2:
                order = order[::-1]
            parity += 1
            sorted_cyl = cylinders[order].astype(float)
            hops = np.concatenate(([abs(sorted_cyl[0] - arm)],
                                   np.abs(np.diff(sorted_cyl))))
            seek = float(np.sum(spec.seek_curve(hops)))
            rotation = float(np.sum(rng.uniform(0.0, spec.rot,
                                                group_size)))
            transfer = float(np.sum(sizes[order] / rates[order]))
            duration = seek + rotation + transfer
            arm = float(sorted_cyl[-1])

            slot_start = g * slot
            start = max(clock, slot_start)
            finish = start + duration
            service[r, g] = duration
            late[r, g] = finish > slot_start + slot
            clock = finish
        # The round boundary is hard: a drastically late final group
        # would eat into the next round; rounds here start clean (the
        # admission regime keeps overruns rare and small).

    return GssBatch(groups=groups, sub_round_length=slot,
                    group_service_times=service, group_late=late)
