"""Prefetching server simulation (§6 extension).

Simulates the policy analysed by :class:`repro.core.buffering.PrefetchPlan`:
every round each of the ``n`` streams requests its due fragment, and the
``headroom`` streams with the lowest client buffers additionally request
their next fragment ahead of time.  The whole batch is served with one
SCAN sweep; fetches completing after the deadline fail.  Client buffers
absorb failed dues -- a *visible hiccup* only happens when a client's
buffer is empty at consumption time.

The loop is sequential over rounds (the prefetch decision feeds back
through buffer state) with numpy vectorisation inside each round.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.disk.presets import DiskSpec
from repro.distributions import Distribution
from repro.errors import ConfigurationError
from repro.server.simulation import _sample_cylinders_rates, _validate

__all__ = ["PrefetchResult", "simulate_prefetch"]


@dataclass(frozen=True)
class PrefetchResult:
    """Outcome of a prefetching-server simulation."""

    rounds: int
    n: int
    headroom: int
    capacity: int
    hiccups: np.ndarray          # visible hiccups per stream
    glitches: np.ndarray         # failed due fetches per stream
    mean_buffer: float           # time-average buffer occupancy
    prefetches_issued: int
    prefetches_delivered: int

    @property
    def hiccup_rate(self) -> float:
        """Visible hiccups per stream-round."""
        return float(np.sum(self.hiccups)) / (self.rounds * self.n)

    @property
    def glitch_rate(self) -> float:
        """Failed due fetches per stream-round."""
        return float(np.sum(self.glitches)) / (self.rounds * self.n)


def simulate_prefetch(spec: DiskSpec, size_dist: Distribution, n: int,
                      t: float, rounds: int, headroom: int, capacity: int,
                      prefill: int = 1, seed: int = 0) -> PrefetchResult:
    """Run the prefetching server for ``rounds`` rounds.

    Parameters
    ----------
    headroom:
        Maximum prefetch fetches added per round (0 disables prefetch).
    capacity:
        Client buffer capacity in fragments.
    prefill:
        Fragments prefilled into every client buffer before round 0
        (bounded startup delay).
    """
    _validate(spec, n, t, rounds)
    if headroom < 0:
        raise ConfigurationError(
            f"headroom must be >= 0, got {headroom!r}")
    if capacity < 1:
        raise ConfigurationError(
            f"capacity must be >= 1, got {capacity!r}")
    if not (0 <= prefill <= capacity):
        raise ConfigurationError(
            f"prefill must be in [0, {capacity}], got {prefill!r}")

    rng = np.random.default_rng(seed)
    rot = spec.rot
    buffers = np.full(n, prefill, dtype=np.int64)
    hiccups = np.zeros(n, dtype=np.int64)
    glitches = np.zeros(n, dtype=np.int64)
    buffer_area = 0.0
    issued = delivered = 0
    arm = 0.0

    for round_index in range(rounds):
        # --- consume ---------------------------------------------------
        empty = buffers == 0
        hiccups[empty] += 1
        buffers[~empty] -= 1
        buffer_area += float(np.sum(buffers))

        # --- choose the batch -------------------------------------------
        owners = np.arange(n)
        is_due = np.ones(n, dtype=bool)
        if headroom > 0:
            fillable = np.flatnonzero(buffers < capacity)
            if fillable.size:
                order = fillable[np.argsort(buffers[fillable],
                                            kind="stable")]
                chosen = order[:headroom]
                owners = np.concatenate([owners, chosen])
                is_due = np.concatenate(
                    [is_due, np.zeros(chosen.size, dtype=bool)])
                issued += int(chosen.size)
        k = owners.size

        # --- serve one SCAN sweep ---------------------------------------
        cylinders, rates = _sample_cylinders_rates(spec, rng, (1, k))
        cylinders, rates = cylinders[0], rates[0]
        sizes = np.asarray(size_dist.sample(rng, k), dtype=float)
        order = np.argsort(cylinders, kind="stable")
        if round_index % 2:
            order = order[::-1]
        sorted_cyl = cylinders[order].astype(float)
        distances = np.concatenate((
            [abs(sorted_cyl[0] - arm)], np.abs(np.diff(sorted_cyl))))
        seek_times = np.asarray(spec.seek_curve(distances))
        rotation = rng.uniform(0.0, rot, size=k)
        transfer = sizes[order] / rates[order]
        completion = np.cumsum(seek_times + rotation + transfer)
        arm = float(sorted_cyl[-1])

        ok_sorted = completion <= t
        ok = np.empty(k, dtype=bool)
        ok[order] = ok_sorted

        # --- deliver -----------------------------------------------------
        due_ok = ok[:n]
        glitches[~due_ok] += 1
        gains = np.zeros(n, dtype=np.int64)
        gains[due_ok] += 1
        if k > n:
            pf_owners = owners[n:]
            pf_ok = ok[n:]
            np.add.at(gains, pf_owners[pf_ok], 1)
            delivered += int(np.sum(pf_ok))
        buffers = np.minimum(buffers + gains, capacity)

    return PrefetchResult(
        rounds=rounds, n=n, headroom=headroom, capacity=capacity,
        hiccups=hiccups, glitches=glitches,
        mean_buffer=buffer_area / (rounds * n),
        prefetches_issued=issued, prefetches_delivered=delivered)
