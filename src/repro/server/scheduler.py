"""Event-driven per-disk round scheduler.

Each disk runs one :class:`DiskScheduler` process on the simulation
kernel.  At every round boundary the server hands the scheduler its
batch; the scheduler serves the batch in SCAN order (direction
alternating per round), yielding simulated time for every seek,
rotational latency and transfer.  Requests completing after the round's
deadline -- and requests still unserved when the deadline passes -- are
reported as glitches.

Unlike the vectorised path, this models the arm *exactly*: if a round
overruns, the next sweep starts from wherever the arm actually stopped,
and the in-flight request is finished (charging its time into the next
round) before the leftover batch is abandoned.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.disk.drive import DiskDrive
from repro.disk.request import DiskRequest
from repro.disk.scan import order_scan
from repro.obs.trace import NULL_TRACER, Tracer
from repro.sim.engine import Engine
from repro.sim.resources import Store

__all__ = ["DiskScheduler", "RoundOutcome"]


@dataclass(frozen=True, slots=True)
class RoundOutcome:
    """Per-request outcome of one disk's round.

    ``completion_times`` is aligned with ``served_on_time``: entry ``i``
    is the simulation time stream ``served_on_time[i]``'s fragment
    finished, feeding the per-stream latency telemetry without another
    per-request record.
    """

    round_index: int
    served_on_time: tuple[int, ...]
    glitched: tuple[int, ...]
    finish_time: float
    lumped_seek_time: float
    completion_times: tuple[float, ...] = ()


class DiskScheduler:
    """SCAN scheduler of one disk, running as a kernel process."""

    def __init__(self, engine: Engine, drive: DiskDrive,
                 rng: np.random.Generator,
                 on_outcome: Callable[[int, "RoundOutcome"], None],
                 disk_id: int = 0, faults=None,
                 tracer: Tracer = NULL_TRACER) -> None:
        self.engine = engine
        self.drive = drive
        self.rng = rng
        self.disk_id = disk_id
        #: Structured tracer; the shared disabled instance by default,
        #: so an untraced sweep pays one branch per round.
        self.tracer = tracer
        #: Optional :class:`repro.server.faults.FaultInjector` (or any
        #: object with ``available``/``service_scale``/``round_stall``):
        #: consulted before every request, so a disk that dies mid-sweep
        #: abandons the rest of its batch at the fault instant.
        self.faults = faults
        self._on_outcome = on_outcome
        self._inbox: Store = Store(engine)
        self._round_parity = 0
        self.process = engine.process(self._run())

    # ------------------------------------------------------------------
    def submit(self, round_index: int, deadline: float,
               requests: Sequence[DiskRequest]) -> None:
        """Hand the scheduler a round's batch (called at the boundary)."""
        self._inbox.put((round_index, deadline, tuple(requests)))

    def shutdown(self) -> None:
        """Stop the scheduler process after the current batch."""
        self._inbox.put(None)

    # ------------------------------------------------------------------
    def _run(self):
        while True:
            item = yield self._inbox.get()
            if item is None:
                return
            round_index, deadline, requests = item
            ascending = (self._round_parity % 2) == 0
            self._round_parity += 1
            ordered = order_scan(requests, ascending=ascending)
            if self.tracer.enabled:
                self.tracer.emit("sweep_start", t=self.engine.now,
                                 round=round_index, disk=self.disk_id,
                                 batch=len(ordered),
                                 ascending=ascending,
                                 deadline=deadline)

            on_time: list[int] = []
            completions: list[float] = []
            glitched: list[int] = []
            seek_total = 0.0
            faults = self.faults
            if faults is not None:
                # A recalibration storm seizes the arm before the sweep,
                # delaying every request of the round (the analytic
                # disturbance term of repro.core.faults).
                stall = faults.round_stall(self.disk_id, round_index,
                                           self.engine.now)
                if stall > 0.0:
                    yield self.engine.timeout(stall)
            # Per-round vectorised precompute (repro.disk.sweepkernel):
            # every deterministic cost of the sweep -- seek distances
            # through the seek curve, zone rates, transfer times -- in
            # one batched evaluation.  Only the rotational latency stays
            # a lazy scalar draw inside serve_planned, because abandoned
            # requests must not consume the RNG.
            seeks, transfers = self.drive.plan_round(ordered)
            for position, request in enumerate(ordered):
                if self.engine.now >= deadline or (
                        faults is not None
                        and not faults.available(self.disk_id)):
                    # Round over -- or the disk died mid-sweep: the rest
                    # of the batch is abandoned.
                    glitched.extend(
                        r.stream_id for r in ordered[position:])
                    break
                breakdown = self.drive.serve_planned(
                    request, float(seeks[position]),
                    float(transfers[position]), self.rng)
                seek_total += breakdown.seek
                scale = (faults.service_scale(self.disk_id)
                         if faults is not None else 1.0)
                yield self.engine.timeout(breakdown.total * scale)
                if self.engine.now > deadline:
                    glitched.append(request.stream_id)
                else:
                    on_time.append(request.stream_id)
                    completions.append(self.engine.now)

            outcome = RoundOutcome(
                round_index=round_index,
                served_on_time=tuple(on_time),
                glitched=tuple(glitched),
                finish_time=self.engine.now,
                lumped_seek_time=seek_total,
                completion_times=tuple(completions),
            )
            self._on_outcome(self.disk_id, outcome)
