"""Round-based multimedia server (§2) and its validation simulators.

- :mod:`repro.server.layout` -- coarse-grained round-robin striping and
  random in-disk placement (§2.1, §3.3 independence condition).
- :mod:`repro.server.streams` -- stream state, client buffers, glitch
  accounting.
- :mod:`repro.server.admission` -- run-time admission control backed by
  the precomputed ``N_max`` lookup table (§5).
- :mod:`repro.server.scheduler` / :mod:`repro.server.server` -- the
  event-driven server: one SCAN sweep per disk per round on the
  :mod:`repro.sim` kernel.
- :mod:`repro.server.simulation` -- the vectorised Monte-Carlo path used
  for the large validation sweeps (Figure 1, Table 2).
- :mod:`repro.server.faults` -- runtime fault injection, RAID-1 mirror
  failover and degraded-mode load shedding (see ``docs/ROBUSTNESS.md``).
"""

from repro.server.layout import StripedLayout, FragmentLocation
from repro.server.streams import Stream, StreamStats, ClientBuffer
from repro.server.admission import (
    AdmissionController,
    ShardedAdmissionController,
    default_shard_count,
)
from repro.server.faults import (
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    ScenarioResult,
    SheddingPolicy,
    disk_fail,
    disk_recover,
    recalibration_storm,
    run_failover_scenario,
    slow_disk,
)
from repro.server.server import MediaServer, ServerReport
from repro.server.simulation import (
    RoundBatch,
    simulate_rounds,
    estimate_p_late,
    simulate_stream_glitches,
    estimate_p_error,
    simulate_failover_rounds,
    PLateEstimate,
    PErrorEstimate,
    FailoverEstimate,
)

__all__ = [
    "StripedLayout",
    "FragmentLocation",
    "Stream",
    "StreamStats",
    "ClientBuffer",
    "AdmissionController",
    "ShardedAdmissionController",
    "default_shard_count",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "SheddingPolicy",
    "ScenarioResult",
    "disk_fail",
    "disk_recover",
    "slow_disk",
    "recalibration_storm",
    "run_failover_scenario",
    "MediaServer",
    "ServerReport",
    "RoundBatch",
    "simulate_rounds",
    "estimate_p_late",
    "simulate_stream_glitches",
    "estimate_p_error",
    "simulate_failover_rounds",
    "PLateEstimate",
    "PErrorEstimate",
    "FailoverEstimate",
]
