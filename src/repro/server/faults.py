"""Runtime fault injection and graceful degradation.

The analytic side of the repo can already *price* failures --
:mod:`repro.core.faults` folds thermal recalibration into the MGF and
:func:`repro.core.farm.degraded_mode_n_max` computes the doubled-batch
RAID-1 bound -- but until now the discrete-event server had no way to
actually lose a disk mid-run.  This module closes that gap:

- a **schedule DSL** (:func:`disk_fail`, :func:`disk_recover`,
  :func:`slow_disk`, :func:`recalibration_storm`) assembling a
  :class:`FaultSchedule`, loadable from TOML for CLI/CI use;
- a deterministic, seedable :class:`FaultInjector` that the
  :class:`~repro.server.server.MediaServer` and its per-disk schedulers
  query for device state -- every answer is a pure function of
  ``(schedule, seed, disk, round, now)``, so repeated runs produce
  identical :class:`~repro.server.server.ServerReport` objects;
- a **load-shedding policy** (:class:`SheddingPolicy`) that re-plans at
  every round boundary: while a disk is down, the newest streams are
  paused (or dropped) until the per-disk batch meets the degraded-mode
  bound, and resumed once capacity returns;
- an end-to-end **scenario runner** (:func:`run_failover_scenario`)
  shared by the CLI (``repro simulate --faults``), bench A21 and the
  test suite, which validates that shedding keeps every surviving
  stream's simulated glitch rate within the analytic degraded-mode
  Chernoff bound.

Determinism contract: nothing here reads wall-clock time or global RNG
state.  Recalibration-storm stalls are drawn from
``default_rng([seed, storm, disk, round])`` so they depend only on the
coordinates, never on query order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.farm import degraded_mode_n_max, mirror_of, shed_target
from repro.errors import ConfigurationError
from repro.obs.trace import NULL_TRACER

__all__ = [
    "FaultEvent",
    "disk_fail",
    "disk_recover",
    "slow_disk",
    "slow_disk_creep",
    "recalibration_storm",
    "FaultSchedule",
    "FaultInjector",
    "SheddingPolicy",
    "ScenarioResult",
    "run_failover_scenario",
]

_KINDS = ("disk_fail", "disk_recover", "slow_disk", "recalibration_storm")

#: Default recalibration stall length (seconds) -- the "tens of
#: milliseconds" of the paper's hardware generation.
DEFAULT_STALL = 0.05


@dataclass(frozen=True)
class FaultEvent:
    """One entry of a fault schedule.

    ``t`` is absolute simulation time in seconds.  ``disk`` is the
    target drive; ``None`` targets the whole farm (storms only).
    """

    kind: str
    t: float
    disk: int | None = None
    factor: float = 1.0
    prob: float = 0.0
    duration: float = 0.0
    stall: float = DEFAULT_STALL

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; known: {_KINDS}")
        if not (self.t >= 0.0 and np.isfinite(self.t)):
            raise ConfigurationError(
                f"fault time must be >= 0, got {self.t!r}")
        if self.kind in ("disk_fail", "disk_recover", "slow_disk"):
            if self.disk is None or self.disk < 0:
                raise ConfigurationError(
                    f"{self.kind} needs a disk index >= 0, "
                    f"got {self.disk!r}")
        if self.kind == "slow_disk" and not (self.factor > 0.0
                                             and np.isfinite(self.factor)):
            raise ConfigurationError(
                f"slow_disk factor must be positive, got {self.factor!r}")
        if self.kind == "recalibration_storm":
            if not (0.0 <= self.prob < 1.0):
                raise ConfigurationError(
                    f"storm prob must be in [0, 1), got {self.prob!r}")
            if self.duration <= 0.0:
                raise ConfigurationError(
                    f"storm duration must be positive, "
                    f"got {self.duration!r}")
            if self.stall <= 0.0:
                raise ConfigurationError(
                    f"storm stall must be positive, got {self.stall!r}")

    def describe(self) -> str:
        """Human-readable one-liner for event logs."""
        where = "farm" if self.disk is None else f"disk {self.disk}"
        if self.kind == "disk_fail":
            return f"t={self.t:g}: {where} failed"
        if self.kind == "disk_recover":
            return f"t={self.t:g}: {where} recovered"
        if self.kind == "slow_disk":
            return f"t={self.t:g}: {where} service x{self.factor:g}"
        return (f"t={self.t:g}: recalibration storm on {where} "
                f"(p={self.prob:g}, {self.duration:g}s, "
                f"stall {self.stall:g}s)")


def disk_fail(t: float, disk: int = 0) -> FaultEvent:
    """Disk ``disk`` stops serving at time ``t`` (seconds)."""
    return FaultEvent("disk_fail", t, disk=disk)


def disk_recover(t: float, disk: int = 0) -> FaultEvent:
    """Disk ``disk`` returns to service at time ``t``."""
    return FaultEvent("disk_recover", t, disk=disk)


def slow_disk(t: float, factor: float, disk: int = 0) -> FaultEvent:
    """From time ``t``, every service on ``disk`` takes ``factor``
    times as long (``factor=1`` restores full speed)."""
    return FaultEvent("slow_disk", t, disk=disk, factor=factor)


def recalibration_storm(t: float, prob: float, duration: float,
                        stall: float = DEFAULT_STALL,
                        disk: int | None = None) -> FaultEvent:
    """During ``[t, t + duration)`` each round on the targeted disk(s)
    suffers a ``stall``-second thermal-recalibration seizure with
    probability ``prob`` (cf. :mod:`repro.core.faults`)."""
    return FaultEvent("recalibration_storm", t, disk=disk, prob=prob,
                      duration=duration, stall=stall)


def slow_disk_creep(t_from: float, t_to: float, factor_to: float,
                    steps: int = 8, disk: int = 0,
                    factor_from: float = 1.0) -> list[FaultEvent]:
    """Drift schedule: service times on ``disk`` creep from
    ``factor_from`` to ``factor_to`` in ``steps`` equal multiplicative
    increments over ``[t_from, t_to]``.

    This is the canonical adversary of the adaptive controller
    (``repro serve --adaptive``): each step is an ordinary
    :func:`slow_disk` event, so the creep replays through every
    existing transport (``FaultFeed``, ``--fault-schedule`` TOML, the
    scenario compiler) -- no new event kind, just a geometric ramp of
    the one that exists.  The factor interpolation is geometric, not
    linear, because service-time drift compounds multiplicatively and
    a geometric ramp stresses every scale decade equally.
    """
    if steps < 1:
        raise ConfigurationError(f"steps must be >= 1, got {steps!r}")
    if not (t_to >= t_from >= 0.0):
        raise ConfigurationError(
            f"need 0 <= t_from <= t_to, got {t_from!r}/{t_to!r}")
    if not (factor_from > 0.0 and factor_to > 0.0):
        raise ConfigurationError(
            f"creep factors must be positive, got "
            f"{factor_from!r}/{factor_to!r}")
    events = []
    for step in range(1, steps + 1):
        fraction = step / steps
        t = t_from + (t_to - t_from) * fraction
        factor = factor_from * (factor_to / factor_from) ** fraction
        events.append(slow_disk(t, factor, disk=disk))
    return events


class FaultSchedule:
    """An ordered, validated collection of :class:`FaultEvent`."""

    def __init__(self, events=()) -> None:
        self.events: tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda e: (e.t, _KINDS.index(e.kind))))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def validate_disks(self, disks: int) -> None:
        """Check every targeted disk exists on a ``disks``-drive farm."""
        for event in self.events:
            if event.disk is not None and event.disk >= disks:
                raise ConfigurationError(
                    f"fault event targets disk {event.disk} but the "
                    f"farm has {disks} disk(s): {event.describe()}")

    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: dict) -> "FaultSchedule":
        """Build a schedule from a parsed TOML/JSON mapping.

        Expected shape: ``{"events": [{"kind": ..., "t": ..., ...}]}``.
        """
        raw = data.get("events")
        if not isinstance(raw, list) or not raw:
            raise ConfigurationError(
                "fault schedule needs a non-empty [[events]] list")
        events = []
        for index, entry in enumerate(raw):
            if not isinstance(entry, dict):
                raise ConfigurationError(
                    f"events[{index}] must be a table, got {entry!r}")
            entry = dict(entry)
            kind = entry.pop("kind", None)
            t = entry.pop("t", None)
            if kind is None or t is None:
                raise ConfigurationError(
                    f"events[{index}] needs 'kind' and 't' keys")
            known = {"disk", "factor", "prob", "duration", "stall"}
            unknown = set(entry) - known
            if unknown:
                raise ConfigurationError(
                    f"events[{index}] has unknown keys {sorted(unknown)}")
            events.append(FaultEvent(str(kind), float(t), **entry))
        return cls(events)

    @classmethod
    def from_toml(cls, path: str | Path) -> "FaultSchedule":
        """Load a schedule from a TOML file (see
        ``examples/single_disk_failure.toml``)."""
        import tomllib

        raw = Path(path).read_bytes()
        try:
            data = tomllib.loads(raw.decode("utf-8"))
        except (tomllib.TOMLDecodeError, UnicodeDecodeError) as exc:
            raise ConfigurationError(
                f"cannot parse fault schedule {path}: {exc}") from exc
        return cls.from_dict(data)


class FaultInjector:
    """Deterministic runtime device-state oracle for a fault schedule.

    The server binds the injector to its engine at construction
    (:meth:`bind`); each scheduled event then fires as a calendar
    callback at its exact simulation time, appending to :attr:`log` and
    flipping the per-disk state that :meth:`available`,
    :meth:`service_scale` and :meth:`round_stall` report.  All queries
    are pure in ``(schedule, seed, arguments)``, so two runs of the same
    scenario -- or the same injector re-bound to a fresh server --
    produce identical behaviour.
    """

    def __init__(self, schedule, seed: int = 0) -> None:
        if not isinstance(schedule, FaultSchedule):
            schedule = FaultSchedule(schedule)
        self.schedule = schedule
        self.seed = int(seed)
        #: ``(t, description)`` entries, appended as events fire.
        self.log: list[tuple[float, str]] = []
        #: Structured tracer (the server installs its own before bind);
        #: every fired event is mirrored as a ``fault`` trace record.
        self.tracer = NULL_TRACER
        self._failed: set[int] = set()
        self._scale: dict[int, float] = {}
        # Storms are static windows; index them once for stall draws.
        self._storms = [(i, e) for i, e in enumerate(schedule)
                        if e.kind == "recalibration_storm"]
        self._bound = False

    # ------------------------------------------------------------------
    def bind(self, engine, disks: int) -> None:
        """Register every scheduled event on the engine calendar.

        One injector drives one server run; binding twice is a
        configuration error (it would double-apply the schedule).
        """
        if self._bound:
            raise ConfigurationError(
                "FaultInjector is already bound to a server")
        self.schedule.validate_disks(disks)
        self._bound = True
        for event in self.schedule:
            engine.at(event.t,
                      lambda event=event: self._apply(event, event.t))

    def _apply(self, event: FaultEvent, now: float) -> None:
        if event.kind == "disk_fail":
            self._failed.add(event.disk)
        elif event.kind == "disk_recover":
            self._failed.discard(event.disk)
        elif event.kind == "slow_disk":
            self._scale[event.disk] = event.factor
        # Storm windows need no state: they are answered from the
        # schedule itself in round_stall().
        self.log.append((now, event.describe()))
        if self.tracer.enabled:
            self.tracer.emit("fault", t=now, desc=event.describe(),
                             fault_kind=event.kind, disk=event.disk)

    # ------------------------------------------------------------------
    # device-state queries (used by MediaServer and DiskScheduler)
    # ------------------------------------------------------------------
    def failed_disks(self) -> frozenset[int]:
        """Disks currently out of service."""
        return frozenset(self._failed)

    def available(self, disk: int) -> bool:
        """Whether ``disk`` is serving right now."""
        return disk not in self._failed

    def service_scale(self, disk: int) -> float:
        """Current service-time multiplier of ``disk``."""
        return self._scale.get(disk, 1.0)

    def round_stall(self, disk: int, round_index: int,
                    now: float) -> float:
        """Recalibration stall charged to ``disk`` at the start of
        ``round_index``, given the sweep begins at time ``now``.

        Each active storm contributes its stall with probability
        ``prob``; draws come from a counter-based RNG keyed by
        ``(seed, storm, disk, round)``, so the answer never depends on
        how many times -- or in what order -- state was queried.
        """
        total = 0.0
        for storm_index, storm in self._storms:
            if storm.disk is not None and storm.disk != disk:
                continue
            if not (storm.t <= now < storm.t + storm.duration):
                continue
            draw = np.random.default_rng(
                [self.seed, storm_index, disk, round_index]).random()
            if draw < storm.prob:
                total += storm.stall
        return total


@dataclass(frozen=True)
class SheddingPolicy:
    """Load-shedding/downgrade policy for degraded-mode operation.

    While any disk is failed, the server pauses (``mode="pause"``) or
    closes (``mode="drop"``) its newest streams until at most
    ``disks * degraded_n_max`` are serving -- the level at which the
    survivor's doubled batch still meets the round deadline with
    probability ``1 - delta`` (:func:`repro.core.farm.shed_target`).
    Paused streams resume, oldest first, as soon as capacity returns.
    """

    degraded_n_max: int
    mode: str = "pause"

    def __post_init__(self) -> None:
        if self.degraded_n_max < 0:
            raise ConfigurationError(
                f"degraded_n_max must be >= 0, "
                f"got {self.degraded_n_max!r}")
        if self.mode not in ("pause", "drop"):
            raise ConfigurationError(
                f"mode must be 'pause' or 'drop', got {self.mode!r}")

    @classmethod
    def from_model(cls, spec, size_dist, t: float, delta: float,
                   mode: str = "pause", multizone: bool = True
                   ) -> "SheddingPolicy":
        """Derive the degraded limit from the analytic model
        (:func:`repro.core.farm.degraded_mode_n_max`)."""
        _healthy, failure_proof = degraded_mode_n_max(
            spec, size_dist, t, delta, multizone=multizone)
        return cls(degraded_n_max=failure_proof, mode=mode)

    def target(self, disks: int) -> int:
        """Farm-wide serving-stream target while degraded."""
        return shed_target(disks, self.degraded_n_max)


# ----------------------------------------------------------------------
# End-to-end failover scenario (CLI ``simulate --faults``, bench A21,
# tests)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ScenarioResult:
    """Outcome of one :func:`run_failover_scenario` run."""

    report: object                  # ServerReport
    healthy_n_max: int              # per-disk healthy limit
    degraded_n_max: int             # per-disk failure-proof limit
    delta: float                    # round-lateness tolerance
    streams_opened: int
    survivors: int                  # streams never paused/dropped
    survivor_glitch_rates: tuple[float, ...]
    aggregate_glitch_rate: float    # survivor glitches / requests
    max_glitch_rate: float
    shedding: bool

    @property
    def within_bound(self) -> bool:
        """Whether every surviving stream's simulated glitch rate met
        the analytic degraded-mode tolerance ``delta``."""
        return self.max_glitch_rate <= self.delta


def run_failover_scenario(spec, size_dist, *, specs=None, disks: int = 2,
                          t: float = 1.0, delta: float = 0.01,
                          rounds: int = 300, n_per_disk: int | None = None,
                          fail_disk: int = 0, fail_round: int = 40,
                          recover_round: int | None = None,
                          shedding: bool = True, shed_mode: str = "pause",
                          schedule: FaultSchedule | None = None,
                          seed: int = 0, tracer=NULL_TRACER,
                          metrics=None) -> ScenarioResult:
    """Drive a mirrored farm through a single-disk failure.

    Opens ``n_per_disk * disks`` streams (default: the healthy analytic
    limit), fails ``fail_disk`` at the ``fail_round`` boundary (or runs
    an explicit ``schedule`` instead), and reports per-stream glitch
    rates of the *surviving* (never shed) streams against the
    degraded-mode tolerance ``delta``.  With ``shedding=False`` the
    survivor of the mirrored pair absorbs the full doubled batch -- the
    configuration the paper's guarantee cannot cover, which the bench
    shows violating the bound.

    ``specs`` optionally gives a heterogeneous layout, one
    :class:`~repro.disk.presets.DiskSpec` per disk in mirror-pair order
    (it must match ``disks``); the analytic limits then bind at the
    weakest disk, the farm-admission rule of :mod:`repro.core.farm`.
    The homogeneous ``spec`` argument is ignored when ``specs`` is
    given.

    An enabled ``tracer`` records the whole run and stamps the header
    with the analytic per-sweep bounds the phases are judged against
    (``bound_healthy`` at the opened per-disk load, ``bound_degraded``
    at the shed doubled batch), making the trace self-contained for
    ``repro observe``.  ``metrics`` is an optional
    :class:`repro.obs.metrics.MetricsRegistry` handed to the server.
    """
    # Imported here: server.server imports this module's injector types.
    from repro.server.admission import AdmissionController
    from repro.server.server import MediaServer

    if disks < 2 or disks % 2:
        raise ConfigurationError(
            f"failover scenarios need an even farm of >= 2 disks, "
            f"got {disks!r}")
    if rounds < 2:
        raise ConfigurationError(f"rounds must be >= 2, got {rounds!r}")
    if specs is not None:
        specs = list(specs)
        if len(specs) != disks:
            raise ConfigurationError(
                f"specs must list one DiskSpec per disk: got "
                f"{len(specs)} for a farm of {disks}")
    else:
        specs = [spec] * disks
    # Weakest-disk limits: on a striped farm every disk serves the same
    # batch, so admission -- healthy and degraded -- binds at the
    # slowest drive.
    limits = [degraded_mode_n_max(s, size_dist, t, delta) for s in specs]
    healthy = min(limit[0] for limit in limits)
    failure_proof = min(limit[1] for limit in limits)
    if n_per_disk is None:
        n_per_disk = healthy
    if n_per_disk < 1:
        raise ConfigurationError(
            f"n_per_disk must be >= 1, got {n_per_disk!r}")
    if schedule is None:
        if not (0 < fail_round < rounds):
            raise ConfigurationError(
                f"fail_round must be in (0, {rounds}), got {fail_round!r}")
        events = [disk_fail(fail_round * t, fail_disk)]
        if recover_round is not None:
            if not (fail_round < recover_round):
                raise ConfigurationError(
                    "recover_round must come after fail_round")
            events.append(disk_recover(recover_round * t, fail_disk))
        schedule = FaultSchedule(events)

    injector = FaultInjector(schedule, seed=seed)
    policy = (SheddingPolicy(failure_proof, mode=shed_mode)
              if shedding else None)
    admission = AdmissionController(n_per_disk, disks=disks)
    if tracer.enabled:
        # Stamp the analytic per-sweep bounds into the header *before*
        # any other record (validation requires run_start first): the
        # healthy phase is judged at the opened per-disk load, the
        # degraded phase at the shed doubled batch on the survivor.
        from repro.core import RoundServiceTimeModel

        models = [RoundServiceTimeModel.for_disk(s, size_dist)
                  for s in specs]
        degraded_bound = (max(float(m.b_late(2 * failure_proof, t))
                              for m in models)
                          if failure_proof > 0 else None)
        tracer.start_run(
            seed=seed, mode="faults", disks=disks, t=t, rounds=rounds,
            n_per_disk=n_per_disk, shedding=shedding,
            shed_mode=shed_mode if shedding else None,
            healthy_n_max=healthy, degraded_n_max=failure_proof,
            delta=delta,
            bound_healthy=max(float(m.b_late(n_per_disk, t))
                              for m in models),
            bound_degraded=degraded_bound)
    server = MediaServer(specs, t, admission=admission,
                         seed=seed, fault_injector=injector,
                         shedding=policy, mirrored=True,
                         tracer=tracer, metrics=metrics)

    # One object per stream, spanning the whole run, sizes drawn from
    # the scenario's own substream so the layout RNG stays untouched.
    size_rng = np.random.default_rng(
        np.random.SeedSequence([seed, 0xFA017]))
    total = n_per_disk * disks
    streams = []
    for index in range(total):
        sizes = np.asarray(size_dist.sample(size_rng, rounds), dtype=float)
        name = f"object-{index}"
        server.store_object(name, sizes)
        streams.append(server.open_stream(name))
    report = server.run_rounds(rounds)
    if tracer.enabled:
        tracer.end_run()

    survivors = [s for s in streams
                 if s.stats.pauses == 0 and not s.stats.shed
                 and s.stats.requested > 0]
    rates = tuple(s.stats.glitch_rate() for s in survivors)
    glitches = sum(s.stats.glitches for s in survivors)
    requested = sum(s.stats.requested for s in survivors)
    return ScenarioResult(
        report=report,
        healthy_n_max=healthy,
        degraded_n_max=failure_proof,
        delta=delta,
        streams_opened=total,
        survivors=len(survivors),
        survivor_glitch_rates=rates,
        aggregate_glitch_rate=glitches / requested if requested else 0.0,
        max_glitch_rate=max(rates) if rates else 0.0,
        shedding=shedding,
    )
