"""The multimedia server facade (§2, §5).

:class:`MediaServer` ties the pieces together: a disk farm with striped
layout, round-based SCAN scheduling on the event kernel, admission
control against the analytic ``N_max``, and per-stream glitch
accounting.  It is the "prototype server" counterpart of the paper's §5
-- small enough to trace microscopically, and statistically equivalent
to the vectorised validation path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.disk.drive import DiskDrive
from repro.disk.presets import DiskSpec
from repro.disk.request import DiskRequest
from repro.errors import ConfigurationError
from repro.server.admission import AdmissionController
from repro.server.layout import StripedLayout
from repro.server.scheduler import DiskScheduler, RoundOutcome
from repro.server.streams import Stream
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry

__all__ = ["MediaServer", "ServerReport"]


@dataclass
class ServerReport:
    """Summary of one server run."""

    rounds: int = 0
    requests: int = 0
    physical_requests: int = 0
    delivered: int = 0
    glitches: int = 0
    late_rounds: int = 0
    per_disk_late_rounds: dict[int, int] = field(default_factory=dict)

    @property
    def sharing_factor(self) -> float:
        """Physical fetches per logical request (multicast saves the
        difference)."""
        if self.requests == 0:
            return 1.0
        return self.physical_requests / self.requests

    @property
    def glitch_rate(self) -> float:
        """Overall fraction of requests that missed their deadline."""
        if self.requests == 0:
            return 0.0
        return self.glitches / self.requests

    @property
    def p_late(self) -> float:
        """Fraction of (disk, round) pairs that overran."""
        if self.rounds == 0:
            return 0.0
        disks = max(len(self.per_disk_late_rounds), 1)
        return self.late_rounds / (self.rounds * disks)


class MediaServer:
    """Round-based continuous-media server over a striped disk farm.

    Parameters
    ----------
    specs:
        One :class:`DiskSpec` per disk.
    round_length:
        The scheduling round ``t`` in seconds (= fragment display time).
    admission:
        The admission controller; ``None`` disables admission control
        (useful for deliberately overloading the server in experiments).
    seed:
        Root seed for all randomness (placement, latencies).
    """

    def __init__(self, specs: list[DiskSpec], round_length: float,
                 admission: AdmissionController | None = None,
                 seed: int = 0) -> None:
        if not specs:
            raise ConfigurationError("need at least one disk")
        if round_length <= 0:
            raise ConfigurationError(
                f"round_length must be positive, got {round_length!r}")
        if admission is not None and admission.disks != len(specs):
            raise ConfigurationError(
                f"admission controller covers {admission.disks} disks "
                f"but the farm has {len(specs)}")
        self.specs = list(specs)
        self.round_length = float(round_length)
        self.admission = admission
        self.rng = RngRegistry(seed)
        self.engine = Engine()
        self.layout = StripedLayout(self.specs,
                                    self.rng.stream("placement"))
        self.streams: dict[int, Stream] = {}
        self.report = ServerReport(
            per_disk_late_rounds={d: 0 for d in range(len(specs))})
        self._next_stream_id = 0
        self._round_index = 0
        # Per-disk load balance: with stride-1 round-robin striping, a
        # stream's disk in round r is (c + r) mod D for a constant
        # "phase" c, so the per-disk batch size equals the number of
        # streams in each phase class.  We track class populations and
        # stagger stream starts to keep them level.
        self._phase_counts = [0] * len(self.specs)
        self._stream_phase: dict[int, int] = {}
        self._startup_delays: list[int] = []
        # Multicast state: (round, disk, representative stream) ->
        # all streams waiting for that fetch.
        self._multicast: dict[tuple[int, int, int], list[int]] = {}
        self._schedulers = [
            DiskScheduler(self.engine, DiskDrive(spec.geometry,
                                                 spec.seek_curve),
                          self.rng.stream(f"disk-{d}"),
                          self._handle_outcome, disk_id=d)
            for d, spec in enumerate(self.specs)
        ]

    @property
    def disks(self) -> int:
        """Number of disks in the farm."""
        return len(self.specs)

    # ------------------------------------------------------------------
    # content and sessions
    # ------------------------------------------------------------------
    def store_object(self, name: str, fragment_sizes) -> None:
        """Ingest a continuous object (sizes in bytes, one per round of
        display time)."""
        self.layout.store(name, fragment_sizes)

    def open_stream(self, object_name: str, buffer_capacity: int = 2,
                    balance_start: bool = True) -> Stream:
        """Admit and start a stream on a stored object.

        Raises :class:`~repro.errors.AdmissionError` when the admission
        controller is present and the server is full.

        With ``balance_start`` (the default) the start round is chosen
        within the next ``D`` rounds so the stream lands in the
        least-populated disk-phase class, keeping every disk's per-round
        batch at ``ceil(active/D)`` -- the uniform-load assumption the
        admission model relies on (§2.3's "startup delay of up to one
        round", generalised to up to ``D`` rounds on a ``D``-disk farm).
        ``balance_start=False`` starts at the current round regardless
        (useful for stress experiments).
        """
        length = self.layout.object_length(object_name)
        if self.admission is not None:
            self.admission.admit()
        first_disk = self.layout.locate(object_name, 0).disk
        d = self.disks
        if balance_start and d > 1:
            # Phase class of a start at round s: (first_disk - s) mod D.
            best_delay = min(
                range(d),
                key=lambda delay: self._phase_counts[
                    (first_disk - (self._round_index + delay)) % d])
            start_round = self._round_index + best_delay
        else:
            start_round = self._round_index
        phase = (first_disk - start_round) % d
        stream = Stream(self._next_stream_id, object_name, length,
                        start_round=start_round,
                        buffer_capacity=buffer_capacity)
        #: Rounds the stream waits before its first fetch (the §2.3
        #: startup delay, stretched to <= D rounds by balancing).
        stream.start_delay = start_round - self._round_index
        self._startup_delays.append(stream.start_delay)
        self.streams[stream.stream_id] = stream
        self._stream_phase[stream.stream_id] = phase
        self._phase_counts[phase] += 1
        self._next_stream_id += 1
        return stream

    def close_stream(self, stream: Stream) -> None:
        """Tear down a stream (releases its admission slot)."""
        if stream.stream_id not in self.streams:
            raise ConfigurationError(
                f"stream {stream.stream_id} is not active")
        del self.streams[stream.stream_id]
        phase = self._stream_phase.pop(stream.stream_id)
        self._phase_counts[phase] -= 1
        if self.admission is not None:
            self.admission.release()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run_rounds(self, rounds: int) -> ServerReport:
        """Run ``rounds`` scheduling rounds and return the report.

        Streams that finish their object mid-run are closed
        automatically.
        """
        if rounds < 1:
            raise ConfigurationError(f"rounds must be >= 1, got {rounds!r}")
        for _ in range(rounds):
            self._dispatch_round()
            self.engine.run(until=(self._round_index + 1)
                            * self.round_length)
            self._round_index += 1
            self.report.rounds += 1
            self._reap_finished()
        return self.report

    def _dispatch_round(self) -> None:
        deadline = (self._round_index + 1) * self.round_length
        batches: dict[int, list[DiskRequest]] = {
            d: [] for d in range(len(self.specs))}
        # Identical fetches (same object, same fragment, same round) are
        # served once and multicast to every requesting stream -- a
        # server would never read the same block twice in one sweep.
        groups: dict[tuple[str, int], list[int]] = {}
        for stream in self.streams.values():
            fragment = stream.fragment_for_round(self._round_index)
            if fragment is None:
                continue
            self.report.requests += 1
            groups.setdefault((stream.object_name, fragment),
                              []).append(stream.stream_id)
        for (object_name, fragment), members in groups.items():
            location = self.layout.locate(object_name, fragment)
            representative = members[0]
            self.report.physical_requests += 1
            batches[location.disk].append(DiskRequest(
                stream_id=representative, size=location.size,
                cylinder=location.cylinder))
            if len(members) > 1:
                self._multicast[(self._round_index, location.disk,
                                 representative)] = members
        for disk, requests in batches.items():
            if requests:
                self._schedulers[disk].submit(self._round_index, deadline,
                                              requests)

    def _expand_multicast(self, round_index: int, disk: int,
                          representative: int) -> list[int]:
        members = self._multicast.pop((round_index, disk, representative),
                                      None)
        return members if members is not None else [representative]

    def _handle_outcome(self, disk: int, outcome: RoundOutcome) -> None:
        for rep in outcome.served_on_time:
            for stream_id in self._expand_multicast(outcome.round_index,
                                                    disk, rep):
                stream = self.streams.get(stream_id)
                if stream is not None:
                    stream.record_delivery(outcome.round_index)
                    self.report.delivered += 1
        if outcome.glitched:
            self.report.late_rounds += 1
            self.report.per_disk_late_rounds[disk] += 1
        for rep in outcome.glitched:
            for stream_id in self._expand_multicast(outcome.round_index,
                                                    disk, rep):
                stream = self.streams.get(stream_id)
                if stream is not None:
                    stream.record_glitch(outcome.round_index)
                self.report.glitches += 1

    def _reap_finished(self) -> None:
        finished = [s for s in self.streams.values()
                    if s.is_finished(self._round_index)]
        for stream in finished:
            self.close_stream(stream)

    # ------------------------------------------------------------------
    def active_streams(self) -> int:
        """Streams currently open."""
        return len(self.streams)

    def startup_delays(self) -> list[int]:
        """Startup delays (in rounds) of every stream admitted so far.

        With ``balance_start`` each delay is below the disk count; the
        worst wall-clock wait is ``max(startup_delays()) *
        round_length``.
        """
        return list(self._startup_delays)

    def __repr__(self) -> str:
        return (f"MediaServer(disks={len(self.specs)}, "
                f"round={self.round_length}s, "
                f"streams={len(self.streams)}, "
                f"round_index={self._round_index})")
