"""The multimedia server facade (§2, §5).

:class:`MediaServer` ties the pieces together: a disk farm with striped
layout, round-based SCAN scheduling on the event kernel, admission
control against the analytic ``N_max``, and per-stream glitch
accounting.  It is the "prototype server" counterpart of the paper's §5
-- small enough to trace microscopically, and statistically equivalent
to the vectorised validation path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.disk.drive import DiskDrive
from repro.disk.presets import DiskSpec
from repro.disk.request import DiskRequest
from repro.errors import ConfigurationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer
from repro.server.admission import AdmissionController
from repro.server.layout import StripedLayout
from repro.server.scheduler import DiskScheduler, RoundOutcome
from repro.server.streams import Stream
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry

__all__ = ["MediaServer", "ServerReport"]


@dataclass
class ServerReport:
    """Summary of one server run.

    The robustness fields (``failovers`` onward) stay at their zero
    defaults unless the server runs with a fault injector or shedding
    policy.  Everything is plain ints/dicts/lists, so two reports from
    identical runs compare equal -- the determinism contract of
    :mod:`repro.server.faults` is asserted with ``report_a == report_b``.
    """

    rounds: int = 0
    requests: int = 0
    physical_requests: int = 0
    delivered: int = 0
    glitches: int = 0
    late_rounds: int = 0
    per_disk_late_rounds: dict[int, int] = field(default_factory=dict)
    #: Requests served by the mirror because their home disk was down.
    failovers: int = 0
    #: Logical requests lost outright (home disk down, no live mirror).
    dropped_requests: int = 0
    #: Streams paused or dropped by the load-shedding policy.
    shed_streams: int = 0
    #: Paused streams resumed after capacity returned.
    resumed_streams: int = 0
    #: Stream-rounds spent paused (display frozen).
    paused_stream_rounds: int = 0
    #: Per-round robustness counters (only rounds with activity).
    glitches_by_round: dict[int, int] = field(default_factory=dict)
    failovers_by_round: dict[int, int] = field(default_factory=dict)
    shed_by_round: dict[int, int] = field(default_factory=dict)
    paused_by_round: dict[int, int] = field(default_factory=dict)
    #: ``(sim time, description)`` fault events applied during the run.
    fault_log: list[tuple[float, str]] = field(default_factory=list)
    #: ``(round, action, stream_id)`` shedding decisions
    #: (action in {"pause", "drop", "resume"}).
    shed_log: list[tuple[int, str, int]] = field(default_factory=list)

    @property
    def sharing_factor(self) -> float:
        """Physical fetches per logical request (multicast saves the
        difference)."""
        if self.requests == 0:
            return 1.0
        return self.physical_requests / self.requests

    @property
    def glitch_rate(self) -> float:
        """Overall fraction of requests that missed their deadline."""
        if self.requests == 0:
            return 0.0
        return self.glitches / self.requests

    @property
    def p_late(self) -> float:
        """Fraction of (disk, round) pairs that overran."""
        if self.rounds == 0:
            return 0.0
        disks = max(len(self.per_disk_late_rounds), 1)
        return self.late_rounds / (self.rounds * disks)


class MediaServer:
    """Round-based continuous-media server over a striped disk farm.

    Parameters
    ----------
    specs:
        One :class:`DiskSpec` per disk.
    round_length:
        The scheduling round ``t`` in seconds (= fragment display time).
    admission:
        The admission controller; ``None`` disables admission control
        (useful for deliberately overloading the server in experiments).
    seed:
        Root seed for all randomness (placement, latencies).
    fault_injector:
        Optional :class:`repro.server.faults.FaultInjector`.  Its
        schedule is bound to this server's engine: events at a round
        boundary ``k * round_length`` take effect before round ``k`` is
        dispatched; events inside a round flip device state mid-sweep
        (the affected scheduler abandons the rest of its batch).
    shedding:
        Optional :class:`repro.server.faults.SheddingPolicy`: while a
        disk is failed, the newest streams are paused (or dropped) at
        round boundaries until the per-disk batch meets the
        degraded-mode bound, and resumed once capacity returns.
    mirrored:
        Lay every fragment out with a RAID-1 replica on its partner
        disk; requests whose home disk is down fail over to the
        replica (the survivor serves the doubled batch).
    tracer:
        Structured :class:`repro.obs.trace.Tracer`.  Defaults to the
        shared disabled instance, so an untraced server pays one
        ``enabled`` check per event (see ``docs/OBSERVABILITY.md``
        for the record catalogue this server emits).
    metrics:
        Optional :class:`repro.obs.metrics.MetricsRegistry`; when
        given, the server maintains ``server_*`` counters, gauges and
        the per-sweep service-time histogram in it.  ``None`` (the
        default) records nothing.
    """

    def __init__(self, specs: list[DiskSpec], round_length: float,
                 admission: AdmissionController | None = None,
                 seed: int = 0, fault_injector=None, shedding=None,
                 mirrored: bool = False, tracer: Tracer = NULL_TRACER,
                 metrics: MetricsRegistry | None = None) -> None:
        if not specs:
            raise ConfigurationError("need at least one disk")
        if round_length <= 0:
            raise ConfigurationError(
                f"round_length must be positive, got {round_length!r}")
        if admission is not None and admission.disks != len(specs):
            raise ConfigurationError(
                f"admission controller covers {admission.disks} disks "
                f"but the farm has {len(specs)}")
        self.specs = list(specs)
        self.round_length = float(round_length)
        self.admission = admission
        self.faults = fault_injector
        self.shedding = shedding
        self.rng = RngRegistry(seed)
        self.engine = Engine()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self._metric_handles = (self._bind_metrics(metrics)
                                if metrics is not None else None)
        # Bind the fault schedule before any scheduler process starts,
        # so state flips scheduled at the same instant as a request
        # completion are applied first (calendar sequence order).
        if self.faults is not None:
            self.faults.tracer = self.tracer
            self.faults.bind(self.engine, len(specs))
        self.layout = StripedLayout(self.specs,
                                    self.rng.stream("placement"),
                                    mirrored=mirrored)
        self.streams: dict[int, Stream] = {}
        self.report = ServerReport(
            per_disk_late_rounds={d: 0 for d in range(len(specs))})
        self._next_stream_id = 0
        self._round_index = 0
        self._stream_first_disk: dict[int, int] = {}
        # Per-disk load balance: with stride-1 round-robin striping, a
        # stream's disk in round r is (c + r) mod D for a constant
        # "phase" c, so the per-disk batch size equals the number of
        # streams in each phase class.  We track class populations and
        # stagger stream starts to keep them level.
        self._phase_counts = [0] * len(self.specs)
        self._stream_phase: dict[int, int] = {}
        self._startup_delays: list[int] = []
        # Multicast state: (round, disk, representative stream) ->
        # all streams waiting for that fetch.
        self._multicast: dict[tuple[int, int, int], list[int]] = {}
        self._schedulers = [
            DiskScheduler(self.engine, DiskDrive(spec.geometry,
                                                 spec.seek_curve),
                          self.rng.stream(f"disk-{d}"),
                          self._handle_outcome, disk_id=d,
                          faults=self.faults, tracer=self.tracer)
            for d, spec in enumerate(self.specs)
        ]

    @staticmethod
    def _bind_metrics(metrics: MetricsRegistry) -> dict:
        """Resolve the server's metric handles once, up front, so the
        per-event cost is an attribute bump rather than a dict walk."""
        return {
            "rounds": metrics.counter("server_rounds_total"),
            "requests": metrics.counter("server_requests_total"),
            "physical": metrics.counter("server_physical_requests_total"),
            "delivered": metrics.counter("server_delivered_total"),
            "glitches": metrics.counter("server_glitches_total"),
            "late": metrics.counter("server_late_disk_rounds_total"),
            "failovers": metrics.counter("server_failovers_total"),
            "dropped": metrics.counter("server_dropped_requests_total"),
            "shed": metrics.counter("server_shed_streams_total"),
            "resumed": metrics.counter("server_resumed_streams_total"),
            "admitted": metrics.counter("server_streams_admitted_total"),
            "active": metrics.gauge("server_active_streams"),
            "engine_events": metrics.gauge("engine_events_processed"),
            "sweep_seconds": metrics.histogram("server_sweep_seconds"),
        }

    @property
    def disks(self) -> int:
        """Number of disks in the farm."""
        return len(self.specs)

    # ------------------------------------------------------------------
    # content and sessions
    # ------------------------------------------------------------------
    def store_object(self, name: str, fragment_sizes) -> None:
        """Ingest a continuous object (sizes in bytes, one per round of
        display time)."""
        self.layout.store(name, fragment_sizes)

    def open_stream(self, object_name: str, buffer_capacity: int = 2,
                    balance_start: bool = True,
                    klass: str = "standard") -> Stream:
        """Admit and start a stream on a stored object.

        Raises :class:`~repro.errors.AdmissionError` when the admission
        controller is present and the server is full.

        With ``balance_start`` (the default) the start round is chosen
        within the next ``D`` rounds so the stream lands in the
        least-populated disk-phase class, keeping every disk's per-round
        batch at ``ceil(active/D)`` -- the uniform-load assumption the
        admission model relies on (§2.3's "startup delay of up to one
        round", generalised to up to ``D`` rounds on a ``D``-disk farm).
        ``balance_start=False`` starts at the current round regardless
        (useful for stress experiments).
        """
        length = self.layout.object_length(object_name)
        if self.admission is not None:
            self.admission.admit()
        first_disk = self.layout.locate(object_name, 0).disk
        d = self.disks
        if balance_start and d > 1:
            # Phase class of a start at round s: (first_disk - s) mod D.
            best_delay = min(
                range(d),
                key=lambda delay: self._phase_counts[
                    (first_disk - (self._round_index + delay)) % d])
            start_round = self._round_index + best_delay
        else:
            start_round = self._round_index
        phase = (first_disk - start_round) % d
        stream = Stream(self._next_stream_id, object_name, length,
                        start_round=start_round,
                        buffer_capacity=buffer_capacity, klass=klass)
        #: Rounds the stream waits before its first fetch (the §2.3
        #: startup delay, stretched to <= D rounds by balancing).
        stream.start_delay = start_round - self._round_index
        self._startup_delays.append(stream.start_delay)
        self.streams[stream.stream_id] = stream
        self._stream_phase[stream.stream_id] = phase
        self._stream_first_disk[stream.stream_id] = first_disk
        self._phase_counts[phase] += 1
        self._next_stream_id += 1
        if self.tracer.enabled:
            self.tracer.emit("stream_admit", stream=stream.stream_id,
                             object=object_name, start_round=start_round,
                             delay=stream.start_delay)
        handles = self._metric_handles
        if handles is not None:
            handles["admitted"].inc()
            handles["active"].set(len(self.streams))
        return stream

    def close_stream(self, stream: Stream) -> None:
        """Tear down a stream (releases its admission slot)."""
        if stream.stream_id not in self.streams:
            raise ConfigurationError(
                f"stream {stream.stream_id} is not active")
        del self.streams[stream.stream_id]
        # Paused streams are not in the phase census.
        phase = self._stream_phase.pop(stream.stream_id, None)
        if phase is not None:
            self._phase_counts[phase] -= 1
        self._stream_first_disk.pop(stream.stream_id, None)
        if self.admission is not None:
            self.admission.release()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run_rounds(self, rounds: int) -> ServerReport:
        """Run ``rounds`` scheduling rounds and return the report.

        Streams that finish their object mid-run are closed
        automatically.
        """
        if rounds < 1:
            raise ConfigurationError(f"rounds must be >= 1, got {rounds!r}")
        handles = self._metric_handles
        for _ in range(rounds):
            self._dispatch_round()
            self.engine.run(until=(self._round_index + 1)
                            * self.round_length)
            self._round_index += 1
            self.report.rounds += 1
            if handles is not None:
                handles["rounds"].inc()
            self._reap_finished()
        if self.faults is not None:
            self.report.fault_log = list(self.faults.log)
        if handles is not None:
            handles["engine_events"].set(self.engine.events_processed)
            handles["active"].set(len(self.streams))
        return self.report

    def _dispatch_round(self) -> None:
        if self.faults is not None and self.shedding is not None:
            self._replan_round()
        deadline = (self._round_index + 1) * self.round_length
        batches: dict[int, list[DiskRequest]] = {
            d: [] for d in range(len(self.specs))}
        # Identical fetches (same object, same fragment, same round) are
        # served once and multicast to every requesting stream -- a
        # server would never read the same block twice in one sweep.
        groups: dict[tuple[str, int], list[int]] = {}
        for stream in self.streams.values():
            fragment = stream.fragment_for_round(self._round_index)
            if fragment is None:
                continue
            self.report.requests += 1
            groups.setdefault((stream.object_name, fragment),
                              []).append(stream.stream_id)
        handles = self._metric_handles
        for (object_name, fragment), members in groups.items():
            location = self.layout.locate(object_name, fragment)
            serve_disk = location.disk
            serve_cylinder = location.cylinder
            if (self.faults is not None
                    and not self.faults.available(location.disk)):
                if (location.mirror_disk is not None
                        and self.faults.available(location.mirror_disk)):
                    # RAID-1 failover: the surviving partner serves the
                    # fetch from its own replica position.
                    serve_disk = location.mirror_disk
                    serve_cylinder = location.mirror_cylinder
                    self.report.failovers += 1
                    self.report.failovers_by_round[self._round_index] = \
                        self.report.failovers_by_round.get(
                            self._round_index, 0) + 1
                    if handles is not None:
                        handles["failovers"].inc()
                else:
                    # No live copy anywhere: the fetch is lost outright.
                    self.report.dropped_requests += len(members)
                    if handles is not None:
                        handles["dropped"].inc(len(members))
                        handles["glitches"].inc(len(members))
                    for stream_id in members:
                        stream = self.streams.get(stream_id)
                        if stream is not None:
                            stream.record_glitch(self._round_index)
                        self.report.glitches += 1
                        self.report.glitches_by_round[self._round_index] \
                            = self.report.glitches_by_round.get(
                                self._round_index, 0) + 1
                        if self.tracer.enabled:
                            self.tracer.emit(
                                "fragment_glitch", t=self.engine.now,
                                round=self._round_index,
                                disk=location.disk, stream=stream_id,
                                dropped=True)
                    continue
            representative = members[0]
            self.report.physical_requests += 1
            batches[serve_disk].append(DiskRequest(
                stream_id=representative, size=location.size,
                cylinder=serve_cylinder))
            if len(members) > 1:
                self._multicast[(self._round_index, serve_disk,
                                 representative)] = members
        if handles is not None:
            requested = sum(len(m) for m in groups.values())
            handles["requests"].inc(requested)
            handles["physical"].inc(
                sum(len(batch) for batch in batches.values()))
            handles["active"].set(len(self.streams))
        if self.tracer.enabled:
            failed = (sorted(self.faults.failed_disks())
                      if self.faults is not None else [])
            self.tracer.emit(
                "round_dispatch", t=self.engine.now,
                round=self._round_index,
                active_streams=len(self.streams),
                failed_disks=failed,
                batches={str(d): len(b) for d, b in batches.items() if b})
        for disk, requests in batches.items():
            if requests:
                self._schedulers[disk].submit(self._round_index, deadline,
                                              requests)

    # ------------------------------------------------------------------
    # load shedding (degraded mode)
    # ------------------------------------------------------------------
    def _replan_round(self) -> None:
        """Re-plan admission and active load at a round boundary.

        While any disk is failed, admission is degraded to the
        doubled-batch bound and the *newest* streams are shed (paused or
        dropped, per policy) until the active population fits
        ``disks * degraded_n_max``; when capacity returns, paused
        streams are resumed oldest-first.  Runs before the batches are
        built, so a decision takes effect in the same round.
        """
        policy = self.shedding
        degraded = bool(self.faults.failed_disks())
        if self.admission is not None:
            if degraded and not self.admission.degraded:
                self.admission.degrade(policy.degraded_n_max)
            elif not degraded and self.admission.degraded:
                self.admission.restore()
        by_id = lambda s: s.stream_id  # noqa: E731
        serving = sorted((s for s in self.streams.values()
                          if not s.paused), key=by_id)
        paused = sorted((s for s in self.streams.values() if s.paused),
                        key=by_id)
        if degraded:
            target = policy.target(self.disks)
        else:
            target = (self.admission.capacity
                      if self.admission is not None else len(self.streams))
        # Resume oldest-first while there is room under the current
        # bound (all of them, once every disk is healthy again).
        while paused and len(serving) < target:
            resumed = paused.pop(0)
            self._resume_stream(resumed)
            serving.append(resumed)
        # Shed newest-first down to the bound.
        while len(serving) > target:
            stream = serving.pop()
            if policy.mode == "drop":
                self._drop_stream(stream)
            else:
                self._pause_stream(stream)
            paused.append(stream)
        # Streams still paused this round: their schedule slips by one.
        for stream in self.streams.values():
            if stream.paused:
                stream.defer_round()
                self.report.paused_stream_rounds += 1
                self.report.paused_by_round[self._round_index] = \
                    self.report.paused_by_round.get(
                        self._round_index, 0) + 1

    def _pause_stream(self, stream: Stream) -> None:
        stream.pause()
        # A paused stream leaves the phase census (it issues no
        # fetches); it re-enters on resume with its slipped phase.
        phase = self._stream_phase.pop(stream.stream_id, None)
        if phase is not None:
            self._phase_counts[phase] -= 1
        self.report.shed_streams += 1
        self.report.shed_by_round[self._round_index] = \
            self.report.shed_by_round.get(self._round_index, 0) + 1
        self.report.shed_log.append(
            (self._round_index, "pause", stream.stream_id))
        if self._metric_handles is not None:
            self._metric_handles["shed"].inc()
        if self.tracer.enabled:
            self.tracer.emit("stream_shed", round=self._round_index,
                             stream=stream.stream_id, action="pause")

    def _drop_stream(self, stream: Stream) -> None:
        stream.stats.shed = True
        self.report.shed_streams += 1
        self.report.shed_by_round[self._round_index] = \
            self.report.shed_by_round.get(self._round_index, 0) + 1
        self.report.shed_log.append(
            (self._round_index, "drop", stream.stream_id))
        if self._metric_handles is not None:
            self._metric_handles["shed"].inc()
        if self.tracer.enabled:
            self.tracer.emit("stream_shed", round=self._round_index,
                             stream=stream.stream_id, action="drop")
        self.close_stream(stream)

    def _resume_stream(self, stream: Stream) -> None:
        stream.resume()
        first_disk = self._stream_first_disk[stream.stream_id]
        # The paused rounds slipped start_round, so the phase class
        # moved with it: the stream re-fetches exactly the fragment it
        # froze on, on that fragment's home disk.
        phase = (first_disk - stream.start_round) % self.disks
        self._stream_phase[stream.stream_id] = phase
        self._phase_counts[phase] += 1
        self.report.resumed_streams += 1
        self.report.shed_log.append(
            (self._round_index, "resume", stream.stream_id))
        if self._metric_handles is not None:
            self._metric_handles["resumed"].inc()
        if self.tracer.enabled:
            self.tracer.emit("stream_resume", round=self._round_index,
                             stream=stream.stream_id)

    def _expand_multicast(self, round_index: int, disk: int,
                          representative: int) -> list[int]:
        members = self._multicast.pop((round_index, disk, representative),
                                      None)
        return members if members is not None else [representative]

    def _handle_outcome(self, disk: int, outcome: RoundOutcome) -> None:
        handles = self._metric_handles
        round_start = outcome.round_index * self.round_length
        # Per-round batching: metric increments and the latency trace
        # record are emitted once per (disk, round) outcome, not once
        # per delivered fragment.
        delivered_count = 0
        latency_streams: list[int] = []
        latency_values: list[float] = []
        latency_classes: list[str] = []
        for position, rep in enumerate(outcome.served_on_time):
            completion = outcome.completion_times[position]
            for stream_id in self._expand_multicast(outcome.round_index,
                                                    disk, rep):
                stream = self.streams.get(stream_id)
                if stream is not None:
                    stream.record_delivery(outcome.round_index)
                    self.report.delivered += 1
                    delivered_count += 1
                    if self.tracer.enabled:
                        latency_streams.append(stream_id)
                        latency_values.append(completion - round_start)
                        latency_classes.append(stream.klass)
        if handles is not None and delivered_count:
            handles["delivered"].inc(delivered_count)
        if outcome.glitched:
            self.report.late_rounds += 1
            self.report.per_disk_late_rounds[disk] += 1
            if handles is not None:
                handles["late"].inc()
        glitched_members = 0
        for rep in outcome.glitched:
            for stream_id in self._expand_multicast(outcome.round_index,
                                                    disk, rep):
                stream = self.streams.get(stream_id)
                if stream is not None:
                    stream.record_glitch(outcome.round_index)
                self.report.glitches += 1
                glitched_members += 1
                self.report.glitches_by_round[outcome.round_index] = \
                    self.report.glitches_by_round.get(
                        outcome.round_index, 0) + 1
                if self.tracer.enabled:
                    self.tracer.emit("fragment_glitch", t=self.engine.now,
                                     round=outcome.round_index, disk=disk,
                                     stream=stream_id, dropped=False)
        # Sweep service time: the round's batch is dispatched at the
        # round boundary, so the span runs from there to completion.
        service = outcome.finish_time - round_start
        if handles is not None:
            handles["glitches"].inc(glitched_members)
            handles["sweep_seconds"].observe(service)
        if self.tracer.enabled and latency_streams:
            self.tracer.emit("latency_batch", t=outcome.finish_time,
                             round=outcome.round_index, disk=disk,
                             streams=latency_streams,
                             latencies=latency_values,
                             classes=latency_classes)
        if self.tracer.enabled:
            self.tracer.emit("sweep", t=outcome.finish_time,
                             round=outcome.round_index, disk=disk,
                             service=service,
                             late=bool(outcome.glitched),
                             served=len(outcome.served_on_time),
                             glitched=len(outcome.glitched),
                             seek=outcome.lumped_seek_time)

    def _reap_finished(self) -> None:
        finished = [s for s in self.streams.values()
                    if s.is_finished(self._round_index)]
        for stream in finished:
            self.close_stream(stream)

    # ------------------------------------------------------------------
    def active_streams(self) -> int:
        """Streams currently open."""
        return len(self.streams)

    def startup_delays(self) -> list[int]:
        """Startup delays (in rounds) of every stream admitted so far.

        With ``balance_start`` each delay is below the disk count; the
        worst wall-clock wait is ``max(startup_delays()) *
        round_length``.
        """
        return list(self._startup_delays)

    def __repr__(self) -> str:
        return (f"MediaServer(disks={len(self.specs)}, "
                f"round={self.round_length}s, "
                f"streams={len(self.streams)}, "
                f"round_index={self._round_index})")
