"""Stochastic service guarantees for continuous data on multi-zone disks.

A from-scratch reproduction of Nerjes, Muth & Weikum, *Stochastic
Service Guarantees for Continuous Data on Multi-Zone Disks* (PODS 1997):
an analytic Chernoff-bound model of the glitch rate of round-based
continuous-media disk service, the admission control built on it, and
the detailed disk simulator used to validate it.

Quick tour::

    from repro import (RoundServiceTimeModel, GlitchModel,
                       quantum_viking_2_1, paper_fragment_sizes,
                       n_max_perror)

    spec = quantum_viking_2_1()               # Table 1 disk
    sizes = paper_fragment_sizes()            # Gamma(200 KB, 100 KB)
    model = RoundServiceTimeModel.for_disk(spec, sizes)
    glitch = GlitchModel(model, t=1.0)
    print(model.b_late(26, 1.0))              # ~0.003  (paper: 0.00324)
    print(n_max_perror(glitch, m=1200, g=12, epsilon=0.01))   # 28

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.cache import (
    cache_disabled,
    cache_stats,
    clear_cache,
    set_cache_enabled,
)
from repro.core import (
    ChernoffResult,
    GlitchModel,
    RoundServiceTimeModel,
    AdmissionTable,
    MultiZoneTransferModel,
    chernoff_tail_bound,
    n_max_perror,
    n_max_plate,
    oyang_seek_bound,
    single_zone_transfer_time,
    worst_case_n_max,
)
from repro.disk import (
    DiskDrive,
    DiskGeometry,
    DiskRequest,
    DiskSpec,
    SeekCurve,
    ZoneMap,
    quantum_viking_2_1,
    scaled_viking,
    single_zone_viking,
)
from repro.distributions import (
    Deterministic,
    Distribution,
    Empirical,
    Gamma,
    LogNormal,
    Pareto,
    Truncated,
    Uniform,
    binomial_tail,
    hagerup_rub_tail,
)
from repro.errors import (
    AdmissionError,
    ChernoffError,
    ConfigurationError,
    DistributionError,
    GeometryError,
    ModelError,
    ReproError,
    SimulationError,
)
from repro.server import (
    AdmissionController,
    MediaServer,
    estimate_p_error,
    estimate_p_late,
    simulate_rounds,
)
from repro.workload import (
    Catalog,
    MpegGopModel,
    fragment_trace,
    paper_fragment_sizes,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # cache
    "cache_disabled",
    "cache_stats",
    "clear_cache",
    "set_cache_enabled",
    # core
    "ChernoffResult",
    "GlitchModel",
    "RoundServiceTimeModel",
    "AdmissionTable",
    "MultiZoneTransferModel",
    "chernoff_tail_bound",
    "n_max_perror",
    "n_max_plate",
    "oyang_seek_bound",
    "single_zone_transfer_time",
    "worst_case_n_max",
    # disk
    "DiskDrive",
    "DiskGeometry",
    "DiskRequest",
    "DiskSpec",
    "SeekCurve",
    "ZoneMap",
    "quantum_viking_2_1",
    "scaled_viking",
    "single_zone_viking",
    # distributions
    "Deterministic",
    "Distribution",
    "Empirical",
    "Gamma",
    "LogNormal",
    "Pareto",
    "Truncated",
    "Uniform",
    "binomial_tail",
    "hagerup_rub_tail",
    # errors
    "AdmissionError",
    "ChernoffError",
    "ConfigurationError",
    "DistributionError",
    "GeometryError",
    "ModelError",
    "ReproError",
    "SimulationError",
    # server
    "AdmissionController",
    "MediaServer",
    "estimate_p_error",
    "estimate_p_late",
    "simulate_rounds",
    # workload
    "Catalog",
    "MpegGopModel",
    "fragment_trace",
    "paper_fragment_sizes",
]
