"""Command-line interface.

Exposes the admission-control math to operators without writing Python::

    python -m repro admission --mean-kb 200 --std-kb 100 --round 1.0
    python -m repro plate --n-from 20 --n-to 32
    python -m repro simulate --n 28 --rounds 20000
    python -m repro simulate --n 20,24,28 --rounds 5000
    python -m repro simulate --faults examples/single_disk_failure.toml \
        --trace run.jsonl --metrics run.json
    python -m repro observe run.jsonl
    python -m repro worstcase
    python -m repro approx

All commands default to the paper's Table 1 drive (Quantum Viking 2.1);
``--disk single-zone`` selects the §3.1 example disk and
``--rate-scale`` models faster drive generations.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.analysis import format_probability, render_table
from repro.cache import (
    cache_stats,
    default_cache_dir,
    get_cache,
    get_persistent_cache,
    persistent_cache_enabled,
    publish_cache_metrics,
    set_cache_enabled,
    set_persistent_cache_dir,
)
from repro.core import (
    GlitchModel,
    MultiZoneTransferModel,
    RoundServiceTimeModel,
    n_max_perror,
    n_max_plate,
    worst_case_n_max,
)
from repro.core.baselines import worst_case_components
from repro.disk import quantum_viking_2_1, scaled_viking, single_zone_viking
from repro.distributions import Gamma
from repro.errors import ConfigurationError
from repro.obs import (
    NULL_TRACER,
    RunTelemetry,
    Tracer,
    build_span_trees,
    critical_path,
    get_registry,
    get_tracer,
    read_trace,
    read_trace_lenient,
    render_span_tree,
    set_tracer,
    slo_report_from_records,
    validate_trace,
)
from repro.server.simulation import estimate_p_error, estimate_p_late

__all__ = ["main", "build_parser"]


def _n_list(value: str) -> list[int]:
    """``--n`` argument: one level or a comma-separated sweep grid."""
    try:
        ns = [int(part) for part in value.split(",") if part.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or comma-separated integers, "
            f"got {value!r}") from None
    if not ns:
        raise argparse.ArgumentTypeError(
            f"expected at least one integer, got {value!r}")
    return ns


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--disk", choices=("viking", "single-zone"),
                        default="viking",
                        help="disk preset (default: Table 1 Viking)")
    parser.add_argument("--rate-scale", type=float, default=1.0,
                        help="scale the media transfer rate (drive "
                        "generations)")
    parser.add_argument("--mean-kb", type=float, default=200.0,
                        help="mean fragment size in KB (1000 bytes)")
    parser.add_argument("--std-kb", type=float, default=100.0,
                        help="fragment-size standard deviation in KB")
    parser.add_argument("--round", type=float, default=1.0, dest="t",
                        help="round length in seconds")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the process-wide Chernoff bound "
                        "cache (every b_late query re-optimises)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="directory of the persistent bound cache "
                        "(default: $REPRO_CACHE_DIR or ~/.cache/repro)")


def _spec(args: argparse.Namespace):
    if args.disk == "single-zone":
        spec = single_zone_viking()
    elif args.rate_scale != 1.0:
        spec = scaled_viking(rate_scale=args.rate_scale)
    else:
        spec = quantum_viking_2_1()
    return spec


def _model(args: argparse.Namespace) -> RoundServiceTimeModel:
    sizes = Gamma.from_mean_std(args.mean_kb * 1000.0,
                                args.std_kb * 1000.0)
    return RoundServiceTimeModel.for_disk(_spec(args), sizes)


def _cmd_admission(args: argparse.Namespace) -> int:
    model = _model(args)
    glitch = GlitchModel(model, args.t)
    plate = n_max_plate(model, args.t, args.delta)
    perror = n_max_perror(glitch, args.m, args.g, args.epsilon)
    print(render_table(
        ["criterion", "N_max"],
        [
            [f"round-level: P[round late] <= {args.delta:g}",
             str(plate)],
            [f"stream-level: P[>= {args.g} glitches in {args.m} rounds]"
             f" <= {args.epsilon:g}", str(perror)],
        ],
        title=f"admission limits ({_spec(args).name}, t={args.t:g}s)"))
    return 0


def _cmd_plate(args: argparse.Namespace) -> int:
    model = _model(args)
    rows = []
    for n in range(args.n_from, args.n_to + 1):
        result = model.p_late(n, args.t)
        rows.append([str(n), f"{model.mean(n):.4f}",
                     format_probability(result.bound)])
    print(render_table(["N", "E[T_N] [s]", "b_late(N, t)"], rows,
                       title=f"Chernoff lateness bounds "
                       f"({_spec(args).name}, t={args.t:g}s)"))
    return 0


#: Hot spots printed by ``repro simulate --profile``.
PROFILE_TOP = 15


def _cmd_simulate(args: argparse.Namespace) -> int:
    spec = _spec(args)
    sizes = Gamma.from_mean_std(args.mean_kb * 1000.0,
                                args.std_kb * 1000.0)
    registry = get_registry()
    if args.metrics is not None:
        registry.reset()
    tracer = (Tracer(sink=args.trace) if args.trace is not None
              else NULL_TRACER)
    profiler = None
    if args.profile:
        import cProfile
        profiler = cProfile.Profile()
        profiler.enable()
    scenario = (args.faults is not None or args.trick
                or args.farm_spec is not None)
    try:
        if scenario and args.engine == "kernel":
            code = _simulate_scenario_kernel(args, spec, sizes)
        elif scenario:
            code = _simulate_faults(args, spec, sizes, tracer, registry)
        else:
            code = _simulate_vectorised(args, spec, sizes, tracer,
                                        registry)
    finally:
        if profiler is not None:
            profiler.disable()
        if tracer is not NULL_TRACER:
            tracer.close()
        if args.metrics is not None:
            publish_cache_metrics(registry)
            registry.write_json(args.metrics)
    if profiler is not None:
        import io
        import pstats
        buffer = io.StringIO()
        stats = pstats.Stats(profiler, stream=buffer)
        stats.strip_dirs().sort_stats("cumulative").print_stats(
            PROFILE_TOP)
        print(f"--- profile: top {PROFILE_TOP} by cumulative time ---")
        print(buffer.getvalue().rstrip())
    if args.trace is not None:
        print(f"trace written to {args.trace} "
              f"({tracer.emitted} records)")
    if args.metrics is not None:
        print(f"metrics written to {args.metrics}")
    return code


def _simulate_vectorised(args: argparse.Namespace, spec, sizes,
                         tracer: Tracer, registry) -> int:
    """The Monte-Carlo validation paths of ``repro simulate``: one
    ``N`` through ``estimate_p_late``, a comma-separated grid through
    the shared-pool ``sweep_*_parallel`` fan-outs."""
    if args.n is None:
        print("error: --n is required without --faults", file=sys.stderr)
        return 2
    model = RoundServiceTimeModel.for_disk(spec, sizes)
    if len(args.n) > 1:
        return _simulate_sweep(args, spec, sizes, model, tracer,
                               registry)
    n = args.n[0]
    bound = model.b_late(n, args.t)
    if tracer.enabled:
        tracer.start_run(seed=args.seed, mode="vectorised", n=n,
                         t=args.t, rounds=args.rounds,
                         bound_healthy=float(bound))
    previous = get_tracer()
    set_tracer(tracer)
    try:
        est = estimate_p_late(spec, sizes, n, args.t,
                              rounds=args.rounds, seed=args.seed,
                              jobs=args.jobs)
        pe = None
        if args.perror:
            pe = estimate_p_error(spec, sizes, n, args.t, args.m,
                                  args.g, runs=args.runs,
                                  seed=args.seed, jobs=args.jobs)
    finally:
        set_tracer(previous)
        if tracer.enabled:
            tracer.end_run()
    labels = {"n": str(n)}
    registry.gauge("sim_p_late", labels=labels).set(est.p_late)
    registry.gauge("sim_b_late", labels=labels).set(bound)
    rows = [
        ["simulated p_late", format_probability(est.p_late)],
        ["95% CI", f"[{format_probability(est.ci_low)}, "
                   f"{format_probability(est.ci_high)}]"],
        ["analytic bound", format_probability(bound)],
    ]
    if pe is not None:
        glitch = GlitchModel(model, args.t)
        registry.gauge("sim_p_error", labels=labels).set(pe.p_error)
        rows.append(["simulated p_error", format_probability(pe.p_error)])
        rows.append(["analytic p_error bound", format_probability(
            glitch.p_error(n, args.m, args.g))])
    print(render_table(
        ["quantity", "value"], rows,
        title=f"simulation at N={n} ({est.rounds} rounds)"))
    return 0


def _simulate_sweep(args: argparse.Namespace, spec, sizes, model,
                    tracer: Tracer, registry) -> int:
    """``repro simulate --n N1,N2,...``: the whole grid through one
    shared worker pool (:func:`repro.parallel.sweep_p_late_parallel`),
    per-``N`` results published through the metrics registry."""
    from repro.parallel import sweep_p_error_parallel, sweep_p_late_parallel

    ns = args.n
    if tracer.enabled:
        tracer.start_run(seed=args.seed, mode="sweep", ns=list(ns),
                         t=args.t, rounds=args.rounds)
    previous = get_tracer()
    set_tracer(tracer)
    try:
        lates = sweep_p_late_parallel(spec, sizes, ns, args.t,
                                      rounds=args.rounds,
                                      seed=args.seed, jobs=args.jobs)
        errors = None
        if args.perror:
            errors = sweep_p_error_parallel(spec, sizes, ns, args.t,
                                            args.m, args.g,
                                            runs=args.runs,
                                            seed=args.seed,
                                            jobs=args.jobs)
    finally:
        set_tracer(previous)
        if tracer.enabled:
            tracer.end_run()
    glitch = GlitchModel(model, args.t) if args.perror else None
    headers = ["N", "p_late", "95% CI", "b_late(N, t)"]
    if args.perror:
        headers += ["p_error", "b_error"]
    rows = []
    for index, est in enumerate(lates):
        bound = model.b_late(est.n, args.t)
        labels = {"n": str(est.n)}
        registry.gauge("sim_p_late", labels=labels).set(est.p_late)
        registry.gauge("sim_b_late", labels=labels).set(bound)
        row = [str(est.n), format_probability(est.p_late),
               f"[{format_probability(est.ci_low)}, "
               f"{format_probability(est.ci_high)}]",
               format_probability(bound)]
        if errors is not None:
            pe = errors[index]
            registry.gauge("sim_p_error", labels=labels).set(pe.p_error)
            row += [format_probability(pe.p_error),
                    format_probability(
                        glitch.p_error(est.n, args.m, args.g))]
        rows.append(row)
    print(render_table(
        headers, rows,
        title=f"sweep over {len(ns)} N values "
        f"({args.rounds} rounds each, shared pool)"))
    return 0


def _simulate_faults(args: argparse.Namespace, spec, sizes,
                     tracer: Tracer = NULL_TRACER,
                     registry=None) -> int:
    """``repro simulate --faults SCHEDULE.toml``: drive the event-driven
    mirrored server through the fault schedule and check the survivors
    against the degraded-mode bound."""
    from repro.server.faults import FaultSchedule, run_failover_scenario
    from repro.server.scenario import parse_farm_spec

    if args.n is not None and len(args.n) > 1:
        print("error: --faults takes a single --n, not a sweep grid",
              file=sys.stderr)
        return 2
    if args.trick:
        print("error: --trick requires --engine kernel (the event "
              "engine has no trick-mode load model)", file=sys.stderr)
        return 2
    if args.faults is None:
        print("error: --engine event needs --faults; use --engine "
              "kernel for schedule-free heterogeneous scenarios",
              file=sys.stderr)
        return 2
    specs = (parse_farm_spec(args.farm_spec)
             if args.farm_spec is not None else None)
    disks = len(specs) if specs is not None else args.disks
    schedule = FaultSchedule.from_toml(args.faults)
    result = run_failover_scenario(
        spec, sizes, specs=specs, disks=disks, t=args.t,
        delta=args.delta, rounds=args.server_rounds,
        n_per_disk=args.n[0] if args.n else None,
        shedding=not args.no_shed, shed_mode=args.shed_mode,
        schedule=schedule, seed=args.seed, tracer=tracer,
        metrics=registry if args.metrics is not None else None)
    report = result.report
    rows = [
        ["disks (mirrored pairs)", str(disks)],
        ["streams opened", str(result.streams_opened)],
        ["healthy N_max / disk", str(result.healthy_n_max)],
        ["degraded N_max / disk", str(result.degraded_n_max)],
        ["shedding", "off" if args.no_shed else args.shed_mode],
        ["failovers (mirror reads)", str(report.failovers)],
        ["dropped requests", str(report.dropped_requests)],
        ["streams shed", str(report.shed_streams)],
        ["streams resumed", str(report.resumed_streams)],
        ["survivors (never shed)", str(result.survivors)],
        ["max survivor glitch rate",
         format_probability(result.max_glitch_rate)],
        ["tolerance delta", format_probability(result.delta)],
        ["within degraded-mode bound",
         "yes" if result.within_bound else "NO"],
    ]
    print(render_table(
        ["quantity", "value"], rows,
        title=f"fault injection ({args.faults}, "
        f"{report.rounds} rounds)"))
    for when, what in report.fault_log:
        print(f"  fault: {what}")
    return 0 if result.within_bound or args.no_shed else 1


def _simulate_scenario_kernel(args: argparse.Namespace, spec,
                              sizes) -> int:
    """``repro simulate --engine kernel`` with ``--faults`` /
    ``--trick`` / ``--farm-spec``: compile the whole scenario -- any
    fault schedule (fail/recover/slow-disk/recalibration-storm),
    trick-mode segments, heterogeneous mirrored layouts -- into
    constant-state phase batches and price them on the vectorised sweep
    kernel (:mod:`repro.server.scenario`).  Orders of magnitude faster
    than the event engine and statistically cross-validated against it;
    anything the compiler cannot represent raises loudly instead of
    degrading."""
    from repro.core.farm import degraded_mode_n_max
    from repro.obs.telemetry import bound_table_from_estimate
    from repro.server.faults import FaultSchedule, SheddingPolicy
    from repro.server.scenario import (
        analytic_phase_bounds,
        compile_scenario,
        parse_farm_spec,
        parse_trick_spec,
        simulate_scenario,
    )

    if args.n is not None and len(args.n) > 1:
        print("error: scenario runs take a single --n, not a sweep "
              "grid", file=sys.stderr)
        return 2
    if args.farm_spec is not None:
        specs = parse_farm_spec(args.farm_spec)
    else:
        specs = (spec,) * args.disks
    schedule = (FaultSchedule.from_toml(args.faults)
                if args.faults is not None else None)
    trick = tuple(parse_trick_spec(text) for text in (args.trick or ()))

    # Farm admission binds at the weakest disk (core.farm rule), so the
    # shedding limit of a heterogeneous layout is the per-disk minimum.
    limits = [degraded_mode_n_max(s, sizes, args.t, args.delta)
              for s in specs]
    healthy_n_max = min(limit[0] for limit in limits)
    degraded_n_max = min(limit[1] for limit in limits)
    n_per_disk = args.n[0] if args.n else healthy_n_max
    policy = (None if args.no_shed
              else SheddingPolicy(degraded_n_max, mode=args.shed_mode))
    compiled = compile_scenario(
        specs, sizes, n_per_disk=n_per_disk, t=args.t,
        rounds=args.server_rounds, schedule=schedule, policy=policy,
        trick=trick, rejoin_rounds=args.rejoin_rounds)
    est = simulate_scenario(compiled, seed=args.seed, jobs=args.jobs)
    bounds = analytic_phase_bounds(compiled)
    rows = []
    for phase, comparison in zip(est.phases,
                                 bound_table_from_estimate(est, bounds)):
        if phase.disk_rounds == 0:
            continue
        low, high = phase.glitch_ci()
        within = comparison.within_bound
        rows.append([phase.name, str(phase.rounds),
                     str(phase.disk_rounds),
                     format_probability(phase.p_late),
                     (format_probability(comparison.bound)
                      if comparison.bound is not None else "-"),
                     "-" if within is None else ("yes" if within
                                                 else "NO"),
                     format_probability(phase.glitch_rate),
                     f"[{format_probability(low)}, "
                     f"{format_probability(high)}]"])
    source = args.faults if args.faults is not None else "no schedule"
    print(render_table(
        ["phase", "rounds", "disk-rounds", "p_late", "b_late bound",
         "within", "glitch rate", "glitch 95% CI"], rows,
        title=f"scenario kernel ({source}, {compiled.disks} disks, "
        f"n/disk={n_per_disk}, "
        f"shedding {'off' if args.no_shed else 'on'})"))
    for line in compiled.describe():
        print(f"  {line}")
    degraded = [p for p in est.phases
                if p.name.startswith("degraded") and p.disk_rounds]
    if degraded:
        worst = max(p.glitch_rate for p in degraded)
        within = worst <= args.delta
        print(f"  degraded glitch rate vs delta={args.delta:g}: "
              f"{'within bound' if within else 'VIOLATED'}")
        return 0 if within or args.no_shed else 1
    return 0


def _cmd_worstcase(args: argparse.Namespace) -> int:
    spec = _spec(args)
    sizes = Gamma.from_mean_std(args.mean_kb * 1000.0,
                                args.std_kb * 1000.0)
    rows = []
    for quantile, rate, label in ((0.99, "min", "conservative"),
                                  (0.95, "mean", "optimistic")):
        rot, seek, trans = worst_case_components(spec, sizes, quantile,
                                                 rate)
        rows.append([label, f"{1e3 * trans:.1f}",
                     str(worst_case_n_max(args.t, rot, seek, trans))])
    print(render_table(
        ["variant", "T_trans^max [ms]", "N_max^wc"], rows,
        title=f"deterministic worst case (eq. 4.1, {spec.name})"))
    return 0


def _cmd_sensitivity(args: argparse.Namespace) -> int:
    from repro.analysis.sensitivity import admission_sensitivity

    rows = admission_sensitivity(
        _spec(args), mean_size=args.mean_kb * 1000.0,
        cv=args.std_kb / args.mean_kb, t=args.t, m=args.m, g=args.g,
        epsilon=args.epsilon, rel_delta=args.rel_delta)
    print(render_table(
        [f"parameter (+-{args.rel_delta:.0%})", "N_max low",
         "N_max base", "N_max high", "swing"],
        [[r.parameter, str(r.n_max_low), str(r.n_max_base),
          str(r.n_max_high), str(r.swing)] for r in rows],
        title="admission-limit sensitivity"))
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    from repro.core.tuning import tune_round_length

    tuning = tune_round_length(
        _spec(args), display_bandwidth=args.mean_kb * 1000.0,
        cv=args.std_kb / args.mean_kb,
        playback_seconds=args.playback)
    print(render_table(
        ["round t [s]", "N_max", "bandwidth [MB/s]",
         "startup delay [s]"],
        [[f"{p.t:g}", str(p.n_max), f"{p.bandwidth / 1e6:.2f}",
          f"{p.startup_delay:g}"] for p in tuning.points],
        title="round-length sweep"))
    print(f"\nknee: t = {tuning.knee.t:g} s "
          f"({tuning.knee.bandwidth / 1e6:.2f} MB/s, "
          f">= {tuning.knee_fraction:.0%} of peak)")
    return 0


def _cmd_fit(args: argparse.Namespace) -> int:
    from repro.distributions.fit import fit_fragment_sizes
    from repro.workload.trace_io import load_trace

    sample = load_trace(args.trace)
    results = fit_fragment_sizes(sample, cap=args.cap)
    print(render_table(
        ["law", "mean [KB]", "sd [KB]", "KS statistic", "KS p-value"],
        [[r.name, f"{r.distribution.mean() / 1e3:.1f}",
          f"{r.distribution.std() / 1e3:.1f}",
          f"{r.ks_statistic:.4f}", f"{r.ks_pvalue:.3g}"]
         for r in results],
        title=f"fragment-size fits ({sample.size} samples, "
        f"best first)"))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import write_report

    target = write_report(args.output)
    print(f"report written to {target}")
    return 0


def _cmd_approx(args: argparse.Namespace) -> int:
    spec = _spec(args)
    if spec.zone_map.zones == 1:
        print("single-zone disk: the Gamma transfer time is exact; "
              "nothing to approximate", file=sys.stderr)
        return 1
    sizes = Gamma.from_mean_std(args.mean_kb * 1000.0,
                                args.std_kb * 1000.0)
    transfer = MultiZoneTransferModel(spec.zone_map, sizes)
    report = transfer.approximation_report(args.t_lo * 1e-3,
                                           args.t_hi * 1e-3)
    print(render_table(
        ["quantity", "value"],
        [
            ["E[T_trans] [ms]", f"{1e3 * transfer.mean():.3f}"],
            ["sd[T_trans] [ms]", f"{1e3 * transfer.var() ** 0.5:.3f}"],
            ["max density error",
             f"{100 * report.max_relative_error:.2f} %"],
        ],
        title=f"Gamma approximation (eq. 3.2.10) on "
        f"{args.t_lo:g}-{args.t_hi:g} ms"))
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    if args.dir is not None:
        store = set_persistent_cache_dir(args.dir)
    else:
        store = get_persistent_cache()
    if args.action == "path":
        print(store.path if store is not None else default_cache_dir()
              / "bounds.sqlite")
        return 0
    if store is None:
        print("persistent cache disabled (REPRO_PERSISTENT_CACHE=0)",
              file=sys.stderr)
        return 1 if args.action == "clear" else 0
    if args.action == "clear":
        dropped = store.clear()
        print(f"cleared {dropped} cached bound(s) from {store.path}")
        return 0
    stats = store.stats.snapshot()
    print(render_table(
        ["quantity", "value"],
        [
            ["location", str(store.path)],
            ["enabled", str(persistent_cache_enabled())],
            ["entries", str(store.entry_count())],
            ["capacity (LRU)", str(store.max_entries)],
            ["session hits", str(stats.hits)],
            ["session misses", str(stats.misses)],
            ["session writes", str(stats.writes)],
            ["session errors", str(stats.errors)],
            ["session evictions (LRU)", str(stats.evictions)],
        ],
        title="persistent Chernoff-bound cache"))
    mem = cache_stats()
    hist = get_cache().solve_histogram
    rows = [
        ["entries", str(len(get_cache()))],
        ["hits", str(mem.hits)],
        ["misses", str(mem.misses)],
        ["disk hits", str(mem.disk_hits)],
        ["evictions", str(mem.evictions)],
        ["uncached evaluations", str(mem.uncached)],
        ["solves", str(hist.count)],
        ["solve time total [s]", f"{mem.solve_seconds:.4f}"],
    ]
    if hist.count:
        rows.append(["solve time mean [ms]", f"{1e3 * hist.mean:.3f}"])
        rows.append(["solve time p95 [ms]",
                     f"{1e3 * hist.quantile(0.95):.3f}"])
        rows.append(["solve time max [ms]", f"{1e3 * hist.max:.3f}"])
    print(render_table(
        ["quantity", "value"], rows,
        title="in-memory bound cache (this process)"))
    return 0


def _render_spans(records) -> None:
    """The ``--spans`` section: per-name root summary, then the
    slowest tree of each name with its critical path."""
    roots = build_span_trees(records)
    if not roots:
        print("no spans recorded (trace written without span "
              "instrumentation?)")
        return
    groups: dict[str, list] = {}
    for root in roots:
        groups.setdefault(root.name, []).append(root)
    rows = []
    for name in sorted(groups):
        group = groups[name]
        timed = [r.seconds for r in group if r.seconds is not None]
        incomplete = sum(1 for root in group
                         for node in root.walk() if not node.complete)
        rows.append([
            name, str(len(group)),
            f"{1e3 * sum(timed) / len(timed):.2f}" if timed else "-",
            f"{1e3 * max(timed):.2f}" if timed else "-",
            str(incomplete) if incomplete else ""])
    print(render_table(
        ["root span", "count", "mean [ms]", "max [ms]", "incomplete"],
        rows, title="span trees"))
    for name in sorted(groups):
        slowest = max(groups[name],
                      key=lambda root: root.seconds or 0.0)
        print(f"slowest {name}:")
        for line in render_span_tree(slowest, indent="  "):
            print(line)
        path = critical_path(slowest)
        if len(path) > 1:
            print("  critical path: "
                  + " -> ".join(node.name for node in path))


def _cmd_observe(args: argparse.Namespace) -> int:
    """``repro observe TRACE.jsonl``: reconstruct a recorded run --
    slowest sweeps, glitch timeline, bound-vs-observed table."""
    records, damage = read_trace_lenient(args.trace)
    if not records:
        detail = damage[0] if damage else "the file is empty"
        print(f"error: {args.trace} holds no readable trace records "
              f"({detail})", file=sys.stderr)
        return 1
    for problem in damage:
        print(f"trace damage: {problem}", file=sys.stderr)
    problems = validate_trace(records)
    for problem in problems:
        print(f"schema problem: {problem}", file=sys.stderr)
    if problems and args.validate:
        return 1
    telemetry = RunTelemetry.from_records(records)
    header = telemetry.header
    print(f"trace {args.trace}: {len(records)} records, "
          f"{telemetry.round_count} rounds, "
          f"schema {header.get('schema', '?')}, "
          f"seed {header.get('seed', '?')}, "
          f"mode {header.get('mode', '?')}")

    top = telemetry.top_latency(args.top)
    if top:
        print(render_table(
            ["round", "disk", "service [ms]", "late", "served",
             "glitched"],
            [[str(s.round_index), str(s.disk), f"{1e3 * s.service:.2f}",
              "yes" if s.late else "", str(s.served), str(s.glitched)]
             for s in top],
            title=f"top {len(top)} latency contributors"))
    else:
        print("no sweeps recorded (not a server trace?)")

    summary = telemetry.latency_summary()
    if summary:
        print(render_table(
            ["class", "streams", "fragments", "mean [ms]", "p50 [ms]",
             "p95 [ms]", "max [ms]"],
            [[c.klass, str(len(c.streams)), str(c.count),
              f"{1e3 * c.mean:.2f}", f"{1e3 * c.quantile(0.5):.2f}",
              f"{1e3 * c.quantile(0.95):.2f}", f"{1e3 * c.max:.2f}"]
             for c in summary],
            title="fragment-completion latency by stream class"))

    timeline = telemetry.glitch_timeline()
    if timeline:
        peak = max(count for _, count in timeline)
        print(render_table(
            ["round", "glitches", ""],
            [[str(r), str(count), "#" * max(1, round(30 * count / peak))]
             for r, count in timeline],
            title="glitch timeline"))
    else:
        print("no glitches recorded")

    comparisons = [row for row in telemetry.bound_table()
                   if row.disk_rounds]
    if comparisons:
        rendered = []
        for row in comparisons:
            if row.within_bound is None:
                verdict = "no bound recorded"
            elif row.within_bound:
                verdict = "within bound"
            else:
                verdict = "VIOLATED"
            rendered.append([
                row.phase, str(row.rounds), str(row.disk_rounds),
                str(row.late_disk_rounds),
                format_probability(row.observed_p_late),
                format_probability(row.bound) if row.bound is not None
                else "-",
                verdict])
        print(render_table(
            ["phase", "rounds", "sweeps", "late", "observed p_late",
             "b_late bound", "verdict"],
            rendered, title="bound vs observed"))

    if args.window:
        rendered = []
        for row in telemetry.windowed_bound_table(args.window):
            if not row.disk_rounds:
                continue
            if row.within_bound is None:
                verdict = "no bound recorded"
            elif row.within_bound:
                verdict = "within bound"
            else:
                verdict = "VIOLATED"
            rendered.append([
                row.phase, str(row.disk_rounds),
                str(row.late_disk_rounds),
                format_probability(row.observed_p_late),
                format_probability(row.bound) if row.bound is not None
                else "-",
                verdict])
        if rendered:
            print(render_table(
                ["window", "sweeps", "late", "observed p_late",
                 "bound", "verdict"],
                rendered,
                title=f"bound vs observed per {args.window}-round "
                      f"window"))

    for record in telemetry.faults:
        print(f"  fault: {record.get('desc', record)}")
    if telemetry.sheds:
        paused = sum(1 for r in telemetry.sheds
                     if r.get("kind") == "stream_shed")
        resumed = sum(1 for r in telemetry.sheds
                      if r.get("kind") == "stream_resume")
        print(f"  shedding: {paused} shed, {resumed} resumed")
    if args.spans:
        _render_spans(records)
    # A damaged tail still gets the prefix summarised above, but the
    # exit code must flag that the trace is not the whole story.
    return 1 if damage else 0


def _cmd_slo(args: argparse.Namespace) -> int:
    """``repro slo TRACE.jsonl``: replay a recorded trace through the
    ε error-budget tracker and report burn rates + alert history."""
    records, damage = read_trace_lenient(args.trace)
    if not records:
        detail = damage[0] if damage else "the file is empty"
        print(f"error: {args.trace} holds no readable trace records "
              f"({detail})", file=sys.stderr)
        return 1
    for problem in damage:
        print(f"trace damage: {problem}", file=sys.stderr)
    report = slo_report_from_records(
        records, epsilon=args.epsilon, delta=args.delta,
        m=args.m, g=args.g,
        fast_window=args.fast_window, slow_window=args.slow_window,
        page_burn=args.page_burn, warn_burn=args.warn_burn)
    if not report["observed_rounds"]:
        print("error: trace has no per-round observations (need "
              "round_observe records from 'repro serve --trace' or "
              "sweep records from 'repro simulate --trace')",
              file=sys.stderr)
        return 1

    def burn(value):
        return f"{value:.3f}" if value is not None else "(no budget)"

    rows = [
        ["epsilon / delta",
         f"{report['epsilon']:g} / {report['delta']:g}"],
        ["stream shape (m, g)", f"({report['m']}, {report['g']})"],
        ["per-slot budget (healthy)",
         format_probability(report['budget_per_slot'])],
        ["per-slot budget (degraded)",
         format_probability(report['degraded_budget_per_slot'])],
        ["rounds observed", str(report["observed_rounds"])],
        ["degraded rounds", str(report["degraded_rounds"])],
        ["slots served", str(report["slots"])],
        ["slots glitched", str(report["glitched_slots"])],
        ["budget spent", burn(report["budget_spent"])],
        ["budget remaining", burn(report["budget_remaining"])],
        [f"fast burn ({report['fast_window_rounds']} rounds)",
         burn(report["fast_burn"])],
        [f"slow burn ({report['slow_window_rounds']} rounds)",
         burn(report["slow_burn"])],
        ["max fast burn",
         f"{report['max_fast_burn']:.3f}"
         + (f" (round {report['max_fast_burn_round']})"
            if report["max_fast_burn_round"] is not None else "")],
        ["final state", report["state"]],
        ["pages / warnings",
         f"{report['pages']} / {report['warnings']}"],
    ]
    if report["first_page_round"] is not None:
        rows.append(["first page round",
                     str(report["first_page_round"])])
    print(render_table(["quantity", "value"], rows,
                       title="epsilon error-budget report"))
    if report["transitions"]:
        print(render_table(
            ["round", "from", "to", "fast burn", "slow burn"],
            [[str(t["round"]), t["from"], t["to"],
              burn(t["fast_burn"]), burn(t["slow_burn"])]
             for t in report["transitions"]],
            title="alert transitions"))
    if report["pages"]:
        print(f"verdict: PAGE -- the fast window burned >= "
              f"{args.page_burn:g}x the sustainable epsilon rate",
              file=sys.stderr)
        return 1
    print(f"verdict: {report['state']} -- budget burn within the "
          f"stream tolerance")
    return 1 if damage else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the live admission daemon until --duration elapses, a
    SIGTERM/SIGINT arrives, or the operator interrupts it."""
    import signal
    import threading
    import time
    from pathlib import Path

    from repro.control import ControllerConfig
    from repro.serve import (FaultFeed, RoundTicker, ServeConfig,
                             ServeDaemon, ServeHandle)
    from repro.server.faults import FaultSchedule

    sizes = Gamma.from_mean_std(args.mean_kb * 1000.0,
                                args.std_kb * 1000.0)
    control = None
    if args.adaptive:
        control = ControllerConfig(guard_band=args.guard_band)
    config = ServeConfig(spec=_spec(args), size_dist=sizes, t=args.t,
                         epsilon=args.epsilon, delta=args.delta,
                         m=args.m, g=args.g, disks=args.disks,
                         shed_mode=args.shed_mode,
                         preload=not args.no_preload,
                         adaptive=args.adaptive, control=control,
                         snapshot_path=args.snapshot_path,
                         probe_seed=args.probe_seed,
                         slo_fast_window=args.slo_fast_window,
                         slo_slow_window=args.slo_slow_window,
                         shards=args.shards)
    tracer = Tracer(sink=args.trace) if args.trace else NULL_TRACER
    daemon = ServeDaemon(config, tracer=tracer)
    schedule = (FaultSchedule.from_toml(args.fault_schedule)
                if args.fault_schedule else None)
    if schedule is not None:
        schedule.validate_disks(args.disks)
    handle = ServeHandle(daemon, host=args.host, port=args.port)
    handle.start()
    if args.port_file:
        Path(args.port_file).write_text(f"{handle.port}\n",
                                        encoding="utf-8")
    print(f"repro serve: listening on {handle.url} "
          f"(n_max={daemon.controller.n_max_per_disk}/disk x "
          f"{args.disks} disks, degraded={daemon.degraded_n_max}, "
          f"{daemon.controller.shards} shard(s), "
          f"table build {daemon.build_seconds * 1e3:.1f} ms)")
    if daemon.state()["restored"]:
        print(f"repro serve: restored snapshot "
              f"{args.snapshot_path} "
              f"({daemon.controller.active} active stream(s))")
    if schedule is not None:
        feed = FaultFeed(daemon, schedule,
                         time_scale=args.time_scale).start()
        handle.attach(feed)
        print(f"repro serve: replaying {len(schedule)} fault event(s) "
              f"at time scale {args.time_scale:g}")
    interval = args.round_interval
    if interval is None:
        interval = 0.2 if args.adaptive else 0.0
    if interval > 0:
        handle.attach(RoundTicker(daemon, interval=interval).start())
        print(f"repro serve: probing one round every {interval:g}s"
              + (" (adaptive control on)" if args.adaptive else ""))

    # Graceful shutdown: SIGTERM/SIGINT trip an event; the finally
    # block snapshots the ledger and joins every feed/server thread.
    # Registration fails with ValueError off the main thread (the
    # in-process test harness) -- interrupts then fall through to the
    # KeyboardInterrupt path below.
    stop = threading.Event()
    previous: dict = {}

    def _on_signal(signum, frame):
        stop.set()

    try:
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous[signum] = signal.signal(signum, _on_signal)
    except ValueError:
        previous = {}
    signalled = False
    try:
        signalled = stop.wait(args.duration)  # None: wait forever
    except KeyboardInterrupt:  # pragma: no cover - interactive mode
        signalled = True
    finally:
        handle.stop()
        written = daemon.save_snapshot(clean=True)
        if tracer.enabled:
            tracer.end_run()
            tracer.close()
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    snap = daemon.controller.snapshot()
    reason = "signal" if signalled else "duration elapsed"
    print(f"repro serve: stopped ({reason}) after "
          f"{time.time() - daemon.started_at:.1f}s -- "
          f"{snap['requests']} requests, "
          f"{snap['requests'] - snap['rejections']} admitted, "
          f"{snap['rejections']} rejected, {snap['active']} active")
    if args.adaptive:
        view = daemon.control_state()["controller"]
        print(f"repro serve: controller state={view['state']} "
              f"retunes={view['retunes']} "
              f"watchdog_trips={view['watchdog_trips']} "
              f"n_max={view['n_max']} t_mult={view['t_mult']:g}")
    if written is not None:
        print(f"repro serve: clean snapshot written to {written}")
    if args.metrics:
        daemon.registry.write_json(args.metrics)
        print(f"metrics written to {args.metrics}")
    if args.trace:
        print(f"repro serve: trace written to {args.trace} "
              f"(inspect with 'repro observe --spans' / 'repro slo')")
    return 0


def _resolve_serve_url(args: argparse.Namespace) -> str:
    from pathlib import Path

    if args.url:
        return args.url
    if args.port_file:
        port = int(Path(args.port_file).read_text().strip())
        return f"http://127.0.0.1:{port}"
    raise ConfigurationError("need --url or --port-file")


def _cmd_admit(args: argparse.Namespace) -> int:
    """Load-generation client for a running ``repro serve`` daemon."""
    import json as _json

    from repro.serve import ServeClient

    client = ServeClient(_resolve_serve_url(args))
    try:
        if args.fault:
            result = client.fault(args.fault, disk=args.disk,
                                  factor=args.factor)
            print(_json.dumps(result))
        if args.until_reject:
            admitted = client.admit_until_reject()
            print(f"admitted {admitted} stream(s) before rejection")
        elif args.count and args.batch:
            result = client.admit_many(args.count, batch=args.batch)
            print(f"admitted {result['granted']}/{args.count} "
                  f"stream(s) in batches of {args.batch}")
        elif args.count:
            admitted = sum(client.admit()["admitted"]
                           for _ in range(args.count))
            print(f"admitted {admitted}/{args.count} stream(s)")
        if args.release and args.batch:
            streams = client.state()["streams"][:args.release]
            result = client.release_many(streams, batch=args.batch)
            print(f"released {len(result['released'])} stream(s) in "
                  f"batches of {args.batch}")
        elif args.release:
            for _ in range(args.release):
                client.release()
            print(f"released {args.release} stream(s)")
        if args.snapshot:
            print(_json.dumps(client.snapshot()))
        if args.scrape:
            print(client.metrics(), end="")
        if args.state:
            print(_json.dumps(client.state(), indent=2,
                              sort_keys=True))
        if args.control:
            print(_json.dumps(client.control(), indent=2,
                              sort_keys=True))
    finally:
        client.close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Stochastic service guarantees for continuous data "
        "on multi-zone disks (PODS'97 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("admission", help="compute N_max limits")
    _add_common(p)
    p.add_argument("--delta", type=float, default=0.01,
                   help="round-lateness tolerance (eq. 3.1.7)")
    p.add_argument("--epsilon", type=float, default=0.01,
                   help="stream-error tolerance (eq. 3.3.6)")
    p.add_argument("-m", type=int, default=1200,
                   help="rounds per stream (playback length)")
    p.add_argument("-g", type=int, default=12,
                   help="tolerated glitches per stream")
    p.set_defaults(func=_cmd_admission)

    p = sub.add_parser("plate", help="tabulate b_late(N, t)")
    _add_common(p)
    p.add_argument("--n-from", type=int, default=20)
    p.add_argument("--n-to", type=int, default=32)
    p.set_defaults(func=_cmd_plate)

    p = sub.add_parser("simulate", help="Monte-Carlo validation")
    _add_common(p)
    p.add_argument("--n", type=_n_list, default=None,
                   help="multiprogramming level to simulate; a "
                   "comma-separated list (e.g. 20,24,28) sweeps the "
                   "grid through one shared worker pool (with "
                   "--faults: streams per disk, default the healthy "
                   "analytic limit)")
    p.add_argument("--rounds", type=int, default=20_000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes for the Monte-Carlo fan-out "
                   "(0 = all cores; results are bit-identical for any "
                   "value; default: historical serial path)")
    p.add_argument("--perror", action="store_true",
                   help="also estimate the stream-level p_error")
    p.add_argument("-m", type=int, default=1200)
    p.add_argument("-g", type=int, default=12)
    p.add_argument("--runs", type=int, default=50)
    p.add_argument("--faults", default=None, metavar="SCHEDULE.toml",
                   help="run the event-driven mirrored server through "
                   "this fault schedule instead of the vectorised "
                   "Monte-Carlo (see docs/ROBUSTNESS.md)")
    p.add_argument("--engine", choices=("event", "kernel"),
                   default="event",
                   help="scenario backend: the exact event-driven "
                   "server (default) or the scenario compiler on the "
                   "vectorised farm sweep kernel (statistically "
                   "equivalent, much faster; handles any fault "
                   "schedule plus --trick and --farm-spec)")
    p.add_argument("--trick", action="append", default=None,
                   metavar="START:END:NFF:K",
                   help="trick-mode segment: during rounds [START, "
                   "END) each disk serves NFF scan-mode fast-forward "
                   "streams at K-times speed (repeatable; --engine "
                   "kernel only)")
    p.add_argument("--farm-spec", default=None,
                   metavar="PRESET[,PRESET...]",
                   help="heterogeneous farm layout, one disk preset "
                   "per disk in mirror order (overrides --disks; "
                   "presets: quantum_viking_2_1, single_zone_viking, "
                   "seagate_hawk_1lp, modern_av_drive)")
    p.add_argument("--profile", action="store_true",
                   help="profile the run with cProfile and print the "
                   "top cumulative hot spots")
    p.add_argument("--disks", type=int, default=2,
                   help="farm size for --faults (even, mirrored pairs)")
    p.add_argument("--server-rounds", type=int, default=300,
                   help="rounds to run the event-driven server under "
                   "--faults")
    p.add_argument("--delta", type=float, default=0.01,
                   help="round-lateness tolerance for the degraded-mode "
                   "bound under --faults")
    p.add_argument("--no-shed", action="store_true",
                   help="disable load shedding under --faults (the "
                   "survivor absorbs the full doubled batch)")
    p.add_argument("--shed-mode", choices=("pause", "drop"),
                   default="pause",
                   help="shed by pausing (resume on recovery) or "
                   "dropping streams")
    p.add_argument("--rejoin-rounds", type=int, default=0,
                   help="--engine kernel with --shed-mode drop: ramp "
                   "the recovered-phase population from the shed level "
                   "back to n_per_disk over this many rounds (0: hold "
                   "the shed level; see docs/ROBUSTNESS.md)")
    p.add_argument("--trace", default=None, metavar="TRACE.jsonl",
                   help="record a structured event trace to this JSONL "
                   "file (inspect with 'repro observe')")
    p.add_argument("--metrics", default=None, metavar="METRICS.json",
                   help="write the run's metrics registry (counters, "
                   "gauges, histograms) to this JSON file")
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser("worstcase",
                       help="deterministic worst case (eq. 4.1)")
    _add_common(p)
    p.set_defaults(func=_cmd_worstcase)

    p = sub.add_parser("approx",
                       help="multi-zone Gamma approximation quality")
    _add_common(p)
    p.add_argument("--t-lo", type=float, default=5.0,
                   help="range start in ms")
    p.add_argument("--t-hi", type=float, default=100.0,
                   help="range end in ms")
    p.set_defaults(func=_cmd_approx)

    p = sub.add_parser("sensitivity",
                       help="N_max sensitivity to parameters")
    _add_common(p)
    p.add_argument("--epsilon", type=float, default=0.01)
    p.add_argument("-m", type=int, default=1200)
    p.add_argument("-g", type=int, default=12)
    p.add_argument("--rel-delta", type=float, default=0.10)
    p.set_defaults(func=_cmd_sensitivity)

    p = sub.add_parser("tune", help="round-length knee finder")
    _add_common(p)
    p.add_argument("--playback", type=float, default=1200.0,
                   help="stream length in seconds")
    p.set_defaults(func=_cmd_tune)

    p = sub.add_parser("fit",
                       help="fit size laws to a fragment trace CSV")
    p.add_argument("trace", help="trace file from workload.trace_io")
    p.add_argument("--cap", type=float, default=None,
                   help="truncation cap in bytes for heavy tails")
    p.set_defaults(func=_cmd_fit)

    p = sub.add_parser("report",
                       help="write the reproduction report markdown")
    p.add_argument("--output", default="reproduction_report.md")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("cache",
                       help="inspect or clear the persistent bound "
                       "cache")
    p.add_argument("action", choices=("stats", "clear", "path"),
                   help="stats: counters and location; clear: drop all "
                   "persisted bounds; path: print the sqlite file path")
    p.add_argument("--dir", default=None, metavar="DIR",
                   help="operate on this cache directory instead of "
                   "the default")
    p.set_defaults(func=_cmd_cache)

    p = sub.add_parser("serve",
                       help="run the live admission-control daemon "
                       "(HTTP /admit /release /fault /metrics "
                       "/healthz /state)")
    _add_common(p)
    p.add_argument("--epsilon", type=float, default=0.01,
                   help="stream-error tolerance for the admission "
                   "table")
    p.add_argument("--delta", type=float, default=0.01,
                   help="round-lateness tolerance for the "
                   "degraded-mode bound")
    p.add_argument("-m", type=int, default=1200,
                   help="rounds per stream (playback length)")
    p.add_argument("-g", type=int, default=12,
                   help="tolerated glitches per stream")
    p.add_argument("--disks", type=int, default=2,
                   help="farm size the daemon admits against")
    p.add_argument("--shed-mode", choices=("pause", "drop"),
                   default="pause",
                   help="shed by pausing (resume on recovery) or "
                   "dropping streams")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default: loopback)")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (0: ephemeral; see --port-file)")
    p.add_argument("--port-file", default=None, metavar="FILE",
                   help="write the bound port here (for scripts using "
                   "--port 0)")
    p.add_argument("--fault-schedule", default=None,
                   metavar="SCHEDULE.toml",
                   help="replay this fault schedule against the live "
                   "daemon (times scaled by --time-scale)")
    p.add_argument("--time-scale", type=float, default=1.0,
                   help="wall seconds per schedule second when "
                   "replaying --fault-schedule")
    p.add_argument("--duration", type=float, default=None,
                   help="serve for this many seconds then exit "
                   "(default: until interrupted)")
    p.add_argument("--no-preload", action="store_true",
                   help="skip bulk-loading the persistent bound cache "
                   "at startup")
    p.add_argument("--adaptive", action="store_true",
                   help="run the closed-loop controller: retune "
                   "(N_max, t) online from observed round lateness "
                   "(docs/ROBUSTNESS.md)")
    p.add_argument("--guard-band", type=float, default=0.25,
                   help="fraction of the analytic bound reserved as "
                   "early-warning margin before the controller "
                   "tightens (default: 0.25)")
    p.add_argument("--round-interval", type=float, default=None,
                   metavar="SECONDS",
                   help="probe one service round this often "
                   "(default: 0.2 with --adaptive, off otherwise)")
    p.add_argument("--snapshot-path", default=None,
                   metavar="SNAPSHOT.json",
                   help="crash-safe ledger snapshot: restored on "
                   "start, refreshed on faults/retunes, written "
                   "clean on shutdown")
    p.add_argument("--probe-seed", type=int, default=0,
                   help="seed of the deterministic round probe")
    p.add_argument("--metrics", default=None, metavar="METRICS.json",
                   help="write the final metrics registry to this "
                   "JSON file on shutdown")
    p.add_argument("--trace", default=None, metavar="TRACE.jsonl",
                   help="record spans + round observations to this "
                   "JSONL file (reconstruct admit trees with 'repro "
                   "observe --spans', replay the budget with "
                   "'repro slo')")
    p.add_argument("--slo-fast-window", type=int, default=32,
                   metavar="ROUNDS",
                   help="fast burn-rate window of the epsilon error "
                   "budget, in probed rounds (storm detector -> "
                   "page)")
    p.add_argument("--slo-slow-window", type=int, default=256,
                   metavar="ROUNDS",
                   help="slow burn-rate window in probed rounds "
                   "(leak detector -> warn)")
    p.add_argument("--shards", type=int, default=0, metavar="S",
                   help="admission-counter stripes in the hot path "
                   "(0: auto, about 2x the CPU count; 1: the legacy "
                   "single-lock behaviour)")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("admit",
                       help="client for a running 'repro serve' "
                       "daemon: drive admissions, inject faults, "
                       "scrape metrics")
    p.add_argument("--url", default=None,
                   help="daemon base URL (e.g. http://127.0.0.1:8080)")
    p.add_argument("--port-file", default=None, metavar="FILE",
                   help="read the daemon port from this file "
                   "(written by 'repro serve --port-file')")
    p.add_argument("--count", type=int, default=0, metavar="N",
                   help="attempt N admissions")
    p.add_argument("--batch", type=int, default=0, metavar="K",
                   help="use the batch endpoints, K tickets per "
                   "request (with --count/--release; 0: one "
                   "request per ticket)")
    p.add_argument("--until-reject", action="store_true",
                   help="admit until the daemon rejects; print the "
                   "count")
    p.add_argument("--release", type=int, default=0, metavar="N",
                   help="release N streams (oldest first)")
    p.add_argument("--fault", default=None,
                   choices=("disk_fail", "disk_recover", "slow_disk"),
                   help="inject this fault event before admitting")
    p.add_argument("--disk", type=int, default=0,
                   help="disk index for --fault")
    p.add_argument("--factor", type=float, default=1.0,
                   help="service drift factor for --fault slow_disk")
    p.add_argument("--scrape", action="store_true",
                   help="print the daemon's /metrics exposition")
    p.add_argument("--state", action="store_true",
                   help="print the daemon's /state JSON")
    p.add_argument("--control", action="store_true",
                   help="print the daemon's /control JSON (window "
                   "aggregates, controller state)")
    p.add_argument("--snapshot", action="store_true",
                   help="ask the daemon to persist its crash-safe "
                   "snapshot now")
    p.set_defaults(func=_cmd_admit)

    p = sub.add_parser("observe",
                       help="summarise a recorded trace: slow sweeps, "
                       "glitch timeline, bound vs observed")
    p.add_argument("trace", metavar="TRACE.jsonl",
                   help="trace file from 'repro simulate --trace'")
    p.add_argument("--top", type=int, default=10,
                   help="how many of the slowest sweeps to list")
    p.add_argument("--window", type=int, default=None, metavar="N",
                   help="also show bound-vs-observed over trailing "
                   "N-round windows (the live controller's view)")
    p.add_argument("--validate", action="store_true",
                   help="exit non-zero when the trace fails schema "
                   "validation")
    p.add_argument("--spans", action="store_true",
                   help="reconstruct span trees (client -> HTTP -> "
                   "admission -> ledger) and print the critical path "
                   "of the slowest tree per root name")
    p.set_defaults(func=_cmd_observe)

    p = sub.add_parser("slo",
                       help="offline epsilon error-budget report: "
                       "replay a recorded trace through the "
                       "burn-rate tracker")
    p.add_argument("trace", metavar="TRACE.jsonl",
                   help="trace file from 'repro serve --trace' or "
                   "'repro simulate --trace'")
    p.add_argument("--epsilon", type=float, default=None,
                   help="stream-error tolerance (default: the value "
                   "stamped in the trace header, else 0.01)")
    p.add_argument("--delta", type=float, default=None,
                   help="degraded-mode tolerance (default: header, "
                   "else 0.01)")
    p.add_argument("-m", type=int, default=None,
                   help="rounds per stream (default: header, else "
                   "1200)")
    p.add_argument("-g", type=int, default=None,
                   help="tolerated glitches per stream (default: "
                   "header, else 12)")
    p.add_argument("--fast-window", type=int, default=32,
                   metavar="ROUNDS",
                   help="fast burn-rate window in rounds")
    p.add_argument("--slow-window", type=int, default=256,
                   metavar="ROUNDS",
                   help="slow burn-rate window in rounds")
    p.add_argument("--page-burn", type=float, default=6.0,
                   help="fast-window burn rate that pages")
    p.add_argument("--warn-burn", type=float, default=1.0,
                   help="slow-window burn rate that warns (1.0 = "
                   "exactly unsustainable)")
    p.set_defaults(func=_cmd_slo)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir is not None:
        set_persistent_cache_dir(cache_dir)
    disabled = bool(getattr(args, "no_cache", False))
    if disabled:
        set_cache_enabled(False)
    try:
        return args.func(args)
    except Exception as exc:  # surface library errors as CLI errors
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if disabled:
            set_cache_enabled(True)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
