"""Memoization layer for the analytic admission pipeline.

Admission scans evaluate the same Chernoff optimisations over and over:
``n_max_plate`` probes ``b_late(n, t)`` for many ``n``, ``b_glitch``
sums ``b_late(k, t)`` over ``k <= n``, and §5 lookup-table builds repeat
both for a grid of tolerance thresholds.  The paper's remedy is
precomputation ("we suggest using a lookup table with precomputed
values of N_max"); this module supplies the machinery:

- :func:`fingerprint` -- a stable content hash of model parameters
  (disk spec + fragment-law params + ``t``), so results can be shared
  across model *instances* built from the same configuration.
- :class:`BoundCache` / :func:`get_cache` -- a process-wide memo of
  ``ChernoffResult`` values keyed by ``(model fingerprint, n, t)``,
  with hit/miss statistics and a kill switch (CLI ``--no-cache``).
- :func:`bisect_max_n` -- the monotone threshold search used by the
  ``N_max`` solvers: exponential search plus bisection, O(log n_cap)
  predicate probes instead of a linear scan, with a documented
  full-scan fallback for non-monotone predicates.

Everything here is deliberately dependency-free within the package so
that ``repro.core`` modules can import it without cycles.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import math
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "fingerprint",
    "instance_fingerprint",
    "canonical_threshold",
    "CacheStats",
    "BoundCache",
    "get_cache",
    "clear_cache",
    "cache_stats",
    "set_cache_enabled",
    "cache_disabled",
    "bisect_max_n",
]


# ----------------------------------------------------------------------
# Fingerprinting
# ----------------------------------------------------------------------

def _canonical(obj) -> str:
    """Deterministic, collision-resistant text encoding of a parameter
    bundle.  Floats are encoded exactly (``float.hex``) so nearby but
    distinct configurations never alias."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return repr(obj)
    if isinstance(obj, float):
        return obj.hex()
    if isinstance(obj, np.floating):
        return float(obj).hex()
    if isinstance(obj, np.integer):
        return repr(int(obj))
    if isinstance(obj, np.ndarray):
        digest = hashlib.sha1(np.ascontiguousarray(obj).tobytes())
        return f"ndarray({obj.dtype},{obj.shape},{digest.hexdigest()})"
    if isinstance(obj, (tuple, list)):
        inner = ",".join(_canonical(x) for x in obj)
        return f"[{inner}]"
    if isinstance(obj, dict):
        inner = ",".join(
            f"{_canonical(k)}:{_canonical(v)}"
            for k, v in sorted(obj.items(), key=lambda kv: repr(kv[0])))
        return f"{{{inner}}}"
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        inner = ",".join(
            f"{f.name}={_canonical(getattr(obj, f.name))}"
            for f in dataclasses.fields(obj) if f.compare)
        return f"{type(obj).__name__}({inner})"
    if hasattr(obj, "__dict__"):
        inner = ",".join(
            f"{name}={_canonical(value)}"
            for name, value in sorted(vars(obj).items())
            if not callable(value))
        return f"{type(obj).__name__}({inner})"
    return repr(obj)


def fingerprint(*parts) -> str:
    """Stable hash of a heterogeneous parameter bundle.

    Two calls with equal (by content) parts return the same string in
    any process on any platform; use it to key cached results by model
    configuration rather than object identity.
    """
    payload = ";".join(_canonical(p) for p in parts)
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()


_INSTANCE_COUNTER = itertools.count()
_INSTANCE_LOCK = threading.Lock()


def instance_fingerprint(tag: str) -> str:
    """A fingerprint unique to one object lifetime.

    Fallback for models built from opaque callables (e.g. a custom
    ``seek_bound``): caching still works for the instance itself but is
    never shared across instances, which is the only safe default when
    the configuration cannot be hashed.
    """
    with _INSTANCE_LOCK:
        serial = next(_INSTANCE_COUNTER)
    return f"instance:{tag}:{serial}"


def canonical_threshold(value: float) -> float:
    """Canonical dict-key representation of a tolerance threshold.

    Thresholds arrive as floats from CLI parsing, YAML-ish configs and
    arithmetic (``1 - 0.99``); keying lookup tables on the raw bits
    makes ``0.01`` and ``0.010000000000000002`` distinct entries.  We
    round to 12 significant digits -- far below any meaningful
    tolerance resolution, far above double-precision noise.
    """
    if not (isinstance(value, (int, float)) and math.isfinite(value)):
        raise ConfigurationError(
            f"threshold must be a finite number, got {value!r}")
    return float(f"{float(value):.12g}")


# ----------------------------------------------------------------------
# The bound cache
# ----------------------------------------------------------------------

@dataclass
class CacheStats:
    """Counters for one :class:`BoundCache`.

    ``evaluations`` is the number of times the underlying computation
    actually ran (cache misses plus disabled-cache calls) -- the
    quantity the A20 bench compares cached vs uncached.
    """

    hits: int = 0
    misses: int = 0
    uncached: int = 0

    @property
    def evaluations(self) -> int:
        return self.misses + self.uncached

    def snapshot(self) -> "CacheStats":
        """Independent copy of the counters at this instant."""
        return CacheStats(hits=self.hits, misses=self.misses,
                          uncached=self.uncached)


@dataclass
class BoundCache:
    """Process-wide memo for expensive pure computations.

    Keys must be hashable and should start with a model fingerprint so
    that distinct configurations never collide.  The cache is bounded:
    once ``max_entries`` is reached the oldest insertions are evicted
    (FIFO -- admission scans have strong locality, LRU buys nothing).
    """

    enabled: bool = True
    max_entries: int = 200_000
    stats: CacheStats = field(default_factory=CacheStats)
    _store: dict = field(default_factory=dict, repr=False)

    def get_or_compute(self, key, compute):
        """Return the cached value for ``key``, computing it on miss."""
        if not self.enabled:
            self.stats.uncached += 1
            return compute()
        try:
            value = self._store[key]
        except KeyError:
            pass
        else:
            self.stats.hits += 1
            return value
        self.stats.misses += 1
        value = compute()
        if len(self._store) >= self.max_entries:
            self._store.pop(next(iter(self._store)))
        self._store[key] = value
        return value

    def clear(self) -> None:
        """Drop every entry (statistics are reset too)."""
        self._store.clear()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._store)


_GLOBAL_CACHE = BoundCache()


def get_cache() -> BoundCache:
    """The process-wide bound cache used by the analytic models."""
    return _GLOBAL_CACHE


def clear_cache() -> None:
    """Drop all globally cached bounds and reset the statistics."""
    _GLOBAL_CACHE.clear()


def cache_stats() -> CacheStats:
    """Snapshot of the global cache counters."""
    return _GLOBAL_CACHE.stats.snapshot()


def set_cache_enabled(enabled: bool) -> None:
    """Globally enable/disable memoization (CLI ``--no-cache``)."""
    _GLOBAL_CACHE.enabled = bool(enabled)


@contextmanager
def cache_disabled():
    """Context manager running its body with the global cache off."""
    previous = _GLOBAL_CACHE.enabled
    _GLOBAL_CACHE.enabled = False
    try:
        yield
    finally:
        _GLOBAL_CACHE.enabled = previous


# ----------------------------------------------------------------------
# Monotone threshold search
# ----------------------------------------------------------------------

def bisect_max_n(predicate, n_cap: int, *, full_scan: bool = False,
                 verify_above: int = 0) -> int:
    """Largest ``n`` in ``[1, n_cap]`` with ``predicate(n)`` true, for
    predicates true on a prefix (monotone in ``n``).

    Exponential search locates the first failure, bisection refines it:
    O(log n_cap) probes instead of the O(n*) linear scan, and each
    probed ``n`` is evaluated exactly once.

    The prefix assumption is essential: a non-monotone predicate makes
    bisection silently wrong.  Two escape hatches:

    - ``full_scan=True`` evaluates every ``n`` up to ``n_cap`` and
      returns the true maximum (exact for *any* predicate).
    - ``verify_above=k`` probes ``k`` extra points spread between the
      found boundary and ``n_cap``; if any is true, non-monotonicity is
      detected and the helper transparently falls back to the full
      scan.  Detection is necessarily best-effort -- only probed points
      can contradict the assumption.

    Returns 0 when even ``n = 1`` fails (under the prefix assumption;
    with ``full_scan`` only when no ``n`` passes at all).
    """
    if n_cap < 1:
        raise ConfigurationError(f"n_cap must be >= 1, got {n_cap!r}")
    if verify_above < 0:
        raise ConfigurationError(
            f"verify_above must be >= 0, got {verify_above!r}")

    memo: dict[int, bool] = {}

    def probe(n: int) -> bool:
        if n not in memo:
            memo[n] = bool(predicate(n))
        return memo[n]

    def exhaustive() -> int:
        best = 0
        for n in range(1, n_cap + 1):
            if probe(n):
                best = n
        return best

    if full_scan:
        return exhaustive()

    if not probe(1):
        return 0

    # Exponential phase: double until the predicate fails or the cap is
    # reached.  ``lo`` is always a known-true point.
    lo = 1
    while lo < n_cap:
        nxt = min(lo * 2, n_cap)
        if not probe(nxt):
            break
        lo = nxt
    if lo == n_cap:
        return n_cap

    # Bisection phase on (lo, hi]: lo true, hi false.
    hi = min(lo * 2, n_cap)
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if probe(mid):
            lo = mid
        else:
            hi = mid
    best = lo

    if verify_above and best < n_cap:
        checks = np.unique(np.geomspace(
            best + 1, n_cap, num=verify_above).astype(int))
        if any(probe(int(n)) for n in checks if n > best):
            # The prefix assumption is broken; fall back to exactness.
            return exhaustive()
    return best
