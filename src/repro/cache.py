"""Memoization layer for the analytic admission pipeline.

Admission scans evaluate the same Chernoff optimisations over and over:
``n_max_plate`` probes ``b_late(n, t)`` for many ``n``, ``b_glitch``
sums ``b_late(k, t)`` over ``k <= n``, and §5 lookup-table builds repeat
both for a grid of tolerance thresholds.  The paper's remedy is
precomputation ("we suggest using a lookup table with precomputed
values of N_max"); this module supplies the machinery:

- :func:`fingerprint` -- a stable content hash of model parameters
  (disk spec + fragment-law params + ``t``), so results can be shared
  across model *instances* built from the same configuration.
- :class:`BoundCache` / :func:`get_cache` -- a process-wide memo of
  ``ChernoffResult`` values keyed by ``(model fingerprint, n, t)``,
  with hit/miss statistics and a kill switch (CLI ``--no-cache``).
- :class:`PersistentCache` -- an on-disk (sqlite) store layered under
  the in-process memo, so ``AdmissionTable`` builds and
  ``bisect_max_n`` probes warm-start across process restarts and pool
  workers (the §5 operations story: an admission server answering
  ``N_max`` queries at interactive latency from a warm cache).  Keyed
  by the same content fingerprints, versioned, corruption-tolerant;
  location from ``REPRO_CACHE_DIR`` (default ``~/.cache/repro``),
  disabled with ``REPRO_PERSISTENT_CACHE=0``; inspected with the
  ``repro cache {stats,clear,path}`` CLI.
- :func:`bisect_max_n` -- the monotone threshold search used by the
  ``N_max`` solvers: exponential search plus bisection, O(log n_cap)
  predicate probes instead of a linear scan, with a documented
  full-scan fallback for non-monotone predicates.

Everything here avoids importing other ``repro`` modules beyond
:mod:`repro.errors` and the stdlib-only :mod:`repro.obs` layer, so
that ``repro.core`` can import it without cycles; persisted dataclass
values are resolved lazily by module path.
"""

from __future__ import annotations

import dataclasses
import hashlib
import importlib
import itertools
import json
import math
import os
import sqlite3
import threading
import time
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import ConfigurationError
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.trace import get_tracer

__all__ = [
    "fingerprint",
    "instance_fingerprint",
    "canonical_threshold",
    "CacheStats",
    "BoundCache",
    "get_cache",
    "clear_cache",
    "cache_stats",
    "set_cache_enabled",
    "cache_disabled",
    "PersistentCache",
    "PersistentCacheStats",
    "default_cache_dir",
    "persistent_cache_enabled",
    "get_persistent_cache",
    "set_persistent_cache_dir",
    "reset_persistent_cache",
    "publish_cache_metrics",
    "bisect_max_n",
]


# ----------------------------------------------------------------------
# Fingerprinting
# ----------------------------------------------------------------------

def _canonical(obj) -> str:
    """Deterministic, collision-resistant text encoding of a parameter
    bundle.  Floats are encoded exactly (``float.hex``) so nearby but
    distinct configurations never alias."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return repr(obj)
    if isinstance(obj, float):
        return obj.hex()
    if isinstance(obj, np.floating):
        return float(obj).hex()
    if isinstance(obj, np.integer):
        return repr(int(obj))
    if isinstance(obj, np.ndarray):
        digest = hashlib.sha1(np.ascontiguousarray(obj).tobytes())
        return f"ndarray({obj.dtype},{obj.shape},{digest.hexdigest()})"
    if isinstance(obj, (tuple, list)):
        inner = ",".join(_canonical(x) for x in obj)
        return f"[{inner}]"
    if isinstance(obj, dict):
        inner = ",".join(
            f"{_canonical(k)}:{_canonical(v)}"
            for k, v in sorted(obj.items(), key=lambda kv: repr(kv[0])))
        return f"{{{inner}}}"
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        inner = ",".join(
            f"{f.name}={_canonical(getattr(obj, f.name))}"
            for f in dataclasses.fields(obj) if f.compare)
        return f"{type(obj).__name__}({inner})"
    if hasattr(obj, "__dict__"):
        inner = ",".join(
            f"{name}={_canonical(value)}"
            for name, value in sorted(vars(obj).items())
            if not callable(value))
        return f"{type(obj).__name__}({inner})"
    return repr(obj)


def fingerprint(*parts) -> str:
    """Stable hash of a heterogeneous parameter bundle.

    Two calls with equal (by content) parts return the same string in
    any process on any platform; use it to key cached results by model
    configuration rather than object identity.
    """
    payload = ";".join(_canonical(p) for p in parts)
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()


_INSTANCE_COUNTER = itertools.count()
_INSTANCE_LOCK = threading.Lock()


def instance_fingerprint(tag: str) -> str:
    """A fingerprint unique to one object lifetime.

    Fallback for models built from opaque callables (e.g. a custom
    ``seek_bound``): caching still works for the instance itself but is
    never shared across instances, which is the only safe default when
    the configuration cannot be hashed.
    """
    with _INSTANCE_LOCK:
        serial = next(_INSTANCE_COUNTER)
    return f"instance:{tag}:{serial}"


def canonical_threshold(value: float) -> float:
    """Canonical dict-key representation of a tolerance threshold.

    Thresholds arrive as floats from CLI parsing, YAML-ish configs and
    arithmetic (``1 - 0.99``); keying lookup tables on the raw bits
    makes ``0.01`` and ``0.010000000000000002`` distinct entries.  We
    round to 12 significant digits -- far below any meaningful
    tolerance resolution, far above double-precision noise.
    """
    if not (isinstance(value, (int, float)) and math.isfinite(value)):
        raise ConfigurationError(
            f"threshold must be a finite number, got {value!r}")
    return float(f"{float(value):.12g}")


# ----------------------------------------------------------------------
# The persistent (on-disk) layer
# ----------------------------------------------------------------------

#: Bump when the row encoding changes; a mismatched store is dropped and
#: rebuilt rather than misread.  v2 added the ``last_access`` column
#: backing LRU eviction (v1 stores are rebuilt -- they only ever held
#: recomputable bound values).
SCHEMA_VERSION = 2

#: Default row capacity of the on-disk store; beyond it the
#: least-recently-*accessed* entries are evicted on write.  Sized so a
#: store serving many admission sweeps stays a few tens of MB.
DEFAULT_PERSISTENT_MAX_ENTRIES = 100_000

CACHE_DIR_ENV = "REPRO_CACHE_DIR"
PERSISTENT_CACHE_ENV = "REPRO_PERSISTENT_CACHE"

_DB_FILENAME = "bounds.sqlite"


def default_cache_dir() -> Path:
    """Resolve the on-disk cache directory.

    ``REPRO_CACHE_DIR`` wins; otherwise ``$XDG_CACHE_HOME/repro`` or
    ``~/.cache/repro``.
    """
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro"


def persistent_cache_enabled() -> bool:
    """False when ``REPRO_PERSISTENT_CACHE`` is 0/false/off/no."""
    raw = os.environ.get(PERSISTENT_CACHE_ENV, "1").strip().lower()
    return raw not in ("0", "false", "off", "no")


def _encode_value(value) -> str | None:
    """JSON payload for a cacheable value, or ``None`` if the type is
    not persistable (such values stay memory-only).

    Supported: JSON scalars, and flat dataclasses (scalar fields only)
    such as :class:`repro.core.chernoff.ChernoffResult` -- encoded with
    their import path so this module never has to import them.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return json.dumps({"kind": "scalar", "value": value})
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {}
        for f in dataclasses.fields(value):
            member = getattr(value, f.name)
            if not (member is None
                    or isinstance(member, (bool, int, float, str))):
                return None
            fields[f.name] = member
        cls = type(value)
        if "." in cls.__qualname__:  # nested class: not importable by name
            return None
        return json.dumps({"kind": "dataclass", "module": cls.__module__,
                           "name": cls.__qualname__, "fields": fields})
    return None


def _decode_value(payload: str):
    """Inverse of :func:`_encode_value`; raises on any malformed or
    suspicious payload (callers treat that as a corrupt entry)."""
    data = json.loads(payload)
    kind = data["kind"]
    if kind == "scalar":
        return data["value"]
    if kind == "dataclass":
        module = str(data["module"])
        if not module.startswith("repro."):
            raise ValueError(f"refusing to import {module!r}")
        cls = getattr(importlib.import_module(module), str(data["name"]))
        if not dataclasses.is_dataclass(cls):
            raise ValueError(f"{module}.{data['name']} is not a dataclass")
        return cls(**data["fields"])
    raise ValueError(f"unknown payload kind {kind!r}")


def _persistable_key(key) -> bool:
    """True when ``key`` survives a round-trip to another process.

    Keys containing an :func:`instance_fingerprint` token are rejected:
    the serial number is unique to one object lifetime, so persisting it
    could only ever produce dead entries (or, across restarts, false
    hits on a different opaque model).
    """
    if isinstance(key, str):
        return not key.startswith("instance:")
    if key is None or isinstance(key, (bool, int, float)):
        return True
    if isinstance(key, tuple):
        return all(_persistable_key(part) for part in key)
    return False


@dataclass
class PersistentCacheStats:
    """Counters of one process's traffic to a :class:`PersistentCache`."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    errors: int = 0
    #: Rows dropped by the LRU policy to stay under ``max_entries``.
    evictions: int = 0
    #: Rows bulk-loaded into memory by :meth:`PersistentCache.preload`.
    preloaded: int = 0

    def snapshot(self) -> "PersistentCacheStats":
        """Independent copy of the counters at this instant."""
        return PersistentCacheStats(hits=self.hits, misses=self.misses,
                                    writes=self.writes,
                                    errors=self.errors,
                                    evictions=self.evictions,
                                    preloaded=self.preloaded)


class PersistentCache:
    """Fingerprint-keyed on-disk store for bound-cache values.

    A single sqlite file (WAL mode, so pool workers and concurrent CLI
    invocations can read and write simultaneously).  All failure modes
    degrade gracefully: a corrupt or version-mismatched store is dropped
    and rebuilt; an unwritable location disables the layer for the
    process (counted in ``stats.errors``) instead of raising into the
    admission pipeline.  Connections are re-opened after ``fork`` --
    sqlite handles must not cross process boundaries.
    """

    def __init__(self, directory: str | Path | None = None,
                 max_entries: int = DEFAULT_PERSISTENT_MAX_ENTRIES
                 ) -> None:
        if max_entries < 1:
            raise ConfigurationError(
                f"max_entries must be >= 1, got {max_entries!r}")
        self.directory = (Path(directory).expanduser() if directory
                          else default_cache_dir())
        self.path = self.directory / _DB_FILENAME
        #: LRU capacity: every read refreshes its row's ``last_access``
        #: stamp, and writes evict the stalest rows past this count.
        self.max_entries = int(max_entries)
        self.stats = PersistentCacheStats()
        self._lock = threading.Lock()
        self._conn: sqlite3.Connection | None = None
        self._pid: int | None = None
        self._broken = False
        #: Warm-start read layer: decoded rows bulk-loaded by
        #: :meth:`preload`, consulted by :meth:`get` before sqlite.
        self._preloaded: dict[str, object] | None = None

    # -- connection management -----------------------------------------
    def _init_schema(self, conn: sqlite3.Connection) -> None:
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("CREATE TABLE IF NOT EXISTS meta ("
                     "key TEXT PRIMARY KEY, value TEXT NOT NULL)")
        row = conn.execute(
            "SELECT value FROM meta WHERE key='schema_version'").fetchone()
        if row is None or row[0] != str(SCHEMA_VERSION):
            conn.execute("DROP TABLE IF EXISTS bounds")
            conn.execute("DELETE FROM meta")
            conn.execute("INSERT INTO meta VALUES ('schema_version', ?)",
                         (str(SCHEMA_VERSION),))
        conn.execute("CREATE TABLE IF NOT EXISTS bounds ("
                     "key TEXT PRIMARY KEY, value TEXT NOT NULL, "
                     "last_access REAL NOT NULL DEFAULT 0)")
        conn.execute("CREATE INDEX IF NOT EXISTS bounds_last_access "
                     "ON bounds (last_access)")
        conn.commit()

    def _open(self) -> sqlite3.Connection:
        self.directory.mkdir(parents=True, exist_ok=True)
        conn = sqlite3.connect(str(self.path), timeout=5.0,
                               check_same_thread=False)
        try:
            self._init_schema(conn)
        except BaseException:
            conn.close()
            raise
        return conn

    def _connect(self) -> sqlite3.Connection | None:
        """Live connection for this process, or ``None`` when the layer
        is broken.  Caller holds ``self._lock``."""
        if self._broken:
            return None
        if self._conn is not None and self._pid == os.getpid():
            return self._conn
        if self._conn is not None:  # inherited across fork: abandon it
            self._conn = None
        try:
            conn = self._open()
        except (sqlite3.Error, OSError):
            # One recovery attempt: treat the file as corrupt, rebuild.
            self.stats.errors += 1
            try:
                self.path.unlink(missing_ok=True)
                conn = self._open()
            except (sqlite3.Error, OSError) as exc:
                # Unwritable location (read-only directory, disk full,
                # REPRO_CACHE_DIR pointing at a file, ...): disable the
                # on-disk layer for this process and fall back to the
                # in-memory BoundCache.  Warn exactly once -- admission
                # solves must never crash on cache plumbing.
                self.stats.errors += 1
                self._broken = True
                warnings.warn(
                    f"persistent bound cache at {self.path} is "
                    f"unavailable ({type(exc).__name__}: {exc}); "
                    f"falling back to the in-memory cache for this "
                    f"process",
                    RuntimeWarning, stacklevel=3)
                return None
        self._conn, self._pid = conn, os.getpid()
        return conn

    # -- store operations ----------------------------------------------
    def preload(self, limit: int | None = None) -> int:
        """Bulk-load the most recently accessed rows into memory.

        The §5 operations story wants a *warm* admission server: after
        ``preload()`` every hit on a loaded row is a dict lookup -- no
        sqlite round-trip, no LRU-stamp write -- so the daemon answers
        table builds and ``N_max`` probes at interactive latency right
        after a restart.  ``limit`` caps how many rows are loaded
        (default: all, up to ``max_entries``); corrupt rows are skipped
        and counted in ``stats.errors``.  Returns the number of rows
        loaded.  Writes through :meth:`put` keep the loaded view
        coherent; entries evicted on disk may linger here until the
        next ``preload`` or :meth:`clear` (stale *presence* is safe --
        values are immutable functions of their key).
        """
        if limit is not None and limit < 1:
            raise ConfigurationError(
                f"preload limit must be >= 1, got {limit!r}")
        with self._lock:
            conn = self._connect()
            if conn is None:
                return 0
            loaded: dict[str, object] = {}
            try:
                rows = conn.execute(
                    "SELECT key, value FROM bounds "
                    "ORDER BY last_access DESC, key ASC LIMIT ?",
                    (limit if limit is not None else self.max_entries,)
                ).fetchall()
            except sqlite3.Error:
                self.stats.errors += 1
                return 0
            for key_str, payload in rows:
                try:
                    loaded[key_str] = _decode_value(payload)
                except Exception:
                    self.stats.errors += 1
            self._preloaded = loaded
            self.stats.preloaded += len(loaded)
            return len(loaded)

    def get(self, key_str: str):
        """Decoded value for ``key_str``, or ``None`` on miss (corrupt
        entries are evicted and count as misses)."""
        with self._lock:
            if self._preloaded is not None:
                value = self._preloaded.get(key_str)
                if value is not None:
                    self.stats.hits += 1
                    return value
            conn = self._connect()
            if conn is None:
                return None
            try:
                row = conn.execute(
                    "SELECT value FROM bounds WHERE key=?",
                    (key_str,)).fetchone()
            except sqlite3.Error:
                self.stats.errors += 1
                return None
            if row is None:
                self.stats.misses += 1
                return None
            try:
                value = _decode_value(row[0])
            except Exception:
                self.stats.errors += 1
                try:
                    conn.execute("DELETE FROM bounds WHERE key=?",
                                 (key_str,))
                    conn.commit()
                except sqlite3.Error:
                    pass
                self.stats.misses += 1
                return None
            # Refresh the LRU stamp; a hit must protect its row from
            # eviction.  Best-effort: a locked store just skips it.
            try:
                conn.execute(
                    "UPDATE bounds SET last_access=? WHERE key=?",
                    (time.time(), key_str))
                conn.commit()
            except sqlite3.Error:
                pass
            self.stats.hits += 1
            return value

    def put(self, key_str: str, value) -> bool:
        """Persist ``value`` under ``key_str``; False when the value is
        not persistable or the store is unavailable."""
        payload = _encode_value(value)
        if payload is None:
            return False
        with self._lock:
            conn = self._connect()
            if conn is None:
                return False
            try:
                conn.execute(
                    "INSERT OR REPLACE INTO bounds VALUES (?, ?, ?)",
                    (key_str, payload, time.time()))
                excess = int(conn.execute(
                    "SELECT COUNT(*) FROM bounds").fetchone()[0]
                    ) - self.max_entries
                if excess > 0:
                    # LRU eviction: drop the least-recently-accessed
                    # rows (key as tie-break for determinism).
                    conn.execute(
                        "DELETE FROM bounds WHERE key IN ("
                        "SELECT key FROM bounds "
                        "ORDER BY last_access ASC, key ASC LIMIT ?)",
                        (excess,))
                    self.stats.evictions += excess
                conn.commit()
            except sqlite3.Error:
                self.stats.errors += 1
                return False
            self.stats.writes += 1
            if self._preloaded is not None:
                # Keep the warm-start view coherent with the store.
                self._preloaded[key_str] = value
            return True

    def entry_count(self) -> int:
        """Number of persisted entries (0 when unavailable)."""
        with self._lock:
            conn = self._connect()
            if conn is None:
                return 0
            try:
                return int(conn.execute(
                    "SELECT COUNT(*) FROM bounds").fetchone()[0])
            except sqlite3.Error:
                self.stats.errors += 1
                return 0

    def clear(self) -> int:
        """Drop every persisted entry (and any preloaded view); returns
        how many were dropped."""
        with self._lock:
            self._preloaded = None
            conn = self._connect()
            if conn is None:
                return 0
            try:
                dropped = int(conn.execute(
                    "SELECT COUNT(*) FROM bounds").fetchone()[0])
                conn.execute("DELETE FROM bounds")
                conn.commit()
            except sqlite3.Error:
                self.stats.errors += 1
                return 0
            return dropped

    def close(self) -> None:
        """Close this process's connection (the file stays)."""
        with self._lock:
            if self._conn is not None and self._pid == os.getpid():
                try:
                    self._conn.close()
                except sqlite3.Error:  # pragma: no cover
                    pass
            self._conn = None
            self._pid = None


_PERSISTENT: PersistentCache | None = None
_PERSISTENT_LOCK = threading.Lock()


def get_persistent_cache() -> PersistentCache | None:
    """The process-wide persistent layer, or ``None`` when disabled via
    ``REPRO_PERSISTENT_CACHE=0``.  Created lazily on first use so the
    environment and :func:`set_persistent_cache_dir` are honoured."""
    global _PERSISTENT
    if not persistent_cache_enabled():
        return None
    with _PERSISTENT_LOCK:
        if _PERSISTENT is None:
            _PERSISTENT = PersistentCache()
        return _PERSISTENT


def set_persistent_cache_dir(directory: str | Path) -> PersistentCache:
    """Point the persistent layer at ``directory`` (CLI ``--cache-dir``,
    test isolation).  Replaces any previously opened store."""
    global _PERSISTENT
    with _PERSISTENT_LOCK:
        if _PERSISTENT is not None:
            _PERSISTENT.close()
        _PERSISTENT = PersistentCache(directory)
        return _PERSISTENT


def reset_persistent_cache() -> None:
    """Forget the current store; the next use re-resolves from the
    environment."""
    global _PERSISTENT
    with _PERSISTENT_LOCK:
        if _PERSISTENT is not None:
            _PERSISTENT.close()
        _PERSISTENT = None


# ----------------------------------------------------------------------
# The bound cache
# ----------------------------------------------------------------------

@dataclass
class CacheStats:
    """Counters for one :class:`BoundCache`.

    ``evaluations`` is the number of times the underlying computation
    actually ran (cache misses plus disabled-cache calls) -- the
    quantity the A20 bench compares cached vs uncached.  ``disk_hits``
    counts values served from the persistent layer: no new computation,
    but a (cheap) sqlite read rather than a dict lookup.
    ``evictions`` counts FIFO drops at capacity; ``solve_seconds`` is
    the wall time spent inside the underlying computations (the
    per-solve distribution lives in ``BoundCache.solve_histogram``).
    """

    hits: int = 0
    misses: int = 0
    uncached: int = 0
    disk_hits: int = 0
    evictions: int = 0
    solve_seconds: float = 0.0

    @property
    def evaluations(self) -> int:
        return self.misses + self.uncached

    def snapshot(self) -> "CacheStats":
        """Independent copy of the counters at this instant."""
        return CacheStats(hits=self.hits, misses=self.misses,
                          uncached=self.uncached,
                          disk_hits=self.disk_hits,
                          evictions=self.evictions,
                          solve_seconds=self.solve_seconds)


@dataclass
class BoundCache:
    """Process-wide memo for expensive pure computations.

    Keys must be hashable and should start with a model fingerprint so
    that distinct configurations never collide.  The cache is bounded:
    once ``max_entries`` is reached the oldest insertions are evicted
    (FIFO -- admission scans have strong locality, LRU buys nothing).

    With ``use_persistent`` the on-disk :class:`PersistentCache` is
    layered underneath: a memory miss consults the store before
    computing, and computed values are written through.  Only
    content-fingerprinted keys participate (see
    :func:`_persistable_key`); values the codec cannot encode stay
    memory-only.  ``enabled=False`` (CLI ``--no-cache``) bypasses both
    layers, reads and writes alike.
    """

    enabled: bool = True
    max_entries: int = 200_000
    use_persistent: bool = False
    stats: CacheStats = field(default_factory=CacheStats)
    #: Per-solve wall-time distribution (standalone; merged into a
    #: registry at report time by :func:`publish_cache_metrics`).
    solve_histogram: Histogram = field(
        default_factory=lambda: Histogram("bound_solve_seconds"),
        repr=False)
    _store: dict = field(default_factory=dict, repr=False)

    def _solve(self, compute):
        """Run the underlying computation, timing it into the stats,
        the solve histogram and (when tracing) a ``bound_solve``
        record."""
        start = time.perf_counter()
        value = compute()
        elapsed = time.perf_counter() - start
        self.stats.solve_seconds += elapsed
        self.solve_histogram.observe(elapsed)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.emit("bound_solve", seconds=elapsed)
        return value

    def get_or_compute(self, key, compute):
        """Return the cached value for ``key``, computing it on miss."""
        if not self.enabled:
            self.stats.uncached += 1
            return self._solve(compute)
        try:
            value = self._store[key]
        except KeyError:
            pass
        else:
            self.stats.hits += 1
            tracer = get_tracer()
            if tracer.enabled:
                tracer.emit("cache_hit", layer="memory")
            return value
        persistent = (get_persistent_cache()
                      if self.use_persistent and _persistable_key(key)
                      else None)
        if persistent is not None:
            key_str = _canonical(key)
            value = persistent.get(key_str)
            if value is not None:
                self.stats.disk_hits += 1
                self._insert(key, value)
                tracer = get_tracer()
                if tracer.enabled:
                    tracer.emit("cache_hit", layer="disk")
                return value
        self.stats.misses += 1
        tracer = get_tracer()
        if tracer.enabled:
            tracer.emit("cache_miss",
                        layer="disk" if persistent is not None
                        else "memory")
        value = self._solve(compute)
        self._insert(key, value)
        if persistent is not None:
            persistent.put(key_str, value)
        return value

    def _insert(self, key, value) -> None:
        if len(self._store) >= self.max_entries:
            self._store.pop(next(iter(self._store)))
            self.stats.evictions += 1
        self._store[key] = value

    def clear(self) -> None:
        """Drop every in-memory entry (statistics are reset too); the
        persistent layer is untouched -- that is what makes a process
        restart warm."""
        self._store.clear()
        self.stats = CacheStats()
        self.solve_histogram = Histogram("bound_solve_seconds")

    def __len__(self) -> int:
        return len(self._store)


_GLOBAL_CACHE = BoundCache(use_persistent=True)


def get_cache() -> BoundCache:
    """The process-wide bound cache used by the analytic models."""
    return _GLOBAL_CACHE


def clear_cache() -> None:
    """Drop all globally cached bounds and reset the statistics."""
    _GLOBAL_CACHE.clear()


def cache_stats() -> CacheStats:
    """Snapshot of the global cache counters."""
    return _GLOBAL_CACHE.stats.snapshot()


def set_cache_enabled(enabled: bool) -> None:
    """Globally enable/disable memoization (CLI ``--no-cache``)."""
    _GLOBAL_CACHE.enabled = bool(enabled)


def publish_cache_metrics(registry: MetricsRegistry) -> None:
    """Publish the global cache state into ``registry`` at report time.

    Layer traffic becomes ``bound_cache_*`` / ``persistent_cache_*``
    gauges (set, not incremented, so the call is idempotent for
    scalars) and the per-solve distribution is merged into the
    registry's ``bound_solve_seconds`` histogram.  Call once, when a
    run's metrics are exported -- merging the histogram twice would
    double-count.
    """
    cache = _GLOBAL_CACHE
    stats = cache.stats
    registry.gauge("bound_cache_entries").set(len(cache))
    registry.gauge("bound_cache_hits").set(stats.hits)
    registry.gauge("bound_cache_misses").set(stats.misses)
    registry.gauge("bound_cache_uncached").set(stats.uncached)
    registry.gauge("bound_cache_disk_hits").set(stats.disk_hits)
    registry.gauge("bound_cache_evictions").set(stats.evictions)
    source = cache.solve_histogram
    merged = registry.histogram("bound_solve_seconds",
                                bounds=source.bounds)
    for i, n in enumerate(source.counts):
        merged.counts[i] += n
    merged.count += source.count
    merged.sum += source.sum
    merged.min = min(merged.min, source.min)
    merged.max = max(merged.max, source.max)
    persistent = get_persistent_cache()
    if persistent is not None:
        ps = persistent.stats
        registry.gauge("persistent_cache_hits").set(ps.hits)
        registry.gauge("persistent_cache_misses").set(ps.misses)
        registry.gauge("persistent_cache_writes").set(ps.writes)
        registry.gauge("persistent_cache_errors").set(ps.errors)
        registry.gauge("persistent_cache_evictions").set(ps.evictions)
        registry.gauge("persistent_cache_preloaded").set(ps.preloaded)


@contextmanager
def cache_disabled():
    """Context manager running its body with the global cache off."""
    previous = _GLOBAL_CACHE.enabled
    _GLOBAL_CACHE.enabled = False
    try:
        yield
    finally:
        _GLOBAL_CACHE.enabled = previous


# ----------------------------------------------------------------------
# Monotone threshold search
# ----------------------------------------------------------------------

def bisect_max_n(predicate, n_cap: int, *, full_scan: bool = False,
                 verify_above: int = 0) -> int:
    """Largest ``n`` in ``[1, n_cap]`` with ``predicate(n)`` true, for
    predicates true on a prefix (monotone in ``n``).

    Exponential search locates the first failure, bisection refines it:
    O(log n_cap) probes instead of the O(n*) linear scan, and each
    probed ``n`` is evaluated exactly once.

    The prefix assumption is essential: a non-monotone predicate makes
    bisection silently wrong.  Two escape hatches:

    - ``full_scan=True`` evaluates every ``n`` up to ``n_cap`` and
      returns the true maximum (exact for *any* predicate).
    - ``verify_above=k`` probes ``k`` extra points spread between the
      found boundary and ``n_cap``; if any is true, non-monotonicity is
      detected and the helper transparently falls back to the full
      scan.  Detection is necessarily best-effort -- only probed points
      can contradict the assumption.

    Returns 0 when even ``n = 1`` fails (under the prefix assumption;
    with ``full_scan`` only when no ``n`` passes at all).
    """
    if n_cap < 1:
        raise ConfigurationError(f"n_cap must be >= 1, got {n_cap!r}")
    if verify_above < 0:
        raise ConfigurationError(
            f"verify_above must be >= 0, got {verify_above!r}")

    memo: dict[int, bool] = {}

    def probe(n: int) -> bool:
        if n not in memo:
            memo[n] = bool(predicate(n))
        return memo[n]

    def exhaustive() -> int:
        best = 0
        for n in range(1, n_cap + 1):
            if probe(n):
                best = n
        return best

    if full_scan:
        return exhaustive()

    if not probe(1):
        return 0

    # Exponential phase: double until the predicate fails or the cap is
    # reached.  ``lo`` is always a known-true point.
    lo = 1
    while lo < n_cap:
        nxt = min(lo * 2, n_cap)
        if not probe(nxt):
            break
        lo = nxt
    if lo == n_cap:
        return n_cap

    # Bisection phase on (lo, hi]: lo true, hi false.
    hi = min(lo * 2, n_cap)
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if probe(mid):
            lo = mid
        else:
            hi = mid
    best = lo

    if verify_above and best < n_cap:
        checks = np.unique(np.geomspace(
            best + 1, n_cap, num=verify_above).astype(int))
        if any(probe(int(n)) for n in checks if n > best):
            # The prefix assumption is broken; fall back to exactness.
            return exhaustive()
    return best
