"""Public-API integrity: exports resolve and everything is documented.

The documentation deliverable is enforced mechanically: every public
module, class and function reachable from the ``repro`` package must
carry a docstring, and every ``__all__`` entry must actually exist.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.core",
    "repro.disk",
    "repro.distributions",
    "repro.serve",
    "repro.server",
    "repro.sim",
    "repro.workload",
    "repro.analysis",
]


def _walk_modules():
    seen = []
    for name in PACKAGES:
        package = importlib.import_module(name)
        seen.append(package)
        for info in pkgutil.iter_modules(package.__path__,
                                         prefix=f"{name}."):
            seen.append(importlib.import_module(info.name))
    return seen


ALL_MODULES = _walk_modules()


class TestExports:
    @pytest.mark.parametrize(
        "module", [m for m in ALL_MODULES if hasattr(m, "__all__")],
        ids=lambda m: m.__name__)
    def test_all_entries_exist(self, module):
        for name in module.__all__:
            assert hasattr(module, name), \
                f"{module.__name__}.__all__ lists missing {name!r}"

    def test_top_level_all_is_sane(self):
        assert len(repro.__all__) > 40
        assert "RoundServiceTimeModel" in repro.__all__
        assert repro.__version__ == "1.0.0"


class TestDocstrings:
    @pytest.mark.parametrize("module", ALL_MODULES,
                             ids=lambda m: m.__name__)
    def test_module_documented(self, module):
        assert module.__doc__ and module.__doc__.strip(), \
            f"{module.__name__} lacks a module docstring"

    @pytest.mark.parametrize("module", ALL_MODULES,
                             ids=lambda m: m.__name__)
    def test_public_members_documented(self, module):
        names = getattr(module, "__all__", [])
        for name in names:
            obj = getattr(module, name)
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if obj.__module__ and not obj.__module__.startswith("repro"):
                continue  # re-exported third-party objects
            assert inspect.getdoc(obj), \
                f"{module.__name__}.{name} lacks a docstring"
            if inspect.isclass(obj):
                for attr_name, attr in vars(obj).items():
                    if attr_name.startswith("_"):
                        continue
                    if inspect.isfunction(attr):
                        assert inspect.getdoc(attr), (
                            f"{module.__name__}.{name}.{attr_name} "
                            f"lacks a docstring")
