"""Tests of the bound cache: fingerprints, memoized bisection, and the
cached-vs-uncached / probe-count contracts of the admission pipeline."""

import numpy as np
import pytest

from repro import cache
from repro.cache import (
    BoundCache,
    bisect_max_n,
    cache_disabled,
    cache_stats,
    canonical_threshold,
    clear_cache,
    fingerprint,
    instance_fingerprint,
)
from repro.core import (
    GlitchModel,
    RoundServiceTimeModel,
    n_max_perror,
    n_max_plate,
)
from repro.errors import ConfigurationError


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestFingerprint:
    def test_stable_across_calls(self):
        args = ("model", 1.5, np.array([1.0, 2.0]), {"a": 1})
        assert fingerprint(*args) == fingerprint(*args)

    def test_distinguishes_values(self):
        assert fingerprint("m", 1.5) != fingerprint("m", 1.5000001)
        assert fingerprint("m", 1) != fingerprint("m", 1.0)
        assert fingerprint("m", True) != fingerprint("m", 1)

    def test_distinguishes_array_contents(self):
        a = np.array([1.0, 2.0, 3.0])
        b = a.copy()
        b[1] = 2.0000001
        assert fingerprint(a) != fingerprint(b)
        assert fingerprint(a) == fingerprint(a.copy())

    def test_equal_models_share_fingerprint(self, viking, paper_sizes):
        m1 = RoundServiceTimeModel.for_disk(viking, paper_sizes)
        m2 = RoundServiceTimeModel.for_disk(viking, paper_sizes)
        assert m1.fingerprint == m2.fingerprint

    def test_different_workloads_differ(self, viking, paper_sizes,
                                        viking_single_zone):
        m1 = RoundServiceTimeModel.for_disk(viking, paper_sizes)
        m2 = RoundServiceTimeModel.for_disk(viking_single_zone,
                                            paper_sizes)
        assert m1.fingerprint != m2.fingerprint

    def test_instance_fingerprint_unique(self):
        assert (instance_fingerprint("x")
                != instance_fingerprint("x"))


class TestCanonicalThreshold:
    def test_absorbs_arithmetic_noise(self):
        assert canonical_threshold(0.01) == canonical_threshold(
            0.1 * 0.1)
        assert canonical_threshold(0.01) == 0.01

    def test_distinguishes_real_differences(self):
        assert canonical_threshold(0.01) != canonical_threshold(0.011)


class TestBoundCache:
    def test_hit_miss_accounting(self):
        c = BoundCache()
        calls = []
        for _ in range(3):
            c.get_or_compute("k", lambda: calls.append(1) or 42)
        assert len(calls) == 1
        assert c.stats.misses == 1
        assert c.stats.hits == 2

    def test_disabled_context_bypasses(self):
        calls = []

        def compute():
            calls.append(1)
            return 7

        cache.get_cache().get_or_compute("k", compute)
        with cache_disabled():
            cache.get_cache().get_or_compute("k", compute)
        assert len(calls) == 2
        assert cache_stats().uncached == 1


class TestBisectMaxN:
    def test_matches_full_scan_on_monotone(self):
        for boundary in (0, 1, 5, 99, 100):
            pred = lambda n, b=boundary: n <= b
            assert (bisect_max_n(pred, 100)
                    == bisect_max_n(pred, 100, full_scan=True))

    def test_probe_count_logarithmic(self):
        probes = []
        boundary = 37
        n_cap = 4096

        def pred(n):
            probes.append(n)
            return n <= boundary

        assert bisect_max_n(pred, n_cap) == boundary
        # Exponential search + bisection: O(log n_cap) probes, each n
        # probed at most once thanks to the memo.
        assert len(set(probes)) == len(probes)
        assert len(probes) <= 4 * int(np.log2(n_cap))

    def test_verify_above_detects_non_monotone(self):
        # Predicate true on [1, 10] and again on [50, 60]: the plain
        # bisection stops at 10; verification probes above must detect
        # the island and fall back to the exhaustive answer 60.
        pred = lambda n: n <= 10 or 50 <= n <= 60
        assert bisect_max_n(pred, 100) == 10
        assert bisect_max_n(pred, 100, verify_above=8) == 60
        assert bisect_max_n(pred, 100, full_scan=True) == 60


class TestAdmissionCaching:
    def test_exact_flag_agrees_with_bisection(self, viking,
                                              paper_sizes):
        model = RoundServiceTimeModel.for_disk(viking, paper_sizes)
        glitch = GlitchModel(model, 1.0)
        assert (n_max_plate(model, 1.0, 0.01)
                == n_max_plate(model, 1.0, 0.01, exact=True) == 26)
        assert (n_max_perror(glitch, 1200, 12, 0.01)
                == n_max_perror(glitch, 1200, 12, 0.01, exact=True)
                == 28)

    def test_cached_equals_uncached(self, viking, paper_sizes):
        model = RoundServiceTimeModel.for_disk(viking, paper_sizes)
        cached = n_max_plate(model, 1.0, 0.01)
        clear_cache()
        with cache_disabled():
            uncached = n_max_plate(model, 1.0, 0.01)
        assert cached == uncached

    def test_plate_scan_optimisation_count(self, viking, paper_sizes,
                                           monkeypatch):
        # Perf contract: one n_max_plate solve triggers at most
        # O(log n_cap) Chernoff optimisations.
        import repro.core.chernoff as chernoff_mod
        import repro.core.service_time as st_mod

        calls = []
        real = chernoff_mod.chernoff_tail_bound

        def counting(logmgf, t):
            calls.append(t)
            return real(logmgf, t)

        monkeypatch.setattr(st_mod, "chernoff_tail_bound", counting)
        model = RoundServiceTimeModel.for_disk(viking, paper_sizes)
        n_cap = 512
        assert n_max_plate(model, 1.0, 0.01, n_cap=n_cap) == 26
        budget = 4 * int(np.log2(n_cap))
        assert len(calls) <= budget, (
            f"{len(calls)} optimisations for one solve "
            f"(budget {budget})")

    def test_table_rebuild_is_free(self, viking, paper_sizes):
        from repro.core import AdmissionTable

        model = RoundServiceTimeModel.for_disk(viking, paper_sizes)
        table = AdmissionTable(GlitchModel(model, 1.0), m=1200, g=12)
        table.build(plate_thresholds=(0.001, 0.01, 0.1))
        misses_after_build = cache_stats().misses
        # A second model instance over the same configuration reuses
        # every cached optimisation (content-addressed fingerprint).
        model2 = RoundServiceTimeModel.for_disk(viking, paper_sizes)
        table2 = AdmissionTable(GlitchModel(model2, 1.0), m=1200, g=12)
        table2.build(plate_thresholds=(0.001, 0.01, 0.1))
        assert cache_stats().misses == misses_after_build
        assert table2.entries() == table.entries()

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            bisect_max_n(lambda n: True, 0)
