"""Tests of the bound cache: fingerprints, memoized bisection, the
cached-vs-uncached / probe-count contracts of the admission pipeline,
and the persistent on-disk layer (round-trips, corruption tolerance,
cross-process reuse)."""

import json
import os
import sqlite3
import subprocess
import sys
import warnings
from pathlib import Path

import numpy as np
import pytest

import repro
from repro import cache
from repro.cache import (
    CACHE_DIR_ENV,
    BoundCache,
    PersistentCache,
    bisect_max_n,
    cache_disabled,
    cache_stats,
    canonical_threshold,
    clear_cache,
    default_cache_dir,
    fingerprint,
    get_persistent_cache,
    instance_fingerprint,
    persistent_cache_enabled,
)
from repro.core import (
    GlitchModel,
    RoundServiceTimeModel,
    n_max_perror,
    n_max_plate,
)
from repro.core.chernoff import ChernoffResult
from repro.errors import ConfigurationError


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestFingerprint:
    def test_stable_across_calls(self):
        args = ("model", 1.5, np.array([1.0, 2.0]), {"a": 1})
        assert fingerprint(*args) == fingerprint(*args)

    def test_distinguishes_values(self):
        assert fingerprint("m", 1.5) != fingerprint("m", 1.5000001)
        assert fingerprint("m", 1) != fingerprint("m", 1.0)
        assert fingerprint("m", True) != fingerprint("m", 1)

    def test_distinguishes_array_contents(self):
        a = np.array([1.0, 2.0, 3.0])
        b = a.copy()
        b[1] = 2.0000001
        assert fingerprint(a) != fingerprint(b)
        assert fingerprint(a) == fingerprint(a.copy())

    def test_equal_models_share_fingerprint(self, viking, paper_sizes):
        m1 = RoundServiceTimeModel.for_disk(viking, paper_sizes)
        m2 = RoundServiceTimeModel.for_disk(viking, paper_sizes)
        assert m1.fingerprint == m2.fingerprint

    def test_different_workloads_differ(self, viking, paper_sizes,
                                        viking_single_zone):
        m1 = RoundServiceTimeModel.for_disk(viking, paper_sizes)
        m2 = RoundServiceTimeModel.for_disk(viking_single_zone,
                                            paper_sizes)
        assert m1.fingerprint != m2.fingerprint

    def test_instance_fingerprint_unique(self):
        assert (instance_fingerprint("x")
                != instance_fingerprint("x"))


class TestCanonicalThreshold:
    def test_absorbs_arithmetic_noise(self):
        assert canonical_threshold(0.01) == canonical_threshold(
            0.1 * 0.1)
        assert canonical_threshold(0.01) == 0.01

    def test_distinguishes_real_differences(self):
        assert canonical_threshold(0.01) != canonical_threshold(0.011)


class TestBoundCache:
    def test_hit_miss_accounting(self):
        c = BoundCache()
        calls = []
        for _ in range(3):
            c.get_or_compute("k", lambda: calls.append(1) or 42)
        assert len(calls) == 1
        assert c.stats.misses == 1
        assert c.stats.hits == 2

    def test_disabled_context_bypasses(self):
        calls = []

        def compute():
            calls.append(1)
            return 7

        cache.get_cache().get_or_compute("k", compute)
        with cache_disabled():
            cache.get_cache().get_or_compute("k", compute)
        assert len(calls) == 2
        assert cache_stats().uncached == 1


class TestBisectMaxN:
    def test_matches_full_scan_on_monotone(self):
        for boundary in (0, 1, 5, 99, 100):
            pred = lambda n, b=boundary: n <= b
            assert (bisect_max_n(pred, 100)
                    == bisect_max_n(pred, 100, full_scan=True))

    def test_probe_count_logarithmic(self):
        probes = []
        boundary = 37
        n_cap = 4096

        def pred(n):
            probes.append(n)
            return n <= boundary

        assert bisect_max_n(pred, n_cap) == boundary
        # Exponential search + bisection: O(log n_cap) probes, each n
        # probed at most once thanks to the memo.
        assert len(set(probes)) == len(probes)
        assert len(probes) <= 4 * int(np.log2(n_cap))

    def test_verify_above_detects_non_monotone(self):
        # Predicate true on [1, 10] and again on [50, 60]: the plain
        # bisection stops at 10; verification probes above must detect
        # the island and fall back to the exhaustive answer 60.
        pred = lambda n: n <= 10 or 50 <= n <= 60
        assert bisect_max_n(pred, 100) == 10
        assert bisect_max_n(pred, 100, verify_above=8) == 60
        assert bisect_max_n(pred, 100, full_scan=True) == 60


class TestAdmissionCaching:
    def test_exact_flag_agrees_with_bisection(self, viking,
                                              paper_sizes):
        model = RoundServiceTimeModel.for_disk(viking, paper_sizes)
        glitch = GlitchModel(model, 1.0)
        assert (n_max_plate(model, 1.0, 0.01)
                == n_max_plate(model, 1.0, 0.01, exact=True) == 26)
        assert (n_max_perror(glitch, 1200, 12, 0.01)
                == n_max_perror(glitch, 1200, 12, 0.01, exact=True)
                == 28)

    def test_cached_equals_uncached(self, viking, paper_sizes):
        model = RoundServiceTimeModel.for_disk(viking, paper_sizes)
        cached = n_max_plate(model, 1.0, 0.01)
        clear_cache()
        with cache_disabled():
            uncached = n_max_plate(model, 1.0, 0.01)
        assert cached == uncached

    def test_plate_scan_optimisation_count(self, viking, paper_sizes,
                                           monkeypatch):
        # Perf contract: one n_max_plate solve triggers at most
        # O(log n_cap) Chernoff optimisations.
        import repro.core.chernoff as chernoff_mod
        import repro.core.service_time as st_mod

        calls = []
        real = chernoff_mod.chernoff_tail_bound

        def counting(logmgf, t):
            calls.append(t)
            return real(logmgf, t)

        monkeypatch.setattr(st_mod, "chernoff_tail_bound", counting)
        model = RoundServiceTimeModel.for_disk(viking, paper_sizes)
        n_cap = 512
        assert n_max_plate(model, 1.0, 0.01, n_cap=n_cap) == 26
        budget = 4 * int(np.log2(n_cap))
        assert len(calls) <= budget, (
            f"{len(calls)} optimisations for one solve "
            f"(budget {budget})")

    def test_table_rebuild_is_free(self, viking, paper_sizes):
        from repro.core import AdmissionTable

        model = RoundServiceTimeModel.for_disk(viking, paper_sizes)
        table = AdmissionTable(GlitchModel(model, 1.0), m=1200, g=12)
        table.build(plate_thresholds=(0.001, 0.01, 0.1))
        misses_after_build = cache_stats().misses
        # A second model instance over the same configuration reuses
        # every cached optimisation (content-addressed fingerprint).
        model2 = RoundServiceTimeModel.for_disk(viking, paper_sizes)
        table2 = AdmissionTable(GlitchModel(model2, 1.0), m=1200, g=12)
        table2.build(plate_thresholds=(0.001, 0.01, 0.1))
        assert cache_stats().misses == misses_after_build
        assert table2.entries() == table.entries()

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            bisect_max_n(lambda n: True, 0)

    def test_verify_above_noop_on_monotone(self):
        probes = []

        def pred(n):
            probes.append(n)
            return n <= 20

        assert bisect_max_n(pred, 200, verify_above=3) == 20
        # The extra probes must not degrade into a full scan.
        assert len(probes) <= 4 * int(np.log2(200)) + 3

    def test_full_scan_handles_false_at_one(self):
        pred = lambda n: 5 <= n <= 7
        assert bisect_max_n(pred, 10) == 0  # prefix assumption
        assert bisect_max_n(pred, 10, full_scan=True) == 7


@pytest.fixture
def isolated_store(tmp_path):
    """Point the process-global persistent layer at a throwaway dir and
    restore the session-scoped store afterwards."""
    store = cache.set_persistent_cache_dir(tmp_path)
    yield store
    cache.reset_persistent_cache()


class TestPersistentCache:
    def test_scalar_roundtrip(self, tmp_path):
        store = PersistentCache(tmp_path)
        assert store.get("key-a") is None
        assert store.put("key-a", 1.5)
        assert store.get("key-a") == 1.5
        assert store.stats.hits == 1
        assert store.stats.misses == 1
        assert store.stats.writes == 1

    def test_chernoff_result_roundtrip_exact(self, tmp_path):
        store = PersistentCache(tmp_path)
        value = ChernoffResult(bound=0.008431772015845197,
                               log_bound=-4.775742373093779,
                               theta=13.425323441, t=1.0)
        store.put("cr", value)
        # Reopen to force a real disk read, not any in-memory state.
        store.close()
        again = PersistentCache(tmp_path).get("cr")
        assert isinstance(again, ChernoffResult)
        assert again == value  # bit-exact float round-trip

    def test_unpersistable_values_are_skipped(self, tmp_path):
        store = PersistentCache(tmp_path)
        assert not store.put("arr", np.arange(3))
        assert store.entry_count() == 0

    def test_entry_count_and_clear(self, tmp_path):
        store = PersistentCache(tmp_path)
        store.put("a", 1.0)
        store.put("b", 2.0)
        assert store.entry_count() == 2
        assert store.clear() == 2
        assert store.entry_count() == 0
        assert store.get("a") is None

    def test_corrupt_file_recovers(self, tmp_path):
        path = tmp_path / "bounds.sqlite"
        path.write_bytes(b"this is not a sqlite database ")
        store = PersistentCache(tmp_path)
        assert store.get("k") is None  # must not raise
        assert store.put("k", 3.0)
        assert store.get("k") == 3.0

    def test_corrupt_row_evicted(self, tmp_path):
        store = PersistentCache(tmp_path)
        store.put("good", 1.0)
        store.close()
        with sqlite3.connect(tmp_path / "bounds.sqlite") as conn:
            conn.execute(
                "INSERT INTO bounds VALUES ('bad', 'not json', 0)")
            conn.execute(
                "INSERT INTO bounds VALUES ('foreign', ?, 0)",
                (json.dumps({"kind": "dataclass", "module": "os.path",
                             "name": "PurePath", "fields": {}}),))
            conn.commit()
        reopened = PersistentCache(tmp_path)
        assert reopened.get("bad") is None
        assert reopened.get("foreign") is None  # non-repro type refused
        assert reopened.get("good") == 1.0
        # Corrupt rows are evicted on first touch, not left to fail
        # forever.
        assert reopened.entry_count() == 1

    def test_schema_version_mismatch_drops_entries(self, tmp_path):
        store = PersistentCache(tmp_path)
        store.put("k", 9.0)
        store.close()
        with sqlite3.connect(tmp_path / "bounds.sqlite") as conn:
            conn.execute("UPDATE meta SET value='999' "
                         "WHERE key='schema_version'")
            conn.commit()
        reopened = PersistentCache(tmp_path)
        assert reopened.get("k") is None
        assert reopened.entry_count() == 0

    def test_env_disable(self, monkeypatch):
        monkeypatch.setenv("REPRO_PERSISTENT_CACHE", "0")
        assert not persistent_cache_enabled()
        assert get_persistent_cache() is None
        monkeypatch.setenv("REPRO_PERSISTENT_CACHE", "1")
        assert persistent_cache_enabled()


class TestPreload:
    """Warm-start bulk load for the `repro serve` daemon."""

    def test_preload_serves_hits_without_sqlite(self, tmp_path):
        store = PersistentCache(tmp_path)
        store.put("a", 1.0)
        store.put("b", 2.0)
        store.close()
        reopened = PersistentCache(tmp_path)
        assert reopened.preload() == 2
        assert reopened.stats.preloaded == 2
        # Break the underlying file: preloaded reads must still work,
        # proving the hot path no longer touches sqlite.
        reopened._broken = True
        assert reopened.get("a") == 1.0
        assert reopened.get("b") == 2.0
        assert reopened.stats.hits == 2

    def test_preload_limit_keeps_most_recently_accessed(self, tmp_path):
        store = PersistentCache(tmp_path)
        for i in range(6):
            store.put(f"k{i}", float(i))
        store.get("k1")  # freshen k1's last_access past the others'
        assert store.preload(limit=1) == 1
        store._broken = True
        assert store.get("k1") == 1.0
        with pytest.raises(ConfigurationError):
            store.preload(limit=0)

    def test_put_keeps_preloaded_view_coherent(self, tmp_path):
        store = PersistentCache(tmp_path)
        store.put("a", 1.0)
        store.preload()
        store.put("fresh", 9.0)
        store._broken = True
        assert store.get("fresh") == 9.0
        assert store.get("a") == 1.0

    def test_clear_drops_preloaded_view(self, tmp_path):
        store = PersistentCache(tmp_path)
        store.put("a", 1.0)
        store.preload()
        store.clear()
        assert store.get("a") is None

    def test_preload_skips_corrupt_rows(self, tmp_path):
        store = PersistentCache(tmp_path)
        store.put("good", 1.0)
        store.close()
        with sqlite3.connect(tmp_path / "bounds.sqlite") as conn:
            conn.execute(
                "INSERT INTO bounds VALUES ('bad', 'not json', 0)")
            conn.commit()
        reopened = PersistentCache(tmp_path)
        assert reopened.preload() == 1
        assert reopened.stats.errors == 1
        assert reopened.get("good") == 1.0

    def test_preload_on_missing_store_is_empty(self, tmp_path):
        store = PersistentCache(tmp_path / "nothing-here")
        assert store.preload() == 0
        assert store.get("x") is None

    def test_dataclass_values_preload_decoded(self, tmp_path):
        store = PersistentCache(tmp_path)
        value = ChernoffResult(bound=0.01, log_bound=-4.6,
                               theta=13.4, t=1.0)
        store.put("cr", value)
        store.close()
        reopened = PersistentCache(tmp_path)
        reopened.preload()
        reopened._broken = True
        assert reopened.get("cr") == value

    def test_cache_dir_env_resolution(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "elsewhere"))
        assert default_cache_dir() == tmp_path / "elsewhere"


class TestGracefulDegradation:
    """An unusable store location must never crash an admission solve:
    the persistent layer warns once, disables itself for the process,
    and the in-memory cache carries on."""

    @staticmethod
    def _file_blocked_store(tmp_path):
        # REPRO_CACHE_DIR pointing at an existing *file*: mkdir fails,
        # and so does the recovery attempt.  (Permission-bit scenarios
        # are simulated separately -- root ignores directory modes.)
        blocker = tmp_path / "not-a-directory"
        blocker.write_text("occupied", encoding="utf-8")
        return PersistentCache(blocker)

    def test_blocked_location_degrades_to_noop(self, tmp_path):
        store = self._file_blocked_store(tmp_path)
        with pytest.warns(RuntimeWarning,
                          match="falling back to the in-memory cache"):
            assert store.get("k") is None
        assert store.put("k", 1.0) is False
        assert store.get("k") is None
        assert store.entry_count() == 0
        assert store.clear() == 0
        assert store.stats.errors >= 2  # first failure + retry failure

    def test_warns_exactly_once_per_process(self, tmp_path):
        store = self._file_blocked_store(tmp_path)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            store.get("a")
            store.put("b", 2.0)
            store.entry_count()
        runtime = [w for w in caught
                   if issubclass(w.category, RuntimeWarning)]
        assert len(runtime) == 1

    def test_permission_denied_degrades(self, tmp_path, monkeypatch):
        # The read-only-directory / disk-full shape: opening the sqlite
        # file raises an OSError both times.
        store = PersistentCache(tmp_path / "denied")

        def deny(self):
            raise PermissionError(13, "Permission denied")

        monkeypatch.setattr(PersistentCache, "_open", deny)
        with pytest.warns(RuntimeWarning, match="PermissionError"):
            assert store.put("k", 1.0) is False
        assert store.get("k") is None

    def test_layered_cache_still_computes(self, tmp_path):
        blocker = tmp_path / "cache-as-file"
        blocker.write_text("occupied", encoding="utf-8")
        cache.set_persistent_cache_dir(blocker)
        try:
            layered = BoundCache(use_persistent=True)
            key = ("b_late", "fp-degraded", 5, (1.0).hex())
            with pytest.warns(RuntimeWarning):
                assert layered.get_or_compute(key, lambda: 0.125) == 0.125
            # The in-memory layer is intact: hit, no recompute, no
            # further warnings.
            with warnings.catch_warnings():
                warnings.simplefilter("error", RuntimeWarning)
                assert layered.get_or_compute(key, lambda: -1.0) == 0.125
            assert layered.stats.hits == 1
        finally:
            cache.reset_persistent_cache()

    def test_admission_solve_survives_broken_store(self, tmp_path,
                                                   viking, paper_sizes):
        blocker = tmp_path / "cache-as-file"
        blocker.write_text("occupied", encoding="utf-8")
        cache.set_persistent_cache_dir(blocker)
        try:
            model = RoundServiceTimeModel.for_disk(viking, paper_sizes)
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                assert n_max_plate(model, 1.0, 0.01) == 26
        finally:
            cache.reset_persistent_cache()


class TestLayeredBoundCache:
    KEY = ("b_late", "fp-layered-test", 7, "0x1.0p+0")

    def test_write_through_and_disk_hit(self, isolated_store):
        calls = []

        def compute():
            calls.append(1)
            return 0.25

        first = BoundCache(use_persistent=True)
        assert first.get_or_compute(self.KEY, compute) == 0.25
        assert first.stats.misses == 1
        assert isolated_store.entry_count() == 1

        # A fresh in-process cache (new process, conceptually) answers
        # from disk without recomputing.
        second = BoundCache(use_persistent=True)
        assert second.get_or_compute(self.KEY, compute) == 0.25
        assert len(calls) == 1
        assert second.stats.misses == 0
        assert second.stats.disk_hits == 1
        # And the disk hit now lives in memory: third lookup is a pure
        # memory hit.
        assert second.get_or_compute(self.KEY, compute) == 0.25
        assert second.stats.hits == 1

    def test_instance_keys_never_persisted(self, isolated_store):
        key = (instance_fingerprint("numeric-term"), 3)
        c = BoundCache(use_persistent=True)
        c.get_or_compute(key, lambda: 1.0)
        assert isolated_store.entry_count() == 0
        fresh = BoundCache(use_persistent=True)
        calls = []
        fresh.get_or_compute(key, lambda: calls.append(1) or 1.0)
        assert calls  # recomputed: lifetime-scoped keys stay local

    def test_non_persistent_cache_leaves_disk_alone(self,
                                                    isolated_store):
        c = BoundCache()
        c.get_or_compute(self.KEY, lambda: 4.0)
        assert isolated_store.entry_count() == 0

    def test_clear_cache_keeps_disk(self, isolated_store):
        c = BoundCache(use_persistent=True)
        c.get_or_compute(self.KEY, lambda: 0.5)
        c.clear()
        assert isolated_store.entry_count() == 1
        assert c.get_or_compute(self.KEY, lambda: -1.0) == 0.5
        assert c.stats.disk_hits == 1


_RESTART_SCRIPT = """\
import json
from repro.cache import cache_stats
from repro.core import RoundServiceTimeModel, n_max_plate
from repro.disk import quantum_viking_2_1
from repro.workload import paper_fragment_sizes

model = RoundServiceTimeModel.for_disk(quantum_viking_2_1(),
                                       paper_fragment_sizes())
assert n_max_plate(model, 1.0, 0.01) == 26
stats = cache_stats()
print(json.dumps({"misses": stats.misses,
                  "disk_hits": stats.disk_hits}))
"""


class TestCrossProcessReuse:
    def test_restarted_process_solves_nothing(self, tmp_path):
        src = str(Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        env[CACHE_DIR_ENV] = str(tmp_path)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")

        def build():
            proc = subprocess.run(
                [sys.executable, "-c", _RESTART_SCRIPT],
                capture_output=True, text=True, env=env)
            assert proc.returncode == 0, proc.stderr
            return json.loads(proc.stdout.strip().splitlines()[-1])

        cold = build()
        warm = build()
        assert cold["misses"] > 0
        assert cold["disk_hits"] == 0
        assert warm["misses"] == 0, (
            "warm restart must answer every probe from disk")
        assert warm["disk_hits"] > 0


class TestLRUEviction:
    """The persistent store is bounded: inserts past ``max_entries``
    evict the least-recently-*accessed* rows (gets refresh recency, so
    hot bounds survive cold ones regardless of insertion order)."""

    def test_capacity_is_enforced_on_put(self, tmp_path):
        store = PersistentCache(tmp_path, max_entries=5)
        for index in range(8):
            store.put(f"k{index}", float(index))
        assert store.entry_count() == 5
        assert store.stats.evictions == 3

    def test_eviction_is_least_recently_accessed(self, tmp_path):
        store = PersistentCache(tmp_path, max_entries=5)
        for index in range(5):
            store.put(f"k{index}", float(index))
        # Touch the oldest insert: k0 becomes the most recent access,
        # so the next eviction must fall on k1 instead.
        assert store.get("k0") == 0.0
        store.put("k5", 5.0)
        assert store.get("k0") == 0.0
        assert store.get("k1") is None
        assert store.stats.evictions == 1

    def test_overwrite_does_not_evict(self, tmp_path):
        store = PersistentCache(tmp_path, max_entries=2)
        store.put("a", 1.0)
        store.put("b", 2.0)
        store.put("a", 3.0)  # replace, not insert
        assert store.entry_count() == 2
        assert store.stats.evictions == 0
        assert store.get("a") == 3.0
        assert store.get("b") == 2.0

    def test_recency_survives_reopen(self, tmp_path):
        store = PersistentCache(tmp_path, max_entries=3)
        for index in range(3):
            store.put(f"k{index}", float(index))
        assert store.get("k0") == 0.0
        store.close()
        reopened = PersistentCache(tmp_path, max_entries=3)
        reopened.put("k3", 3.0)
        assert reopened.get("k0") == 0.0  # touched before the restart
        assert reopened.get("k1") is None

    def test_v1_schema_rebuilds_cleanly(self, tmp_path):
        """A pre-LRU (schema v1, two-column) database is dropped and
        rebuilt rather than half-migrated."""
        path = tmp_path / "bounds.sqlite"
        with sqlite3.connect(path) as conn:
            conn.execute("CREATE TABLE meta (key TEXT PRIMARY KEY, "
                         "value TEXT NOT NULL)")
            conn.execute("INSERT INTO meta VALUES ('schema_version', '1')")
            conn.execute("CREATE TABLE bounds (key TEXT PRIMARY KEY, "
                         "value TEXT NOT NULL)")
            conn.execute("INSERT INTO bounds VALUES ('old', '1.0')")
            conn.commit()
        store = PersistentCache(tmp_path)
        assert store.get("old") is None
        assert store.put("new", 2.0)
        assert store.get("new") == 2.0

    def test_max_entries_validated(self, tmp_path):
        with pytest.raises(ConfigurationError):
            PersistentCache(tmp_path, max_entries=0)
