"""MPEG GoP VBR trace-generator tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workload import MpegGopModel


class TestValidation:
    def test_defaults_are_valid(self):
        MpegGopModel()

    def test_pattern_must_start_with_i(self):
        with pytest.raises(ConfigurationError):
            MpegGopModel(gop_pattern="BIP")
        with pytest.raises(ConfigurationError):
            MpegGopModel(gop_pattern="")

    def test_pattern_alphabet(self):
        with pytest.raises(ConfigurationError):
            MpegGopModel(gop_pattern="IXB")

    def test_missing_mean_sizes(self):
        with pytest.raises(ConfigurationError):
            MpegGopModel(gop_pattern="IP", mean_sizes={"I": 1000.0})

    def test_bad_numeric_parameters(self):
        with pytest.raises(ConfigurationError):
            MpegGopModel(frame_rate=0.0)
        with pytest.raises(ConfigurationError):
            MpegGopModel(cv=0.0)
        with pytest.raises(ConfigurationError):
            MpegGopModel(scene_correlation=1.0)
        with pytest.raises(ConfigurationError):
            MpegGopModel(scene_sigma=-0.1)


class TestTraces:
    def test_frame_count(self, rng):
        model = MpegGopModel()
        trace = model.generate_frames(rng, 500)
        assert trace.shape == (500,)
        assert np.all(trace > 0)

    def test_generate_seconds(self, rng):
        model = MpegGopModel(frame_rate=25.0)
        trace = model.generate_seconds(rng, 10.0)
        assert trace.shape == (250,)

    def test_i_frames_larger_on_average(self, rng):
        model = MpegGopModel(scene_sigma=0.0)
        trace = model.generate_frames(rng, 12_000)
        pattern = np.array(list(model.gop_pattern))
        types = pattern[np.arange(trace.size) % len(pattern)]
        i_mean = trace[types == "I"].mean()
        p_mean = trace[types == "P"].mean()
        b_mean = trace[types == "B"].mean()
        assert i_mean > p_mean > b_mean

    def test_type_means_match_configuration(self, rng):
        model = MpegGopModel(scene_sigma=0.0)
        trace = model.generate_frames(rng, 60_000)
        pattern = np.array(list(model.gop_pattern))
        types = pattern[np.arange(trace.size) % len(pattern)]
        for t in "IPB":
            observed = trace[types == t].mean()
            assert observed == pytest.approx(model.mean_sizes[t], rel=0.03)

    def test_mean_bandwidth_matches_trace(self, rng):
        model = MpegGopModel()
        trace = model.generate_frames(rng, 300_000)
        bandwidth = trace.mean() * model.frame_rate
        assert bandwidth == pytest.approx(model.mean_bandwidth(), rel=0.05)

    def test_scene_process_induces_autocorrelation(self, rng):
        # Aggregate per GoP first: the raw trace is autocorrelated at
        # GoP lags by the frame-type pattern alone, so scene-level
        # correlation must be measured on GoP totals.
        correlated = MpegGopModel(scene_correlation=0.99, scene_sigma=0.4)
        flat = MpegGopModel(scene_sigma=0.0)
        gop = len(correlated.gop_pattern)

        def gop_autocorr(trace):
            totals = trace[:(trace.size // gop) * gop].reshape(
                -1, gop).sum(axis=1)
            return float(np.corrcoef(totals[:-1], totals[1:])[0, 1])

        tc = correlated.generate_frames(rng, 24_000)
        tf = flat.generate_frames(rng, 24_000)
        assert gop_autocorr(tc) > 0.5
        assert abs(gop_autocorr(tf)) < 0.1

    def test_reproducible_with_seeded_rng(self):
        model = MpegGopModel()
        a = model.generate_frames(np.random.default_rng(4), 100)
        b = model.generate_frames(np.random.default_rng(4), 100)
        assert np.array_equal(a, b)

    def test_rejects_zero_frames(self, rng):
        with pytest.raises(ConfigurationError):
            MpegGopModel().generate_frames(rng, 0)
