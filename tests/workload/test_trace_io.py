"""Trace/catalog persistence tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workload import Catalog, VideoObject
from repro.workload.trace_io import (
    load_catalog,
    load_trace,
    save_catalog,
    save_trace,
)


class TestTraceRoundtrip:
    def test_roundtrip_exact(self, tmp_path, rng):
        sizes = rng.gamma(4.0, 50_000.0, size=500)
        path = save_trace(tmp_path / "trace.csv", sizes)
        loaded = load_trace(path)
        assert np.allclose(loaded, sizes, rtol=1e-6)

    def test_rejects_empty_and_negative(self, tmp_path):
        with pytest.raises(ConfigurationError):
            save_trace(tmp_path / "x.csv", [])
        with pytest.raises(ConfigurationError):
            save_trace(tmp_path / "x.csv", [1.0, -2.0])

    def test_load_rejects_foreign_files(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("a,b\n1,2\n")
        with pytest.raises(ConfigurationError):
            load_trace(bad)

    def test_load_rejects_malformed_rows(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("size_bytes\nnot-a-number\n")
        with pytest.raises(ConfigurationError):
            load_trace(bad)

    def test_load_rejects_empty_body(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("size_bytes\n")
        with pytest.raises(ConfigurationError):
            load_trace(bad)


class TestCatalogRoundtrip:
    def test_roundtrip(self, tmp_path, rng):
        catalog = Catalog.synthetic(rng, n_objects=3, duration_s=20.0)
        path = save_catalog(tmp_path / "catalog.csv", catalog)
        loaded = load_catalog(path)
        assert len(loaded) == 3
        for original, restored in zip(catalog.objects, loaded.objects):
            assert restored.name == original.name
            assert np.allclose(restored.fragment_sizes,
                               original.fragment_sizes, rtol=1e-6)

    def test_zipf_exponent_applied_on_load(self, tmp_path, rng):
        catalog = Catalog.synthetic(rng, n_objects=4, duration_s=10.0)
        path = save_catalog(tmp_path / "catalog.csv", catalog)
        loaded = load_catalog(path, zipf_exponent=2.0)
        names = [loaded.pick(rng).name for _ in range(2000)]
        assert names.count("video-000") > names.count("video-003")

    def test_rejects_gaps(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("object,fragment,size_bytes\n"
                       "clip,0,100\nclip,2,100\n")
        with pytest.raises(ConfigurationError):
            load_catalog(bad)

    def test_rejects_duplicates(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("object,fragment,size_bytes\n"
                       "clip,0,100\nclip,0,200\n")
        with pytest.raises(ConfigurationError):
            load_catalog(bad)

    def test_rejects_foreign_header(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("x,y\n1,2\n")
        with pytest.raises(ConfigurationError):
            load_catalog(bad)

    def test_preserves_object_order(self, tmp_path):
        objects = [VideoObject("zz", np.array([1.0])),
                   VideoObject("aa", np.array([2.0]))]
        path = save_catalog(tmp_path / "c.csv", Catalog(objects))
        loaded = load_catalog(path)
        assert [o.name for o in loaded.objects] == ["zz", "aa"]
