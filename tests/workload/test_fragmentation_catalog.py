"""Fragmentation and catalog tests (§2.1's constant-time fragments)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workload import Catalog, MpegGopModel, VideoObject, fragment_trace
from repro.workload.fragmentsize import (
    lognormal_fragment_sizes,
    paper_fragment_sizes,
    truncated_pareto_fragment_sizes,
)


class TestFragmentTrace:
    def test_conserves_bytes(self, rng):
        frames = rng.gamma(2.0, 5000.0, size=1000)
        fragments = fragment_trace(frames, frame_rate=25.0,
                                   round_length=1.0)
        assert float(np.sum(fragments)) == pytest.approx(
            float(np.sum(frames)))

    def test_fragment_count(self, rng):
        frames = rng.gamma(2.0, 5000.0, size=250)
        fragments = fragment_trace(frames, 25.0, 1.0)
        assert fragments.shape == (10,)

    def test_partial_tail_kept(self, rng):
        frames = rng.gamma(2.0, 5000.0, size=260)
        fragments = fragment_trace(frames, 25.0, 1.0)
        assert fragments.shape == (11,)
        # Tail fragment covers 10 frames: smaller on average.
        assert fragments[-1] < np.mean(fragments[:-1])

    def test_round_length_scales_fragments(self, rng):
        frames = rng.gamma(2.0, 5000.0, size=1000)
        short = fragment_trace(frames, 25.0, 1.0)
        long_ = fragment_trace(frames, 25.0, 2.0)
        assert long_.size == short.size // 2
        assert np.mean(long_) == pytest.approx(2 * np.mean(short), rel=0.1)

    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            fragment_trace([], 25.0, 1.0)
        with pytest.raises(ConfigurationError):
            fragment_trace([0.0, 1.0], 25.0, 1.0)
        with pytest.raises(ConfigurationError):
            fragment_trace([1.0], 0.0, 1.0)
        with pytest.raises(ConfigurationError):
            fragment_trace([1.0], 25.0, 0.0)
        with pytest.raises(ConfigurationError):
            fragment_trace([1.0] * 10, 25.0, 0.001)  # < one frame

    def test_vbr_fragments_have_realistic_cv(self, rng):
        # The whole point of VBR modelling: fragment sizes vary.  With
        # strong scene modulation the per-fragment cv lands in the
        # ballpark the paper assumes (0.5).
        model = MpegGopModel(scene_correlation=0.95, scene_sigma=0.45)
        frames = model.generate_frames(rng, 100_000)
        fragments = fragment_trace(frames, model.frame_rate, 1.0)
        cv = float(np.std(fragments) / np.mean(fragments))
        assert 0.2 < cv < 0.9


class TestVideoObject:
    def test_properties(self):
        obj = VideoObject("clip", np.array([100.0, 200.0, 300.0]))
        assert obj.rounds == 3
        assert obj.total_bytes == 600.0
        assert obj.mean_fragment() == 200.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            VideoObject("empty", np.array([]))
        with pytest.raises(ConfigurationError):
            VideoObject("bad", np.array([1.0, -1.0]))


class TestCatalog:
    def test_synthetic_catalog(self, rng):
        catalog = Catalog.synthetic(rng, n_objects=5, duration_s=60.0)
        assert len(catalog) == 5
        for obj in catalog.objects:
            assert obj.rounds == 60
        pooled = catalog.all_fragment_sizes()
        assert pooled.size == 300

    def test_zipf_popularity_skews_picks(self, rng):
        catalog = Catalog.synthetic(rng, n_objects=6, duration_s=10.0,
                                    zipf_exponent=1.2)
        names = [catalog.pick(rng).name for _ in range(4000)]
        counts = {n: names.count(n) for n in set(names)}
        assert counts["video-000"] > counts.get("video-005", 0)

    def test_uniform_when_exponent_zero(self, rng):
        catalog = Catalog.synthetic(rng, n_objects=4, duration_s=10.0,
                                    zipf_exponent=0.0)
        names = [catalog.pick(rng).name for _ in range(8000)]
        freqs = np.array([names.count(f"video-{i:03d}")
                          for i in range(4)]) / 8000
        assert np.allclose(freqs, 0.25, atol=0.03)

    def test_get_by_name(self, rng):
        catalog = Catalog.synthetic(rng, n_objects=2, duration_s=5.0)
        assert catalog.get("video-001").name == "video-001"
        with pytest.raises(ConfigurationError):
            catalog.get("nope")

    def test_duplicate_names_rejected(self):
        obj = VideoObject("x", np.array([1.0]))
        with pytest.raises(ConfigurationError):
            Catalog([obj, obj])

    def test_empty_catalog_rejected(self):
        with pytest.raises(ConfigurationError):
            Catalog([])


class TestSizeHelpers:
    def test_paper_law(self):
        g = paper_fragment_sizes()
        assert g.mean() == pytest.approx(200_000.0)
        assert g.std() == pytest.approx(100_000.0)

    def test_lognormal_with_cap_has_mgf(self):
        d = lognormal_fragment_sizes(200_000.0, 100_000.0, cap=2e6)
        assert d.has_mgf()

    def test_lognormal_without_cap_has_none(self):
        d = lognormal_fragment_sizes(200_000.0, 100_000.0)
        assert not d.has_mgf()

    def test_truncated_pareto(self):
        d = truncated_pareto_fragment_sizes(200_000.0, 100_000.0, cap=2e6)
        assert d.has_mgf()
        assert d.mean() < 200_000.0  # truncation shaves the tail
        assert d.mean() > 150_000.0

    def test_cap_validation(self):
        with pytest.raises(ConfigurationError):
            truncated_pareto_fragment_sizes(200_000.0, 100_000.0,
                                            cap=100_000.0)
        with pytest.raises(ConfigurationError):
            lognormal_fragment_sizes(200_000.0, 100_000.0, cap=50_000.0)
