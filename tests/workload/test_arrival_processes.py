"""Arrival-process tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workload.arrivals import DiurnalArrivals, PoissonArrivals


class TestPoisson:
    def test_mean_rate(self, rng):
        arrivals = PoissonArrivals(rate=2.5)
        draws = [arrivals.draw(rng, r) for r in range(4000)]
        assert np.mean(draws) == pytest.approx(2.5, rel=0.05)

    def test_expected_arrivals(self):
        assert PoissonArrivals(1.5).expected_arrivals(100) == \
            pytest.approx(150.0)

    def test_zero_rate(self, rng):
        arrivals = PoissonArrivals(0.0)
        assert all(arrivals.draw(rng, r) == 0 for r in range(50))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PoissonArrivals(-1.0)
        with pytest.raises(ConfigurationError):
            PoissonArrivals(1.0).expected_arrivals(-1)


class TestDiurnal:
    def test_oscillates_around_base(self):
        arrivals = DiurnalArrivals(base_rate=2.0, amplitude=0.5,
                                   round_length=60.0)
        rounds_per_day = 86_400 // 60
        rates = [arrivals.rate_at(r) for r in range(rounds_per_day)]
        assert min(rates) == pytest.approx(1.0, abs=0.01)
        assert max(rates) == pytest.approx(3.0, abs=0.01)
        assert np.mean(rates) == pytest.approx(2.0, rel=0.01)

    def test_period_is_one_day(self):
        arrivals = DiurnalArrivals(base_rate=1.0, amplitude=0.8,
                                   round_length=3600.0)
        assert arrivals.rate_at(0) == pytest.approx(
            arrivals.rate_at(24), rel=1e-9)

    def test_phase_shifts_peak(self):
        round_length = 3600.0
        unshifted = DiurnalArrivals(1.0, 1.0, round_length, phase=0.0)
        shifted = DiurnalArrivals(1.0, 1.0, round_length, phase=0.25)
        peak_unshifted = max(range(24), key=unshifted.rate_at)
        peak_shifted = max(range(24), key=shifted.rate_at)
        assert (peak_shifted - peak_unshifted) % 24 == 6  # quarter day

    def test_never_negative(self):
        arrivals = DiurnalArrivals(1.0, 1.0, 60.0)
        assert all(arrivals.rate_at(r) >= 0.0 for r in range(2000))

    def test_expected_arrivals_matches_rates(self):
        arrivals = DiurnalArrivals(2.0, 0.3, 3600.0)
        expected = arrivals.expected_arrivals(24)
        assert expected == pytest.approx(
            sum(arrivals.rate_at(r) for r in range(24)))

    def test_draw_follows_rate(self, rng):
        arrivals = DiurnalArrivals(base_rate=5.0, amplitude=0.9,
                                   round_length=3600.0, phase=0.0)
        peak_round = max(range(24), key=arrivals.rate_at)
        trough_round = min(range(24), key=arrivals.rate_at)
        peak = np.mean([arrivals.draw(rng, peak_round)
                        for _ in range(2000)])
        trough = np.mean([arrivals.draw(rng, trough_round)
                          for _ in range(2000)])
        assert peak > 3 * trough

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DiurnalArrivals(1.0, 1.5, 60.0)
        with pytest.raises(ConfigurationError):
            DiurnalArrivals(1.0, 0.5, 0.0)
