"""CLI tests (in-process via ``main(argv)``)."""

import pytest

from repro.cli import build_parser, main


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestAdmission:
    def test_default_reproduces_paper(self, capsys):
        code, out, _ = run(capsys, "admission")
        assert code == 0
        assert "26" in out  # N_max^plate
        assert "28" in out  # N_max^perror

    def test_custom_workload(self, capsys):
        code, out, _ = run(capsys, "admission", "--mean-kb", "400",
                           "--std-kb", "200")
        assert code == 0
        # Heavier fragments admit fewer streams than 26.
        lines = [l for l in out.splitlines() if "round-level" in l]
        n = int(lines[0].split("|")[-1])
        assert n < 26

    def test_single_zone_disk(self, capsys):
        code, out, _ = run(capsys, "admission", "--disk", "single-zone")
        assert code == 0
        assert "single-zone" in out

    def test_rate_scale(self, capsys):
        code, out, _ = run(capsys, "admission", "--rate-scale", "2")
        assert code == 0
        lines = [l for l in out.splitlines() if "round-level" in l]
        assert int(lines[0].split("|")[-1]) > 26


class TestPlate:
    def test_tabulates_range(self, capsys):
        code, out, _ = run(capsys, "plate", "--n-from", "26",
                           "--n-to", "27")
        assert code == 0
        assert "26" in out and "27" in out
        assert "b_late" in out


class TestSimulate:
    def test_p_late_only(self, capsys):
        code, out, _ = run(capsys, "simulate", "--n", "26", "--rounds",
                           "2000")
        assert code == 0
        assert "simulated p_late" in out
        assert "analytic bound" in out

    def test_with_perror(self, capsys):
        code, out, _ = run(capsys, "simulate", "--n", "30", "--rounds",
                           "1000", "--perror", "-m", "200", "-g", "4",
                           "--runs", "3")
        assert code == 0
        assert "simulated p_error" in out

    def test_jobs_bit_identical(self, capsys):
        base = run(capsys, "simulate", "--n", "28", "--rounds", "3000",
                   "--seed", "5", "--jobs", "1")
        par = run(capsys, "simulate", "--n", "28", "--rounds", "3000",
                  "--seed", "5", "--jobs", "4")
        assert base[0] == par[0] == 0
        assert base[1] == par[1]

    def test_jobs_zero_means_all_cores(self, capsys):
        code, out, _ = run(capsys, "simulate", "--n", "26", "--rounds",
                           "1000", "--jobs", "0")
        assert code == 0
        assert "simulated p_late" in out


class TestNoCache:
    def test_no_cache_flag_same_numbers(self, capsys):
        from repro.cache import get_cache

        cached = run(capsys, "admission")
        uncached = run(capsys, "admission", "--no-cache")
        assert cached[0] == uncached[0] == 0
        assert cached[1] == uncached[1]
        # The flag must not leak: the cache is back on afterwards.
        assert get_cache().enabled


class TestWorstCase:
    def test_reproduces_eq41(self, capsys):
        code, out, _ = run(capsys, "worstcase")
        assert code == 0
        assert "10" in out
        assert "14" in out


class TestApprox:
    def test_reports_error(self, capsys):
        code, out, _ = run(capsys, "approx")
        assert code == 0
        assert "%" in out

    def test_single_zone_refuses(self, capsys):
        code, _, err = run(capsys, "approx", "--disk", "single-zone")
        assert code == 1
        assert "exact" in err


class TestSensitivityCommand:
    def test_runs(self, capsys):
        code, out, _ = run(capsys, "sensitivity")
        assert code == 0
        assert "rotation time" in out
        assert "swing" in out


class TestTuneCommand:
    def test_runs_and_reports_knee(self, capsys):
        code, out, _ = run(capsys, "tune")
        assert code == 0
        assert "knee: t =" in out
        assert "MB/s" in out


class TestFitCommand:
    def test_fits_saved_trace(self, capsys, tmp_path, rng):
        from repro.distributions import Gamma
        from repro.workload.trace_io import save_trace

        sample = Gamma.from_mean_std(200_000.0, 100_000.0).sample(
            rng, 2000)
        trace = save_trace(tmp_path / "trace.csv", sample)
        code, out, _ = run(capsys, "fit", str(trace))
        assert code == 0
        assert "gamma" in out
        assert "KS statistic" in out

    def test_missing_trace_is_cli_error(self, capsys, tmp_path):
        code, _, err = run(capsys, "fit", str(tmp_path / "nope.csv"))
        assert code == 2
        assert "error:" in err


class TestReportCommand:
    def test_writes_markdown(self, capsys, tmp_path):
        target = tmp_path / "report.md"
        code, out, _ = run(capsys, "report", "--output", str(target))
        assert code == 0
        assert target.is_file()
        assert "Reproduction report" in target.read_text()


class TestCacheCommand:
    @pytest.fixture(autouse=True)
    def _own_store(self, tmp_path):
        """Each test gets a throwaway persistent store; the session
        store is restored afterwards."""
        from repro import cache as cache_mod
        cache_mod.set_persistent_cache_dir(tmp_path)
        self.store_dir = tmp_path
        yield
        cache_mod.reset_persistent_cache()

    def test_path_prints_sqlite_location(self, capsys):
        code, out, _ = run(capsys, "cache", "path")
        assert code == 0
        assert out.strip().endswith("bounds.sqlite")
        assert str(self.store_dir) in out

    def test_stats_reports_counters(self, capsys):
        code, out, _ = run(capsys, "cache", "stats")
        assert code == 0
        assert "entries" in out
        assert "bounds.sqlite" in out

    def test_clear_drops_entries(self, capsys):
        from repro.cache import get_persistent_cache
        store = get_persistent_cache()
        store.put("k", 1.0)
        code, out, _ = run(capsys, "cache", "clear")
        assert code == 0
        assert "cleared 1" in out
        assert store.entry_count() == 0

    def test_dir_option_targets_another_store(self, capsys, tmp_path):
        other = tmp_path / "other-store"
        code, out, _ = run(capsys, "cache", "path", "--dir", str(other))
        assert code == 0
        assert str(other) in out

    def test_disabled_store_reported(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_PERSISTENT_CACHE", "0")
        code, _, err = run(capsys, "cache", "stats")
        assert code == 0
        assert "disabled" in err
        code, _, err = run(capsys, "cache", "clear")
        assert code == 1

    def test_cache_dir_flag_on_compute_commands(self, capsys,
                                                tmp_path):
        from repro.cache import clear_cache
        clear_cache()  # force a real solve so it writes through
        target = tmp_path / "flag-store"
        code, _, _ = run(capsys, "plate", "--n-from", "26", "--n-to",
                         "26", "--cache-dir", str(target))
        assert code == 0
        assert (target / "bounds.sqlite").is_file()


class TestObservability:
    """``--trace``/``--metrics`` on simulate, and ``repro observe``."""

    EXAMPLE = "examples/single_disk_failure.toml"

    def test_vectorised_trace_and_metrics(self, capsys, tmp_path):
        import json

        from repro.obs import read_trace, validate_trace

        trace = tmp_path / "t.jsonl"
        metrics = tmp_path / "m.json"
        code, out, _ = run(capsys, "simulate", "--n", "26", "--rounds",
                           "2000", "--trace", str(trace), "--metrics",
                           str(metrics))
        assert code == 0
        assert "trace written to" in out
        assert "metrics written to" in out
        records = read_trace(trace)
        assert validate_trace(records) == []
        assert records[0]["mode"] == "vectorised"
        data = json.loads(metrics.read_text())
        assert 'sim_p_late{n="26"}' in data
        assert 'sim_b_late{n="26"}' in data
        # Cache counters ride along in the same export.
        assert "bound_cache_hits" in data

    def test_multi_n_sweep(self, capsys, tmp_path):
        import json

        metrics = tmp_path / "m.json"
        code, out, _ = run(capsys, "simulate", "--n", "8,12", "--rounds",
                           "1500", "--jobs", "1", "--metrics",
                           str(metrics))
        assert code == 0
        assert "sweep over 2 N values" in out
        data = json.loads(metrics.read_text())
        assert 'sim_p_late{n="8"}' in data
        assert 'sim_p_late{n="12"}' in data

    def test_bad_n_list_rejected(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["simulate", "--n", "8,oops"])
        assert exc.value.code == 2
        assert "--n" in capsys.readouterr().err

    def test_faults_rejects_sweep_grid(self, capsys):
        code, _, err = run(capsys, "simulate", "--faults", self.EXAMPLE,
                           "--n", "8,12", "--server-rounds", "10")
        assert code == 2
        assert "single --n" in err

    def test_faulted_trace_observe_roundtrip(self, capsys, tmp_path):
        trace = tmp_path / "run.jsonl"
        code, _, _ = run(capsys, "simulate", "--faults", self.EXAMPLE,
                         "--server-rounds", "80", "--trace", str(trace))
        assert code == 0
        code, out, err = run(capsys, "observe", str(trace), "--validate")
        assert code == 0, err
        assert "mode faults" in out
        assert "bound vs observed" in out
        assert "within bound" in out
        assert "disk 0 failed" in out

    def test_observe_flags_schema_problems(self, capsys, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"kind": "run_end", "seq": 0, "wall": 0.0}\n')
        code, _, err = run(capsys, "observe", str(bad), "--validate")
        assert code == 1
        assert "schema problem" in err
        # Without --validate the summary still prints, problems warned.
        code, out, err = run(capsys, "observe", str(bad))
        assert code == 0
        assert "schema problem" in err

    def _spanned_trace(self, tmp_path):
        from repro.obs import Tracer
        from repro.obs.spans import start_span

        path = tmp_path / "spans.jsonl"
        ticks = iter(range(1000))
        with Tracer(sink=path,
                    clock=lambda: float(next(ticks))) as tracer:
            tracer.start_run(seed=1)
            with start_span("client.admit", tracer=tracer):
                with start_span("http.admit", tracer=tracer):
                    pass
            tracer.end_run()
        return path

    def test_observe_empty_trace_is_a_one_line_diagnosis(self, capsys,
                                                         tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        code, out, err = run(capsys, "observe", str(empty))
        assert code == 1
        assert out == ""
        lines = [line for line in err.splitlines() if line]
        assert len(lines) == 1
        assert lines[0].startswith("error:")
        assert "no readable trace records" in lines[0]

    def test_observe_truncated_trace_warns_and_exits_1(self, capsys,
                                                       tmp_path):
        trace = tmp_path / "run.jsonl"
        code, _, _ = run(capsys, "simulate", "--faults", self.EXAMPLE,
                         "--server-rounds", "40", "--trace", str(trace))
        assert code == 0
        text = trace.read_text()
        trace.write_text(text[:len(text) - 20])  # SIGKILL mid-write
        code, out, err = run(capsys, "observe", str(trace))
        assert code == 1
        assert "truncated final record" in err
        assert "daemon killed mid-write" in err
        # The intact prefix is still summarised.
        assert "records" in out

    def test_observe_spans_renders_tree(self, capsys, tmp_path):
        path = self._spanned_trace(tmp_path)
        code, out, err = run(capsys, "observe", str(path), "--spans")
        assert code == 0, err
        assert "client.admit" in out
        assert "http.admit" in out
        assert "critical path" in out

    def test_slo_replays_round_records(self, capsys, tmp_path):
        import json

        path = tmp_path / "rounds.jsonl"
        lines = [{"kind": "run_start", "seq": 0, "wall": 0.0,
                  "seed": None, "schema": 1, "epsilon": 0.01,
                  "delta": 0.01, "m": 1200, "g": 12}]
        for i in range(8):
            lines.append({"kind": "round_observe", "seq": i + 1,
                          "wall": 0.0, "round": i, "disk_rounds": 2,
                          "late_disk_rounds": 0, "requests": 100,
                          "glitched": 0, "degraded": False,
                          "bound": 1e-6})
        path.write_text("".join(json.dumps(l) + "\n" for l in lines))
        code, out, err = run(capsys, "slo", str(path))
        assert code == 0, err
        assert "epsilon error-budget report" in out
        assert "burn" in out

    def test_slo_pages_exit_1(self, capsys, tmp_path):
        import json

        path = tmp_path / "storm.jsonl"
        lines = [{"kind": "run_start", "seq": 0, "wall": 0.0,
                  "seed": None, "schema": 1, "epsilon": 0.001,
                  "delta": 0.01, "m": 1200, "g": 12}]
        for i in range(8):
            lines.append({"kind": "round_observe", "seq": i + 1,
                          "wall": 0.0, "round": i, "disk_rounds": 2,
                          "late_disk_rounds": 2, "requests": 100,
                          "glitched": 60, "degraded": False,
                          "bound": 1e-6})
        path.write_text("".join(json.dumps(l) + "\n" for l in lines))
        code, out, err = run(capsys, "slo", str(path), "--fast-window",
                             "4", "--slow-window", "8")
        assert code == 1
        assert "PAGE" in err
        assert "page" in out

    def test_slo_without_rounds_is_an_error(self, capsys, tmp_path):
        import json

        path = tmp_path / "bare.jsonl"
        path.write_text(json.dumps(
            {"kind": "run_start", "seq": 0, "wall": 0.0, "seed": None,
             "schema": 1}) + "\n")
        code, _, err = run(capsys, "slo", str(path))
        assert code == 1
        assert "no per-round observations" in err

    def test_cache_stats_reports_in_memory_counters(self, capsys,
                                                    tmp_path):
        from repro import cache as cache_mod
        cache_mod.set_persistent_cache_dir(tmp_path)
        try:
            code, out, _ = run(capsys, "cache", "stats")
        finally:
            cache_mod.reset_persistent_cache()
        assert code == 0
        assert "in-memory bound cache" in out
        assert "solves" in out


class TestErrors:
    def test_library_error_becomes_exit_2(self, capsys):
        code, _, err = run(capsys, "admission", "--delta", "2.0")
        assert code == 2
        assert "error:" in err

    def test_parser_exposes_subcommands(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])  # subcommand required
