"""Smoke tests: every example must run to completion.

Each example's ``main()`` is imported and executed in-process (stdout
captured by pytest).  These are the repository's end-to-end check that
the public API composes the way the documentation shows.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parents[1] / "examples").glob("*.py"))


def _load(path: Path):
    spec = importlib.util.spec_from_file_location(
        f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_examples_discovered():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "reproduce_paper", "capacity_planning",
            "video_server_simulation", "multizone_analysis",
            "admission_lookup_table",
            "buffered_mixed_service"} <= names


@pytest.mark.slow
@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, capsys):
    module = _load(path)
    module.main()
    out = capsys.readouterr().out
    assert len(out) > 100  # produced a real report


@pytest.mark.slow
def test_quickstart_reports_paper_values(capsys):
    module = _load(next(p for p in EXAMPLES if p.stem == "quickstart"))
    module.main()
    out = capsys.readouterr().out
    assert "26" in out and "28" in out
