"""Seek-curve unit tests against Table 1's parameter set."""

import math

import numpy as np
import pytest

from repro.disk import SeekCurve, quantum_viking_2_1
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def curve():
    return quantum_viking_2_1().seek_curve


class TestTable1Curve:
    def test_short_seek_branch(self, curve):
        # seek(240) drives the SEEK(27)=0.10932 s worked example.
        expected = 1.867e-3 + 1.315e-4 * math.sqrt(240.0)
        assert curve(240) == pytest.approx(expected, rel=1e-12)

    def test_long_seek_branch(self, curve):
        expected = 3.8635e-3 + 2.1e-6 * 2000.0
        assert curve(2000) == pytest.approx(expected, rel=1e-12)

    def test_branch_threshold(self, curve):
        assert curve.threshold == 1344
        below = curve(1343)
        above = curve(1344)
        # Table 1's curve is continuous to within a few microseconds.
        assert abs(above - below) < 1e-5
        assert abs(curve.discontinuity()) < 1e-5

    def test_zero_distance_free(self, curve):
        assert curve(0) == 0.0

    def test_full_stroke_is_eq41_seek_max(self, curve):
        # eq. (4.1): T_seek^max = 18 ms.
        assert curve.max_time(6720) == pytest.approx(18e-3, abs=1e-4)

    def test_monotone_nondecreasing(self, curve):
        d = np.arange(0, 6720, 7)
        times = curve(d)
        assert np.all(np.diff(times) >= -1e-15)


class TestVectorisation:
    def test_array_input(self, curve):
        d = np.array([0, 100, 1343, 1344, 5000])
        out = curve(d)
        assert out.shape == d.shape
        assert out[0] == 0.0
        for i, dist in enumerate(d):
            assert out[i] == pytest.approx(float(curve(int(dist))))

    def test_scalar_returns_float(self, curve):
        assert isinstance(curve(100), float)

    def test_rejects_negative_distance(self, curve):
        with pytest.raises(ConfigurationError):
            curve(-1)
        with pytest.raises(ConfigurationError):
            curve(np.array([1, -2]))


class TestValidation:
    def test_rejects_negative_coefficients(self):
        with pytest.raises(ConfigurationError):
            SeekCurve(-1e-3, 1e-4, 1e-3, 1e-6, 100)

    def test_rejects_bad_threshold(self):
        with pytest.raises(ConfigurationError):
            SeekCurve(1e-3, 1e-4, 1e-3, 1e-6, 0)

    def test_max_time_needs_two_cylinders(self):
        curve = SeekCurve(1e-3, 1e-4, 1e-3, 1e-6, 100)
        with pytest.raises(ConfigurationError):
            curve.max_time(1)
