"""DiskGeometry and DiskDrive unit tests."""

import numpy as np
import pytest

from repro.disk import (
    DiskDrive,
    DiskGeometry,
    DiskRequest,
    ZoneMap,
    quantum_viking_2_1,
)
from repro.errors import ConfigurationError, GeometryError

ROT = 8.34e-3


@pytest.fixture(scope="module")
def geometry():
    return quantum_viking_2_1().geometry


class TestGeometry:
    def test_zone_split_covers_all_cylinders(self, geometry):
        bounds = geometry.zone_bounds
        assert bounds[0] == 0
        assert bounds[-1] == 6720
        assert np.all(np.diff(bounds) > 0)
        assert int(np.sum(geometry.zone_cylinder_counts)) == 6720

    def test_equal_tracks_per_zone(self, geometry):
        # 6720 / 15 = 448 exactly.
        assert np.all(geometry.zone_cylinder_counts == 448)

    def test_zone_of_cylinder_boundaries(self, geometry):
        assert geometry.zone_of_cylinder(0) == 0
        assert geometry.zone_of_cylinder(447) == 0
        assert geometry.zone_of_cylinder(448) == 1
        assert geometry.zone_of_cylinder(6719) == 14

    def test_zone_of_cylinder_vectorised(self, geometry):
        zones = geometry.zone_of_cylinder(np.array([0, 448, 6719]))
        assert list(zones) == [0, 1, 14]

    def test_out_of_range_cylinder(self, geometry):
        with pytest.raises(GeometryError):
            geometry.zone_of_cylinder(6720)
        with pytest.raises(GeometryError):
            geometry.zone_of_cylinder(-1)

    def test_cylinder_range_of_zone(self, geometry):
        assert geometry.cylinder_range_of_zone(0) == (0, 448)
        assert geometry.cylinder_range_of_zone(14) == (6272, 6720)
        with pytest.raises(GeometryError):
            geometry.cylinder_range_of_zone(15)

    def test_rate_of_cylinder_uses_zone(self, geometry):
        z = geometry.zone_map
        assert float(geometry.rate_of_cylinder(0)) == pytest.approx(z.r_min)
        assert float(geometry.rate_of_cylinder(6719)) == pytest.approx(
            z.r_max)

    def test_total_capacity(self, geometry):
        expected = float(np.sum(448 * geometry.zone_map.capacities))
        assert geometry.total_capacity == pytest.approx(expected)
        # ~0.5 GB per surface for this drive: sanity order of magnitude.
        assert 0.4e9 < geometry.total_capacity < 0.6e9

    def test_sampled_cylinders_weighted_by_capacity(self, geometry, rng):
        cyl = geometry.sample_cylinder(rng, size=200_000)
        zones = geometry.zone_of_cylinder(cyl)
        freq = np.bincount(zones, minlength=15) / zones.size
        assert freq == pytest.approx(
            geometry.zone_map.zone_probabilities, abs=0.005)

    def test_sample_cylinder_scalar(self, geometry, rng):
        c = geometry.sample_cylinder(rng)
        assert isinstance(c, int)
        assert 0 <= c < 6720

    def test_rejects_fewer_cylinders_than_zones(self):
        with pytest.raises(ConfigurationError):
            DiskGeometry(10, ZoneMap.linear(15, 100.0, 200.0, ROT))

    def test_remainder_cylinders_spread(self):
        geom = DiskGeometry(10, ZoneMap.linear(3, 100.0, 200.0, ROT))
        assert list(geom.zone_cylinder_counts) == [4, 3, 3]

    def test_surfaces_scale_capacity(self):
        zm = ZoneMap.linear(3, 100.0, 200.0, ROT)
        single = DiskGeometry(30, zm, surfaces=1)
        double = DiskGeometry(30, zm, surfaces=2)
        assert double.total_capacity == pytest.approx(
            2 * single.total_capacity)


class TestDrive:
    def test_serve_moves_arm_and_accumulates(self, geometry, rng):
        spec = quantum_viking_2_1()
        drive = DiskDrive(geometry, spec.seek_curve)
        req = DiskRequest(stream_id=0, size=200_000.0, cylinder=3000)
        breakdown = drive.serve(req, rng)
        assert drive.arm_cylinder == 3000
        assert drive.served == 1
        assert drive.busy_time == pytest.approx(breakdown.total)
        assert breakdown.seek == pytest.approx(
            float(spec.seek_curve(3000)))
        assert 0.0 <= breakdown.rotation <= ROT
        rate = float(geometry.rate_of_cylinder(3000))
        assert breakdown.transfer == pytest.approx(200_000.0 / rate)

    def test_transfer_faster_on_outer_tracks(self, geometry):
        spec = quantum_viking_2_1()
        drive = DiskDrive(geometry, spec.seek_curve)
        inner = drive.transfer_time(100_000.0, 0)
        outer = drive.transfer_time(100_000.0, 6719)
        assert outer < inner
        assert inner / outer == pytest.approx(95744.0 / 58368.0)

    def test_seek_time_symmetric(self, geometry):
        spec = quantum_viking_2_1()
        drive = DiskDrive(geometry, spec.seek_curve, initial_cylinder=1000)
        up = drive.seek_time_to(1500)
        drive.park(2000)
        down = drive.seek_time_to(1500)
        assert up == pytest.approx(down)

    def test_park_charges_no_time(self, geometry):
        spec = quantum_viking_2_1()
        drive = DiskDrive(geometry, spec.seek_curve)
        drive.park(5000)
        assert drive.busy_time == 0.0
        assert drive.arm_cylinder == 5000

    def test_bad_initial_position(self, geometry):
        spec = quantum_viking_2_1()
        with pytest.raises(GeometryError):
            DiskDrive(geometry, spec.seek_curve, initial_cylinder=9999)

    def test_bad_targets(self, geometry):
        spec = quantum_viking_2_1()
        drive = DiskDrive(geometry, spec.seek_curve)
        with pytest.raises(GeometryError):
            drive.seek_time_to(6720)
        with pytest.raises(GeometryError):
            drive.park(-1)


class TestRequest:
    def test_rejects_bad_requests(self):
        with pytest.raises(ConfigurationError):
            DiskRequest(stream_id=0, size=0.0, cylinder=0)
        with pytest.raises(ConfigurationError):
            DiskRequest(stream_id=0, size=100.0, cylinder=-1)

    def test_breakdown_total(self):
        from repro.disk import ServiceBreakdown
        b = ServiceBreakdown(seek=1.0, rotation=2.0, transfer=3.0)
        assert b.total == 6.0
