"""ZoneMap unit tests against §3.2's formulas."""

import numpy as np
import pytest

from repro.disk import ZoneMap, quantum_viking_2_1
from repro.errors import ConfigurationError

ROT = 8.34e-3


@pytest.fixture(scope="module")
def viking_zones():
    return quantum_viking_2_1().zone_map


class TestLinearProfile:
    def test_eq_3_2_2_capacities(self, viking_zones):
        # C_i = C_min + (C_max - C_min)(i-1)/(Z-1).
        z = viking_zones
        assert z.zones == 15
        assert z.c_min == 58368.0
        assert z.c_max == 95744.0
        i = np.arange(15)
        expected = 58368.0 + (95744.0 - 58368.0) * i / 14
        assert z.capacities == pytest.approx(expected)

    def test_eq_3_2_3_rates(self, viking_zones):
        z = viking_zones
        assert z.rates == pytest.approx(z.capacities / ROT)
        assert z.r_min == pytest.approx(58368.0 / ROT)
        assert z.r_max == pytest.approx(95744.0 / ROT)

    def test_rate_ratio_about_factor_two(self, viking_zones):
        # §2.2: "capacity and transfer rate ratio ... of a factor of two".
        ratio = viking_zones.r_max / viking_zones.r_min
        assert 1.5 < ratio < 2.0

    def test_single_zone_degenerate(self):
        z = ZoneMap.linear(1, 76800.0, 76800.0, ROT)
        assert z.zones == 1
        assert z.zone_probabilities == pytest.approx([1.0])

    def test_single_zone_requires_equal_caps(self):
        with pytest.raises(ConfigurationError):
            ZoneMap.linear(1, 100.0, 200.0, ROT)


class TestZoneLaw:
    def test_eq_3_2_1_probabilities(self, viking_zones):
        # P[zone i] = C_i / C.
        z = viking_zones
        assert z.zone_probabilities == pytest.approx(
            z.capacities / np.sum(z.capacities))
        assert float(np.sum(z.zone_probabilities)) == pytest.approx(1.0)

    def test_outer_zones_more_likely(self, viking_zones):
        probs = viking_zones.zone_probabilities
        assert np.all(np.diff(probs) > 0)

    def test_rate_cdf_matches_cumulative(self, viking_zones):
        z = viking_zones
        # Just above the k-th rate the cdf equals sum of first k probs
        # (eq. 3.2.4 in discrete form).
        for k in (0, 7, 14):
            r = z.rates[k] * 1.0000001
            assert float(z.rate_cdf(r)) == pytest.approx(
                float(np.sum(z.zone_probabilities[:k + 1])))

    def test_rate_cdf_edges(self, viking_zones):
        z = viking_zones
        assert float(z.rate_cdf(z.r_min * 0.99)) == 0.0
        assert float(z.rate_cdf(z.r_max * 1.01)) == 1.0


class TestInverseRateMoments:
    def test_closed_form_inverse_mean(self, viking_zones):
        # E[1/R] = sum (C_i/C)(ROT/C_i) = Z*ROT/C.
        z = viking_zones
        expected = z.zones * ROT / z.total_track_capacity
        assert z.rate_moment(-1) == pytest.approx(expected, rel=1e-12)

    def test_harmonic_mean_is_arithmetic_capacity(self, viking_zones):
        # For the linear equal-track profile, 1/E[1/R] = C/(Z*ROT).
        z = viking_zones
        assert z.harmonic_mean_rate() == pytest.approx(
            z.total_track_capacity / (z.zones * ROT), rel=1e-12)

    def test_mean_rate_exceeds_harmonic(self, viking_zones):
        assert viking_zones.mean_rate() > viking_zones.harmonic_mean_rate()

    def test_sampled_rates_match_moments(self, viking_zones, rng):
        z = viking_zones
        rates = z.sample_rate(rng, size=400_000)
        assert np.mean(rates) == pytest.approx(z.mean_rate(), rel=0.005)
        assert np.mean(1.0 / rates) == pytest.approx(z.rate_moment(-1),
                                                     rel=0.005)


class TestContinuousApproximation:
    def test_density_integrates_to_one(self, viking_zones):
        z = viking_zones
        r = np.linspace(z.r_min, z.r_max, 100_001)
        assert np.trapezoid(z.continuous_rate_pdf(r), r) == pytest.approx(
            1.0, abs=1e-6)

    def test_density_proportional_to_rate(self, viking_zones):
        z = viking_zones
        assert float(z.continuous_rate_pdf(z.r_max)) / float(
            z.continuous_rate_pdf(z.r_min)) == pytest.approx(
                z.r_max / z.r_min)

    def test_cdf_matches_discrete_at_many_zones(self):
        fine = ZoneMap.linear(500, 58368.0, 95744.0, ROT)
        r = np.linspace(fine.r_min * 1.01, fine.r_max * 0.99, 17)
        assert fine.rate_cdf(r) == pytest.approx(
            fine.continuous_rate_cdf(r), abs=5e-3)

    def test_single_zone_has_no_continuous_density(self):
        z = ZoneMap.linear(1, 100.0, 100.0, ROT)
        with pytest.raises(ConfigurationError):
            z.continuous_rate_pdf(1.0)


class TestValidation:
    def test_rejects_decreasing_capacities(self):
        with pytest.raises(ConfigurationError):
            ZoneMap([100.0, 90.0], ROT)

    def test_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            ZoneMap([0.0, 10.0], ROT)
        with pytest.raises(ConfigurationError):
            ZoneMap([10.0, 20.0], 0.0)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            ZoneMap([], ROT)
