"""Scheduling-discipline comparator tests (FIFO / SSTF / C-SCAN)."""

import numpy as np
import pytest

from repro.disk import DiskDrive, DiskRequest, quantum_viking_2_1
from repro.disk.scan import (
    batch_seek_time,
    order_cscan,
    order_fifo,
    order_scan,
    order_sstf,
)


@pytest.fixture(scope="module")
def drive():
    spec = quantum_viking_2_1()
    return DiskDrive(spec.geometry, spec.seek_curve, initial_cylinder=0)


def _requests(cylinders):
    return [DiskRequest(stream_id=i, size=1.0, cylinder=int(c))
            for i, c in enumerate(cylinders)]


class TestOrderings:
    def test_fifo_identity(self):
        reqs = _requests([5, 1, 3])
        assert [r.cylinder for r in order_fifo(reqs)] == [5, 1, 3]

    def test_sstf_greedy(self):
        reqs = _requests([100, 2000, 150, 1900])
        ordered = order_sstf(reqs, start_cylinder=0)
        assert [r.cylinder for r in ordered] == [100, 150, 1900, 2000]

    def test_sstf_from_middle(self):
        reqs = _requests([100, 2000])
        ordered = order_sstf(reqs, start_cylinder=1900)
        assert [r.cylinder for r in ordered] == [2000, 100]

    def test_cscan_always_ascending(self):
        reqs = _requests([500, 100, 300])
        assert [r.cylinder for r in order_cscan(reqs)] == [100, 300, 500]

    def test_empty_batches(self, drive):
        assert order_fifo([]) == []
        assert order_sstf([], 0) == []
        assert order_cscan([]) == []
        assert batch_seek_time(drive, []) == 0.0


class TestSeekCosts:
    def test_batch_seek_matches_manual(self, drive):
        spec = quantum_viking_2_1()
        reqs = _requests([1000, 3000])
        total = batch_seek_time(drive, reqs)
        expected = float(spec.seek_curve(1000)) + float(
            spec.seek_curve(2000))
        assert total == pytest.approx(expected)

    @pytest.mark.parametrize("n", [5, 15, 30])
    def test_scan_never_loses_to_fifo(self, drive, n, rng):
        for _ in range(50):
            reqs = _requests(rng.integers(0, 6720, size=n))
            scan_cost = batch_seek_time(drive, order_scan(reqs))
            fifo_cost = batch_seek_time(drive, order_fifo(reqs))
            assert scan_cost <= fifo_cost + 1e-12

    @pytest.mark.parametrize("n", [5, 15, 30])
    def test_sstf_close_to_scan_within_batch(self, drive, n, rng):
        # In a closed batch SSTF and SCAN both do near-minimal arm
        # travel; SSTF may pay for occasional direction flips but never
        # catastrophically.
        ratios = []
        for _ in range(100):
            reqs = _requests(rng.integers(0, 6720, size=n))
            scan_cost = batch_seek_time(drive, order_scan(reqs))
            sstf_cost = batch_seek_time(
                drive, order_sstf(reqs, drive.arm_cylinder))
            ratios.append(sstf_cost / scan_cost)
        assert np.mean(ratios) < 1.4

    def test_cscan_pays_flyback(self, drive, rng):
        # From an arm parked high, C-SCAN must fly back to the lowest
        # request while SCAN would just sweep downward.
        spec = quantum_viking_2_1()
        high_drive = DiskDrive(spec.geometry, spec.seek_curve,
                               initial_cylinder=6500)
        reqs = _requests([100, 2000, 4000, 6000])
        cscan_cost = batch_seek_time(high_drive, order_cscan(reqs))
        scan_down = batch_seek_time(high_drive,
                                    order_scan(reqs, ascending=False))
        assert cscan_cost > scan_down
